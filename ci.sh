#!/usr/bin/env bash
# CI gate for the workspace. Run from the repository root.
#
# Mirrors the tier-1 verify (build + tests) and adds the documentation
# and lint gates. Everything runs offline: all dependencies are vendored
# path crates (see vendor/).
set -euo pipefail

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo doc --no-deps --workspace (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo clippy --workspace --all-targets (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings


echo "==> doc tests (df-workload schema examples et al.)"
cargo test -q --doc

echo "==> scenario smoke run (reduced cycles)"
cargo run --release -p df-bench --bin scenario -- --quick \
    scenarios/interference_advc_vs_uniform.json > /dev/null

echo "==> sweep smoke run + determinism gate (bundled grid, twice, bit-compare)"
# The long-format table must be bit-identical across same-seed runs
# regardless of how cells were scheduled across threads. The first run's
# table lands in bench-results/ for the workflow to archive alongside
# the perf trajectory.
sweep_rerun="$(mktemp -d)"
trap 'rm -rf "${fresh_dir:-}" "${sweep_rerun:-}"' EXIT
cargo run --release -p df-bench --bin sweep -- --quick \
    --csv bench-results/sweep_unfairness_grid.csv \
    --out bench-results/sweep_unfairness_grid.json \
    scenarios/sweep_unfairness_grid.json > /dev/null
cargo run --release -p df-bench --bin sweep -- --quick \
    --csv "$sweep_rerun/table.csv" --out "$sweep_rerun/table.json" \
    scenarios/sweep_unfairness_grid.json > /dev/null
cmp bench-results/sweep_unfairness_grid.csv "$sweep_rerun/table.csv"
cmp bench-results/sweep_unfairness_grid.json "$sweep_rerun/table.json"

echo "==> criterion benches in --test mode (each body runs once)"
cargo bench -p df-bench -- --test

echo "==> end-to-end bench smoke (full warm-up + measurement unit, once)"
cargo bench -p df-bench --bench end_to_end -- --test

echo "==> record perf trajectory (bench-results/BENCH_*.json) + regression gate"
# Absolute path: cargo bench runs the binaries with cwd = the bench
# package directory, so a relative dir would land in crates/bench/.
# Fresh results land in staging dirs first; bench_trend merges the runs
# (per-id median — the loaded full-network cycle drifts with network
# fill, so a single run is too noisy to gate on), diffs them against the
# previous artifacts, fails on a >10% median regression, and promotes
# the merged result into bench-results/ (export
# BENCH_TREND_FLAGS=--allow-regress for warn-only, as CI does —
# shared-runner timings are noisier still).
fresh_dir="$(mktemp -d)"
for i in 1 2 3 4; do
    BENCH_JSON_DIR="$fresh_dir/run$i" cargo bench -p df-bench --bench router_step
done
BENCH_JSON_DIR="$fresh_dir/run1" cargo bench -p df-bench --bench allocator
# shellcheck disable=SC2086 # BENCH_TREND_FLAGS is intentionally word-split
cargo run --release -p df-bench --bin bench_trend -- \
    ${BENCH_TREND_FLAGS:-} --baseline bench-results --promote bench-results \
    "$fresh_dir"/run1 "$fresh_dir"/run2 "$fresh_dir"/run3 "$fresh_dir"/run4

echo "CI gate passed."
