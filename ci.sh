#!/usr/bin/env bash
# CI gate for the workspace. Run from the repository root.
#
# Mirrors the tier-1 verify (build + tests) and adds the documentation
# and lint gates. Everything runs offline: all dependencies are vendored
# path crates (see vendor/).
set -euo pipefail

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo doc --no-deps --workspace (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo clippy --workspace --all-targets (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings


echo "==> scenario smoke run (reduced cycles)"
cargo run --release -p df-bench --bin scenario -- --quick \
    scenarios/interference_advc_vs_uniform.json > /dev/null

echo "==> criterion benches in --test mode (each body runs once)"
cargo bench -p df-bench -- --test

echo "==> end-to-end bench smoke (full warm-up + measurement unit, once)"
cargo bench -p df-bench --bench end_to_end -- --test

echo "==> record perf trajectory (bench-results/BENCH_*.json)"
# Absolute path: cargo bench runs the binaries with cwd = the bench
# package directory, so a relative dir would land in crates/bench/.
mkdir -p bench-results
BENCH_JSON_DIR="$PWD/bench-results" cargo bench -p df-bench --bench router_step
BENCH_JSON_DIR="$PWD/bench-results" cargo bench -p df-bench --bench allocator

echo "CI gate passed."
