#!/usr/bin/env bash
# CI gate for the workspace. Run from the repository root.
#
# Mirrors the tier-1 verify (build + tests) and adds the documentation
# and lint gates. Everything runs offline: all dependencies are vendored
# path crates (see vendor/).
set -euo pipefail

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
# Debug-assertion builds shadow-verify every reused route-cache decision;
# the suite also carries the golden digests (tests/tests/golden_outputs.rs)
# and the cache-equivalence proptests (tests/tests/route_cache.rs).
cargo test -q

echo "==> sharded tier-1 suite (DF_TEST_SHARDS=2)"
# Every spec literal and bundled file in the tree leaves `shards` unset,
# so this env var reroutes the ENTIRE suite — golden digests included —
# through the group-sharded engine. Passing here means the sharded engine
# reproduces every serial expectation byte-for-byte (the shard-count
# invariance contract, docs/DETERMINISM.md); there are no sharded goldens
# to re-record, by design. On mismatch the shard-invariance proptests
# drop the offending result pairs in target/shard-diagnostics/, which
# the workflow archives.
DF_TEST_SHARDS=2 cargo test -q

echo "==> release-mode shadow verification (route cache + sharding, --features shadow-verify)"
# Release builds drop debug assertions, so the recompute-and-compare check
# on every reused routing decision is re-enabled explicitly and exercised
# under the optimized scheduling it is meant to guard. The sharding suite
# rides along for its cross-shard queue coherence audit (per-cycle
# work-list full-scan mirror), which is also shadow-verify-gated.
cargo test -q --release -p integration-tests --features shadow-verify \
    --test route_cache --test golden_outputs --test sharding

echo "==> cargo doc --no-deps --workspace (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo clippy --workspace --all-targets (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings


echo "==> doc tests (df-workload schema examples et al.)"
cargo test -q --doc

echo "==> scenario smoke run (reduced cycles) + timeline stream validation"
# The smoke run doubles as the windowed-telemetry gate: every mechanism
# streams one JSONL row per closed window, and timeline_check verifies
# each line parses and the window cycle ranges are contiguous per run.
cargo run --release -p df-bench --bin scenario -- --quick \
    --timeline bench-results/timeline_interference.jsonl \
    scenarios/interference_advc_vs_uniform.json > /dev/null
cargo run --release -p df-bench --bin timeline_check -- \
    bench-results/timeline_interference.jsonl

echo "==> shard-count invariance smoke (--shards 2 vs serial, byte-compare)"
# Same spec, same seed, different engine: the sharded CLI run must print
# byte-identical output. The beyond-paper h=7 machine (p=7, a=14 — 99
# groups, 9,702 nodes, one step past the paper's largest evaluation)
# runs the same gate end-to-end under the sharded engine.
shard_dir="$(mktemp -d)"
cargo run --release -p df-bench --bin scenario -- --quick \
    scenarios/interference_advc_vs_uniform.json > "$shard_dir/serial.out"
cargo run --release -p df-bench --bin scenario -- --quick --shards 2 \
    scenarios/interference_advc_vs_uniform.json > "$shard_dir/sharded.out"
cmp "$shard_dir/serial.out" "$shard_dir/sharded.out"
cargo run --release -p df-bench --bin scenario -- --quick \
    scenarios/beyond_paper_h7.json > "$shard_dir/h7-serial.out"
cargo run --release -p df-bench --bin scenario -- --quick --shards 2 \
    scenarios/beyond_paper_h7.json > "$shard_dir/h7-sharded.out"
cmp "$shard_dir/h7-serial.out" "$shard_dir/h7-sharded.out"
rm -rf "$shard_dir"

echo "==> sweep smoke run + determinism gate (bundled grid, twice, bit-compare)"
# The long-format table must be bit-identical across same-seed runs
# regardless of how cells were scheduled across threads. The first run's
# table lands in bench-results/ for the workflow to archive alongside
# the perf trajectory.
sweep_rerun="$(mktemp -d)"
trap 'rm -rf "${fresh_dir:-}" "${sweep_rerun:-}"' EXIT
cargo run --release -p df-bench --bin sweep -- --quick \
    --csv bench-results/sweep_unfairness_grid.csv \
    --out bench-results/sweep_unfairness_grid.json \
    scenarios/sweep_unfairness_grid.json > /dev/null
cargo run --release -p df-bench --bin sweep -- --quick \
    --csv "$sweep_rerun/table.csv" --out "$sweep_rerun/table.json" \
    scenarios/sweep_unfairness_grid.json > /dev/null
cmp bench-results/sweep_unfairness_grid.csv "$sweep_rerun/table.csv"
cmp bench-results/sweep_unfairness_grid.json "$sweep_rerun/table.json"
# Sharded leg of the same gate: `--shards 2` threads through the base
# spec into every expanded cell, and both artifacts must still match the
# serial run byte-for-byte (the in-tree golden digests pin the same).
cargo run --release -p df-bench --bin sweep -- --quick --shards 2 \
    --csv "$sweep_rerun/sharded.csv" --out "$sweep_rerun/sharded.json" \
    scenarios/sweep_unfairness_grid.json > /dev/null
cmp bench-results/sweep_unfairness_grid.csv "$sweep_rerun/sharded.csv"
cmp bench-results/sweep_unfairness_grid.json "$sweep_rerun/sharded.json"

echo "==> service smoke (df-serve: cache replay + admission control + drain)"
# Boot the job server with a deliberately tiny admission window, submit
# the bundled interference scenario twice — the second submission must
# be answered from the result cache, byte-identical to the first — then
# provoke a rejected-overload with stall-fault jobs that pin the single
# worker, and shut the server down gracefully. The event log is the
# artifact CI archives (see docs/SERVICE.md).
service_sock="$(mktemp -u /tmp/df-service-ci.XXXXXX.sock)"
service_dir="$(mktemp -d)"
trap 'rm -rf "${fresh_dir:-}" "${sweep_rerun:-}" "${service_dir:-}"; rm -f "${service_sock:-}"' EXIT
cargo run --release -p df-bench --bin df-serve -- \
    --socket "$service_sock" --workers 1 --queue-depth 1 \
    --event-log bench-results/service_events.jsonl &
service_pid=$!
for _ in $(seq 1 100); do
    [ -S "$service_sock" ] && break
    sleep 0.1
done
[ -S "$service_sock" ] || { echo "df-serve never bound its socket" >&2; exit 1; }
submit() { cargo run --release -p df-bench --bin df-submit -- --socket "$service_sock" "$@"; }
submit --quick --out "$service_dir/first.json" \
    scenarios/interference_advc_vs_uniform.json
submit --quick --out "$service_dir/second.json" \
    scenarios/interference_advc_vs_uniform.json 2> "$service_dir/second.log"
grep -q cached "$service_dir/second.log"
cmp "$service_dir/first.json" "$service_dir/second.json"
# Over-quota burst: two stalling jobs fill the worker and the one queue
# slot, then a third waiting submission must be rejected with exit
# code 3. The seed lists differ from the cached run above (the cache
# key pins the seeds), so none of these is answered from the cache.
submit --quick --seeds 2 --no-wait \
    --fault '{"stall_at_cycle": 10, "stall_ms": 3000}' \
    scenarios/paper_job_anatomy.json
sleep 0.5  # let the worker claim the first stall job before queueing the next
submit --quick --seeds 2 --no-wait \
    --fault '{"stall_at_cycle": 10, "stall_ms": 3000}' \
    scenarios/interference_advc_vs_uniform.json
sleep 0.5
rc=0
submit --quick --seeds 4 scenarios/interference_advc_vs_uniform.json || rc=$?
[ "$rc" -eq 3 ] || { echo "expected rejected-overload exit 3, got $rc" >&2; exit 1; }
submit --shutdown
wait "$service_pid"

echo "==> kill-recovery leg (durable state: crash mid-sweep, resume from checkpoint)"
# A state-backed server is aborted by a crash-point fault after three
# sweep-unit commits. A restarted server over the same --state-dir must
# resume the bundled sweep from its checkpoint — recomputing strictly
# fewer cells than the full grid — and the recovered table must be
# byte-identical to an uninterrupted run on a fresh state dir. A final
# submission replays the same bytes from the durable result cache.
recovery_sock="$(mktemp -u /tmp/df-recovery-ci.XXXXXX.sock)"
recovery_dir="$(mktemp -d)"
trap 'rm -rf "${fresh_dir:-}" "${sweep_rerun:-}" "${service_dir:-}" "${recovery_dir:-}"; rm -f "${service_sock:-}" "${recovery_sock:-}"' EXIT
serve_recovery() { # <state-dir> <event-log>
    cargo run --release -p df-bench --bin df-serve -- \
        --socket "$recovery_sock" --workers 1 \
        --state-dir "$1" --event-log "$2" &
    recovery_pid=$!
    for _ in $(seq 1 100); do
        [ -S "$recovery_sock" ] && break
        sleep 0.1
    done
    [ -S "$recovery_sock" ] || { echo "df-serve (recovery leg) never bound its socket" >&2; exit 1; }
}
rsubmit() { cargo run --release -p df-bench --bin df-submit -- --socket "$recovery_sock" "$@"; }
# Uninterrupted baseline on a throwaway state dir.
serve_recovery "$recovery_dir/baseline-state" "$recovery_dir/baseline.jsonl"
rsubmit --sweep --quick --out "$recovery_dir/baseline.json" \
    scenarios/sweep_unfairness_grid.json
rsubmit --shutdown
wait "$recovery_pid"
# Crash leg: the fault aborts the server after the third unit commit;
# the client sees a dropped connection (nonzero exit) and the state dir
# keeps the committed checkpoint lines.
serve_recovery "$recovery_dir/state" "$recovery_dir/crash.jsonl"
rsubmit --sweep --quick --fault '{"crash_after_cells": 3}' \
    scenarios/sweep_unfairness_grid.json 2> /dev/null || true
wait "$recovery_pid" 2> /dev/null || true
# Resume leg: the restart reclaims the stale socket the abort left
# behind, replays the checkpoint, and recomputes only unfinished cells.
serve_recovery "$recovery_dir/state" "$recovery_dir/resume.jsonl"
rsubmit --sweep --quick --out "$recovery_dir/recovered.json" \
    scenarios/sweep_unfairness_grid.json 2> "$recovery_dir/resume.log"
grep -q recovered "$recovery_dir/resume.log"
total_units=36 # 3 loads x 2 patterns x 2 placements x 3 mechanisms, 1 quick seed
resumed_rows=$(grep -c '"event":"sweep_rows"' "$recovery_dir/resume.jsonl")
[ "$resumed_rows" -ge 1 ] && [ "$resumed_rows" -lt "$total_units" ] || {
    echo "resume recomputed $resumed_rows of $total_units units (expected strictly fewer)" >&2
    exit 1
}
cmp "$recovery_dir/baseline.json" "$recovery_dir/recovered.json"
# The completed table is now a durable cache entry: a resubmission is a
# byte-identical cached replay, not a rerun.
rsubmit --sweep --quick --out "$recovery_dir/cached.json" \
    scenarios/sweep_unfairness_grid.json 2> "$recovery_dir/cached.log"
grep -q cached "$recovery_dir/cached.log"
cmp "$recovery_dir/baseline.json" "$recovery_dir/cached.json"
rsubmit --shutdown
wait "$recovery_pid"

echo "==> criterion benches in --test mode (each body runs once)"
cargo bench -p df-bench -- --test

echo "==> end-to-end bench smoke (full warm-up + measurement unit, once)"
cargo bench -p df-bench --bench end_to_end -- --test

echo "==> record perf trajectory (bench-results/BENCH_*.json) + regression gate"
# Absolute path: cargo bench runs the binaries with cwd = the bench
# package directory, so a relative dir would land in crates/bench/.
# Fresh results land in staging dirs first; bench_trend merges the runs
# (per-id median — the loaded full-network cycle drifts with network
# fill, so a single run is too noisy to gate on), diffs them against the
# previous artifacts, fails on a >10% median regression (except on
# sub-microsecond ids like the idle-cycle benches, where ns-scale
# scheduler jitter swamps any percentage), and promotes the merged
# result into bench-results/ (export BENCH_TREND_FLAGS=--allow-regress
# for warn-only, as CI does — shared-runner timings are noisier still).
fresh_dir="$(mktemp -d)"
for i in 1 2 3 4; do
    BENCH_JSON_DIR="$fresh_dir/run$i" cargo bench -p df-bench --bench router_step
done
# The allocator hotspot (the route-cache acceptance number) is gated on
# the median of eight runs: single runs of a saturated network cycle
# swing well past the 10% threshold with scheduler noise, so only merged
# medians are ever promoted into bench-results/.
for i in 1 2 3 4 5 6 7 8; do
    BENCH_JSON_DIR="$fresh_dir/run$i" cargo bench -p df-bench --bench allocator
done
# Each gate run also appends the merged medians to the per-commit perf
# history (bench-results/history.jsonl, archived by the workflow) and
# checks the last 5 entries of each id for sustained same-direction
# drift — the slow leak where every step stays under the 10% threshold
# but the sum does not.
# shellcheck disable=SC2086 # BENCH_TREND_FLAGS is intentionally word-split
cargo run --release -p df-bench --bin bench_trend -- \
    ${BENCH_TREND_FLAGS:-} --baseline bench-results --promote bench-results \
    --history bench-results/history.jsonl --drift 5 \
    "$fresh_dir"/run1 "$fresh_dir"/run2 "$fresh_dir"/run3 "$fresh_dir"/run4 \
    "$fresh_dir"/run5 "$fresh_dir"/run6 "$fresh_dir"/run7 "$fresh_dir"/run8

echo "CI gate passed."
