//! Durable service state: crash-safe result-cache spill files and
//! per-job sweep checkpoints under a `--state-dir`.
//!
//! Layout (all paths relative to the state dir):
//!
//! ```text
//! cache/<digest_hex(key)>.json         one completed result per file
//! cache/<name>.json.tmp                in-flight spill (crash debris)
//! cache/<name>.json.corrupt            quarantined torn/rotted file
//! checkpoints/<digest_hex(key)>.jsonl  one committed (cell, seed) unit
//!                                      of an in-flight sweep per line
//! ```
//!
//! Every write is tempfile-then-rename, so a result file is either the
//! complete document or absent — a `kill -9` mid-spill leaves only a
//! `.tmp` that the next startup deletes. Every read re-derives content
//! digests: a cache file whose payload no longer hashes to its recorded
//! digest (or whose key no longer hashes to its file name) is
//! quarantined with a `.corrupt` suffix, never loaded; a checkpoint
//! line that fails its digest is dropped, so its unit recomputes.
//! Determinism (docs/DETERMINISM.md) is what makes replaying either
//! kind of state sound: the recomputed bytes are provably identical to
//! the recovered ones.

use crate::cache::CacheEntry;
use crate::protocol::digest_hex;
use dragonfly_core::SweepRow;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// One persisted cache entry, as serialized into its spill file. The
/// digest is re-derived on load; the key's own digest must also match
/// the file name, so a file can neither be renamed onto another key nor
/// partially overwritten without detection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PersistedEntry {
    /// The full cache key (`kind:spec-digest:seeds[..]:engine`).
    key: String,
    /// [`digest_hex`] of `result` at spill time.
    digest: String,
    /// The result document, byte-exact.
    result: String,
}

/// One committed sweep unit, as serialized into a checkpoint line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CheckpointLine {
    /// Cell index in expansion order.
    cell: u32,
    /// Master seed of the unit.
    seed: u64,
    /// [`digest_hex`] of the compact-JSON serialization of `rows`.
    digest: String,
    /// The unit's finished long-format rows.
    rows: Vec<SweepRow>,
}

/// What a startup scan of the cache directory found.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Verified entries, in file-name (digest) order.
    pub entries: Vec<(String, CacheEntry)>,
    /// File names quarantined with a `.corrupt` suffix (torn, rotted,
    /// or mismatched), reported as `cache_corrupt` startup events.
    pub quarantined: Vec<String>,
}

/// A verified checkpoint load: the recoverable units of one sweep key.
#[derive(Debug, Clone, Default)]
pub struct CheckpointLoad {
    /// Rows per committed `(cell, seed)` unit (last write wins when a
    /// retried attempt re-committed a unit).
    pub units: HashMap<(u32, u64), Vec<SweepRow>>,
    /// Lines dropped for failing to parse or hash — their units simply
    /// recompute.
    pub dropped: usize,
}

/// Handle on a service state directory.
#[derive(Debug)]
pub struct StateDir {
    root: PathBuf,
}

impl StateDir {
    /// Open (creating if needed) a state directory and its `cache/` and
    /// `checkpoints/` subdirectories.
    pub fn open(root: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(root.join("cache"))?;
        std::fs::create_dir_all(root.join("checkpoints"))?;
        Ok(Self { root: root.to_path_buf() })
    }

    /// The directory this handle persists under.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn cache_file(&self, key: &str) -> PathBuf {
        self.root.join("cache").join(format!("{}.json", digest_hex(key.as_bytes())))
    }

    fn checkpoint_file(&self, key: &str) -> PathBuf {
        self.root.join("checkpoints").join(format!("{}.jsonl", digest_hex(key.as_bytes())))
    }

    // ----------------------------------------------------------------
    // Result-cache spill files
    // ----------------------------------------------------------------

    /// Persist a completed entry: write `<file>.tmp`, then rename into
    /// place. A crash at any point leaves either the old state or the
    /// new — never a half-written result file.
    pub fn spill(&self, key: &str, entry: &CacheEntry) -> std::io::Result<()> {
        let tmp = self.write_spill_tmp(key, entry)?;
        std::fs::rename(&tmp, self.cache_file(key))
    }

    /// The crash-mid-spill fault point: the tempfile half of
    /// [`StateDir::spill`] without the rename. The stray `.tmp` is
    /// exactly what a process killed between write and rename leaves
    /// behind; the next startup scan deletes it.
    pub fn spill_torn(&self, key: &str, entry: &CacheEntry) -> std::io::Result<()> {
        self.write_spill_tmp(key, entry).map(|_| ())
    }

    fn write_spill_tmp(&self, key: &str, entry: &CacheEntry) -> std::io::Result<PathBuf> {
        let persisted = PersistedEntry {
            key: key.to_string(),
            digest: entry.digest.clone(),
            result: entry.result.clone(),
        };
        let json = serde_json::to_string(&persisted)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        // Unique tmp name: two racing completions of the same key must
        // not scribble over each other's half-written spill (whichever
        // rename lands last wins, and both documents are identical by
        // determinism anyway).
        static SPILL_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SPILL_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let target = self.cache_file(key);
        let tmp = target.with_extension(format!("json.{seq}.tmp"));
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(json.as_bytes())?;
        f.sync_all()?;
        Ok(tmp)
    }

    /// Remove a key's spill file (cache eviction, or a corrupt entry
    /// detected in memory). Missing files are fine.
    pub fn unspill(&self, key: &str) {
        let _ = std::fs::remove_file(self.cache_file(key));
    }

    /// Fault-injection hook: flip one byte of a key's persisted spill
    /// file, so the next startup scan must quarantine it. Returns
    /// `false` when no file exists.
    pub fn rot_entry(&self, key: &str) -> bool {
        let path = self.cache_file(key);
        match std::fs::read(&path) {
            Ok(mut bytes) if !bytes.is_empty() => {
                bytes[0] ^= 0x01;
                std::fs::write(&path, bytes).is_ok()
            }
            _ => false,
        }
    }

    /// Scan the cache directory: delete crash debris (`*.tmp`), verify
    /// every `*.json` spill file (parse, re-derive the result digest,
    /// and check the key hashes to the file name), quarantine failures
    /// as `*.corrupt`, and return the verified entries in file-name
    /// order (deterministic across restarts).
    pub fn load_cache(&self) -> LoadReport {
        let mut report = LoadReport::default();
        let dir = self.root.join("cache");
        let Ok(read) = std::fs::read_dir(&dir) else { return report };
        let mut names: Vec<String> = read
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        names.sort();
        for name in names {
            let path = dir.join(&name);
            if name.ends_with(".tmp") {
                // Interrupted spill: the rename never happened, so the
                // entry was never promised. Delete the debris.
                let _ = std::fs::remove_file(&path);
                continue;
            }
            if !name.ends_with(".json") {
                continue; // `.corrupt` quarantine from an earlier scan
            }
            let stem = name.trim_end_matches(".json");
            match std::fs::read(&path).ok().and_then(|bytes| parse_entry(&bytes, stem)) {
                Some((key, entry)) => report.entries.push((key, entry)),
                None => {
                    let _ = std::fs::rename(&path, path.with_extension("json.corrupt"));
                    report.quarantined.push(name);
                }
            }
        }
        report
    }

    // ----------------------------------------------------------------
    // Sweep checkpoints
    // ----------------------------------------------------------------

    /// Append one committed `(cell, seed)` unit to a sweep's checkpoint
    /// file. Callers serialize appends (the service commits under its
    /// recovered-rows lock), so lines never interleave.
    pub fn append_checkpoint(
        &self,
        key: &str,
        cell: u32,
        seed: u64,
        rows: &[SweepRow],
    ) -> std::io::Result<()> {
        let rows = rows.to_vec();
        let digest = digest_hex(
            serde_json::to_string(&rows)
                .map_err(|e| std::io::Error::other(e.to_string()))?
                .as_bytes(),
        );
        let line = serde_json::to_string(&CheckpointLine { cell, seed, digest, rows })
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.checkpoint_file(key))?;
        writeln!(f, "{line}")
    }

    /// Load and verify a sweep's checkpoint: every line must parse and
    /// its rows must re-hash to the recorded digest; failures are
    /// dropped (counted), so their units recompute. A missing file is
    /// an empty load.
    pub fn load_checkpoint(&self, key: &str) -> CheckpointLoad {
        let mut load = CheckpointLoad::default();
        let Ok(bytes) = std::fs::read(self.checkpoint_file(key)) else { return load };
        for raw in bytes.split(|&b| b == b'\n') {
            if raw.is_empty() {
                continue;
            }
            match parse_checkpoint_line(raw) {
                Some(line) => {
                    load.units.insert((line.cell, line.seed), line.rows);
                }
                None => load.dropped += 1,
            }
        }
        load
    }

    /// Fault-injection hook: flip one byte of the *last* line of a
    /// sweep's checkpoint file (the line just committed), so recovery
    /// must drop that unit and recompute it. Returns `false` when no
    /// checkpoint exists.
    pub fn rot_last_checkpoint_line(&self, key: &str) -> bool {
        let path = self.checkpoint_file(key);
        let Ok(mut bytes) = std::fs::read(&path) else { return false };
        // Find the start of the last non-empty line (file ends "…\n").
        let end = bytes.iter().rposition(|&b| b != b'\n').map(|i| i + 1).unwrap_or(0);
        if end == 0 {
            return false;
        }
        let start = bytes[..end].iter().rposition(|&b| b == b'\n').map(|i| i + 1).unwrap_or(0);
        bytes[start] ^= 0x01;
        std::fs::write(&path, bytes).is_ok()
    }

    /// Remove a sweep's checkpoint (its result completed — the spill
    /// file now carries the durable state). Missing files are fine.
    pub fn remove_checkpoint(&self, key: &str) {
        let _ = std::fs::remove_file(self.checkpoint_file(key));
    }

    /// Does a checkpoint file exist for `key`?
    pub fn has_checkpoint(&self, key: &str) -> bool {
        self.checkpoint_file(key).exists()
    }
}

/// Verify one spill file's bytes against its file-name stem. Returns
/// the `(key, entry)` only when the payload re-hashes to its recorded
/// digest *and* the key re-hashes to the file name.
fn parse_entry(bytes: &[u8], stem: &str) -> Option<(String, CacheEntry)> {
    let text = std::str::from_utf8(bytes).ok()?;
    let persisted: PersistedEntry = serde_json::from_str(text).ok()?;
    (digest_hex(persisted.result.as_bytes()) == persisted.digest
        && digest_hex(persisted.key.as_bytes()) == stem)
        .then_some((
            persisted.key,
            CacheEntry { result: persisted.result, digest: persisted.digest },
        ))
}

/// Verify one checkpoint line: UTF-8, parses, and its rows re-hash to
/// the recorded digest.
fn parse_checkpoint_line(raw: &[u8]) -> Option<CheckpointLine> {
    let text = std::str::from_utf8(raw).ok()?;
    let line: CheckpointLine = serde_json::from_str(text).ok()?;
    let rehash = digest_hex(serde_json::to_string(&line.rows).ok()?.as_bytes());
    (rehash == line.digest).then_some(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("df-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(result: &str) -> CacheEntry {
        CacheEntry { result: result.into(), digest: digest_hex(result.as_bytes()) }
    }

    fn row(cell: u32, seed: u64) -> SweepRow {
        SweepRow {
            cell,
            mechanism: "In-Trns-MM".into(),
            load: 0.2,
            placement: "base".into(),
            pattern: "base".into(),
            seed,
            scope: "network".into(),
            nodes: 72,
            offered: 0.2,
            throughput: 0.19,
            avg_latency: 41.5,
            p50_latency: None,
            p95_latency: Some(88),
            p99_latency: Some(120),
            active_cycles: 200,
            delivered_packets: 1234,
            min_injections: 11.0,
            max_min_ratio: Some(1.4),
            cov: 0.1,
            jain: 0.99,
        }
    }

    #[test]
    fn spill_load_roundtrip_in_name_order() {
        let dir = tempdir("roundtrip");
        let state = StateDir::open(&dir).unwrap();
        state.spill("key-a", &entry("result-a")).unwrap();
        state.spill("key-b", &entry("result-b")).unwrap();
        let report = state.load_cache();
        assert!(report.quarantined.is_empty());
        assert_eq!(report.entries.len(), 2);
        let mut keys: Vec<&str> = report.entries.iter().map(|(k, _)| k.as_str()).collect();
        keys.sort();
        assert_eq!(keys, ["key-a", "key-b"]);
        for (key, e) in &report.entries {
            assert_eq!(e.result, format!("result-{}", &key[4..]));
            assert_eq!(e.digest, digest_hex(e.result.as_bytes()));
        }
        // Loading is idempotent: nothing was consumed or quarantined.
        assert_eq!(state.load_cache().entries.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotted_spill_is_quarantined_not_loaded() {
        let dir = tempdir("rot");
        let state = StateDir::open(&dir).unwrap();
        state.spill("k", &entry("payload")).unwrap();
        assert!(state.rot_entry("k"));
        let report = state.load_cache();
        assert!(report.entries.is_empty(), "rotted entry must never load");
        assert_eq!(report.quarantined.len(), 1);
        // The quarantine file is preserved for post-mortems but ignored
        // by subsequent scans.
        let again = state.load_cache();
        assert!(again.entries.is_empty() && again.quarantined.is_empty());
        // A fresh spill of the same key recovers the slot.
        state.spill("k", &entry("payload")).unwrap();
        assert_eq!(state.load_cache().entries.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_spill_leaves_only_deletable_debris() {
        let dir = tempdir("torn");
        let state = StateDir::open(&dir).unwrap();
        state.spill_torn("k", &entry("payload")).unwrap();
        let report = state.load_cache();
        assert!(report.entries.is_empty() && report.quarantined.is_empty());
        // The `.tmp` was deleted by the scan.
        let left: Vec<_> = std::fs::read_dir(dir.join("cache")).unwrap().collect();
        assert!(left.is_empty(), "{left:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn renamed_spill_file_fails_its_key_check() {
        let dir = tempdir("rename");
        let state = StateDir::open(&dir).unwrap();
        state.spill("k1", &entry("payload")).unwrap();
        // An attacker (or a confused backup restore) renames the file
        // onto another key's slot: content digest still matches, but the
        // key no longer hashes to the file name.
        let from = dir.join("cache").join(format!("{}.json", digest_hex(b"k1")));
        let to = dir.join("cache").join(format!("{}.json", digest_hex(b"k2")));
        std::fs::rename(from, to).unwrap();
        let report = state.load_cache();
        assert!(report.entries.is_empty());
        assert_eq!(report.quarantined.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_roundtrip_last_write_wins_and_rot_drops_a_line() {
        let dir = tempdir("ckpt");
        let state = StateDir::open(&dir).unwrap();
        assert!(state.load_checkpoint("swp").units.is_empty());
        state.append_checkpoint("swp", 0, 1, &[row(0, 1)]).unwrap();
        state.append_checkpoint("swp", 1, 1, &[row(1, 1)]).unwrap();
        // A retried attempt re-commits unit (0, 1): last write wins.
        let mut newer = row(0, 1);
        newer.delivered_packets += 1;
        state.append_checkpoint("swp", 0, 1, &[newer.clone()]).unwrap();
        let load = state.load_checkpoint("swp");
        assert_eq!(load.dropped, 0);
        assert_eq!(load.units.len(), 2);
        assert_eq!(load.units[&(0, 1)], vec![newer]);

        // Rot the last line: exactly that unit is dropped on load.
        assert!(state.rot_last_checkpoint_line("swp"));
        let load = state.load_checkpoint("swp");
        assert_eq!(load.dropped, 1);
        assert_eq!(load.units.len(), 2, "units 0 and 1 survive via earlier lines");
        assert_eq!(load.units[&(0, 1)], vec![row(0, 1)], "rotted re-commit fell back");

        assert!(state.has_checkpoint("swp"));
        state.remove_checkpoint("swp");
        assert!(!state.has_checkpoint("swp"));
        assert!(state.load_checkpoint("swp").units.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_checkpoint_tail_loses_only_the_torn_line() {
        let dir = tempdir("trunc");
        let state = StateDir::open(&dir).unwrap();
        state.append_checkpoint("swp", 0, 7, &[row(0, 7)]).unwrap();
        state.append_checkpoint("swp", 1, 7, &[row(1, 7)]).unwrap();
        let path = dir.join("checkpoints").join(format!("{}.jsonl", digest_hex(b"swp")));
        let bytes = std::fs::read(&path).unwrap();
        // Cut mid-way through the second line, as a crash mid-append
        // would.
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let load = state.load_checkpoint("swp");
        assert_eq!(load.dropped, 1);
        assert_eq!(load.units.len(), 1);
        assert_eq!(load.units[&(0, 7)], vec![row(0, 7)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
