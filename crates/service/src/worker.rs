//! The bounded worker pool behind the service.
//!
//! Admission control lives here: the queue has a hard depth cap, and a
//! submission against a full queue is refused *synchronously* with
//! [`SubmitError::Overload`] instead of growing memory without bound —
//! the paper's §III point applied to our own runner: a burst of
//! innocent submissions is indistinguishable from an adversarial one,
//! so the backstop must be structural.
//!
//! Tasks run under `catch_unwind` (a second line of defense behind the
//! service's own per-attempt isolation), so one poisoned job can never
//! take a worker thread — let alone the service — down. Shutdown is
//! graceful: the queue refuses new work, workers drain everything
//! already admitted, and [`WorkerPool::shutdown`] joins them.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work: runs once on a worker thread.
pub type Task = Box<dyn FnOnce() + Send + 'static>;

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at its depth cap.
    Overload {
        /// Tasks queued when the submission arrived.
        queued: u64,
        /// The configured cap.
        limit: u64,
    },
    /// The pool is shutting down and admits nothing new.
    Closed,
}

#[derive(Default)]
struct Queue {
    tasks: VecDeque<Task>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<Queue>,
    wake: Condvar,
    cap: usize,
    /// Tasks completed after the shutdown flag was raised (the drain
    /// count reported by `shutting_down`).
    drained: AtomicU64,
}

/// A fixed-size thread pool over a bounded FIFO queue.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawn `workers` threads over a queue capped at `queue_cap`
    /// waiting tasks (running tasks don't count against the cap).
    pub fn new(workers: usize, queue_cap: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(Queue::default()),
            wake: Condvar::new(),
            cap: queue_cap,
            drained: AtomicU64::new(0),
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self { shared, handles: Mutex::new(handles) }
    }

    /// Admit `task` if the queue has room, calling `on_admit` with the
    /// resulting queue depth *before* any worker can observe the task —
    /// so an `accepted` event always precedes the job's `started`.
    pub fn try_submit(
        &self,
        task: Task,
        on_admit: impl FnOnce(u64),
    ) -> Result<(), SubmitError> {
        let mut queue = self.shared.queue.lock().expect("pool queue lock");
        if queue.shutdown {
            return Err(SubmitError::Closed);
        }
        if queue.tasks.len() >= self.shared.cap {
            return Err(SubmitError::Overload {
                queued: queue.tasks.len() as u64,
                limit: self.shared.cap as u64,
            });
        }
        queue.tasks.push_back(task);
        on_admit(queue.tasks.len() as u64);
        drop(queue);
        self.shared.wake.notify_one();
        Ok(())
    }

    /// Tasks currently waiting (not running).
    pub fn queued(&self) -> usize {
        self.shared.queue.lock().expect("pool queue lock").tasks.len()
    }

    /// Graceful shutdown: refuse new work, let the workers drain every
    /// queued and in-flight task, and join them. Returns the number of
    /// tasks that completed after the shutdown was requested.
    pub fn shutdown(&self) -> u64 {
        {
            let mut queue = self.shared.queue.lock().expect("pool queue lock");
            if queue.shutdown {
                // Second caller: the first drain (still joining, or
                // done) owns the count.
                drop(queue);
                self.join_all();
                return self.shared.drained.load(Ordering::Acquire);
            }
            queue.shutdown = true;
        }
        self.shared.wake.notify_all();
        self.join_all();
        self.shared.drained.load(Ordering::Acquire)
    }

    fn join_all(&self) {
        let handles: Vec<_> =
            std::mem::take(&mut *self.handles.lock().expect("pool handles lock"));
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let task = {
            let mut queue = shared.queue.lock().expect("pool queue lock");
            loop {
                if let Some(task) = queue.tasks.pop_front() {
                    break task;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.wake.wait(queue).expect("pool queue lock");
            }
        };
        let shutting_down = shared.queue.lock().expect("pool queue lock").shutdown;
        // Panic isolation: a task that unwinds must not kill the worker.
        let _ = catch_unwind(AssertUnwindSafe(task));
        if shutting_down {
            shared.drained.fetch_add(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn counting_task(counter: &Arc<AtomicUsize>) -> Task {
        let counter = Arc::clone(counter);
        Box::new(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        })
    }

    #[test]
    fn overload_is_reported_synchronously() {
        // No workers consuming: occupy the single worker with a gate.
        let pool = WorkerPool::new(1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        pool.try_submit(
            Box::new(move || {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            }),
            |_| {},
        )
        .unwrap();
        // Give the worker time to claim the gate task, then fill the queue.
        std::thread::sleep(Duration::from_millis(50));
        let done = Arc::new(AtomicUsize::new(0));
        pool.try_submit(counting_task(&done), |_| {}).unwrap();
        pool.try_submit(counting_task(&done), |_| {}).unwrap();
        let err = pool.try_submit(counting_task(&done), |_| {}).unwrap_err();
        assert_eq!(err, SubmitError::Overload { queued: 2, limit: 2 });
        // Open the gate; shutdown drains the two queued tasks.
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn panicking_task_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1, 8);
        pool.try_submit(Box::new(|| panic!("poisoned job")), |_| {}).unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        pool.try_submit(counting_task(&done), |_| {}).unwrap();
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 1, "worker survived the panic");
    }

    #[test]
    fn shutdown_drains_queued_work_and_closes_admission() {
        let pool = WorkerPool::new(2, 16);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            pool.try_submit(counting_task(&done), |_| {}).unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 10);
        let err = pool.try_submit(counting_task(&done), |_| {}).unwrap_err();
        assert_eq!(err, SubmitError::Closed);
    }

    #[test]
    fn on_admit_sees_the_depth_before_workers_run() {
        let pool = WorkerPool::new(1, 4);
        let mut depth = 0;
        pool.try_submit(Box::new(|| {}), |d| depth = d).unwrap();
        assert_eq!(depth, 1);
        pool.shutdown();
    }
}
