//! The job service: admission, caching, execution, retries, and the
//! structured event stream.
//!
//! [`Service::submit`] is the single entry point. It validates the
//! payload, probes the result cache, applies admission control, and —
//! only then — hands the job to the worker pool. Everything a client
//! learns about a job arrives as [`JobEvent`]s through the submission's
//! sink, ending with exactly one terminal event; nothing is reported
//! via timing or side channels, so tests and the CI gate assert on the
//! stream alone.
//!
//! Robustness invariants enforced here:
//! * a panicking job is isolated (`catch_unwind` per attempt) and
//!   retried with capped exponential backoff before it is `failed`;
//! * a cancelled or timed-out run leaves **no partial output** — the
//!   result document only materializes after a fully completed run, so
//!   an interrupted key stays absent from the cache;
//! * a corrupted cache entry is detected by its digest, evicted, and
//!   recomputed (`cache_corrupt` then a fresh run);
//! * admission control refuses work beyond the queue cap synchronously
//!   (`rejected_overload`), keeping memory bounded under bursts.

use crate::cache::{Lookup, ResultCache};
use crate::fault::FaultSpec;
use crate::job::{effective_seeds, JobPayload};
use crate::protocol::{cache_key, JobEvent, SubmitOptions};
use crate::store::{LoadReport, StateDir};
use crate::worker::{SubmitError, WorkerPool};
use dragonfly_core::{CancelToken, RunCtl, ScenarioError, SweepHooks, SweepRow};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Where a submission's events go. Sinks must be cheap and non-blocking
/// (the worker thread calls them inline); the server layer writes a
/// JSON line per event.
pub type EventSink = Arc<dyn Fn(JobEvent) + Send + Sync>;

/// Service tuning knobs (all have serviceable defaults).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Queue-depth cap: submissions beyond it are `rejected_overload`.
    pub queue_depth: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Retries after a panicking attempt (so `max_retries + 1` attempts
    /// in total). Interrupts and spec errors are never retried.
    pub max_retries: u32,
    /// First retry backoff in milliseconds; doubles per retry.
    pub retry_backoff_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub retry_backoff_cap_ms: u64,
    /// Emit a `progress` event every this many simulated cycles
    /// (0 picks the default, which matches the telemetry timelines'
    /// 1000-cycle windows).
    pub progress_cycles: u64,
    /// Durable state directory (`None` keeps everything in memory).
    /// When set, completed results spill tempfile-then-rename under
    /// `<dir>/cache/`, sweep units checkpoint under
    /// `<dir>/checkpoints/`, and startup reloads every verified entry —
    /// so a `kill -9` loses at most the units in flight.
    pub state_dir: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 16,
            cache_capacity: 256,
            max_retries: 2,
            retry_backoff_ms: 5,
            retry_backoff_cap_ms: 80,
            progress_cycles: 0,
            state_dir: None,
        }
    }
}

impl ServiceConfig {
    fn progress_step(&self) -> u64 {
        if self.progress_cycles == 0 {
            1_000
        } else {
            self.progress_cycles
        }
    }
}

/// The long-running job service. Shareable across threads; the server
/// layer wraps it in an `Arc` and calls [`Service::submit`] from every
/// connection handler.
pub struct Service {
    cfg: ServiceConfig,
    pool: WorkerPool,
    cache: Arc<ResultCache>,
    state: Option<Arc<StateDir>>,
    startup: LoadReport,
    next_job: AtomicU64,
    /// Cancel tokens of queued + running jobs, by job id.
    registry: Arc<Mutex<HashMap<u64, CancelToken>>>,
}

impl Service {
    /// Start a service with `cfg`'s worker pool and cache.
    ///
    /// # Panics
    ///
    /// Panics when `cfg.state_dir` is set but cannot be created — use
    /// [`Service::open`] to handle the I/O error instead.
    pub fn new(cfg: ServiceConfig) -> Self {
        Self::open(cfg).expect("open service state dir")
    }

    /// [`Service::new`], surfacing state-directory I/O errors. With a
    /// `state_dir` configured, the startup scan reloads every verified
    /// persisted result (and quarantines corrupt files) before the
    /// first submission can probe the cache; the scan's findings are
    /// available via [`Service::startup_report`].
    pub fn open(cfg: ServiceConfig) -> std::io::Result<Self> {
        let (cache, state, startup) = match &cfg.state_dir {
            Some(dir) => {
                let state = Arc::new(StateDir::open(dir)?);
                let (cache, report) =
                    ResultCache::with_state(cfg.cache_capacity, Arc::clone(&state));
                (cache, Some(state), report)
            }
            None => (ResultCache::new(cfg.cache_capacity), None, LoadReport::default()),
        };
        let (workers, queue_depth) = (cfg.workers, cfg.queue_depth);
        Ok(Self {
            cfg,
            pool: WorkerPool::new(workers, queue_depth),
            cache: Arc::new(cache),
            state,
            startup,
            next_job: AtomicU64::new(0),
            registry: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// What the startup scan of the state directory found (empty when
    /// the service runs memory-only).
    pub fn startup_report(&self) -> &LoadReport {
        &self.startup
    }

    /// Server-level events describing the startup scan: one
    /// `cache_corrupt` per quarantined file, under the reserved job
    /// id 0 (submissions number from 1).
    pub fn startup_events(&self) -> Vec<JobEvent> {
        self.startup
            .quarantined
            .iter()
            .map(|name| JobEvent::CacheCorrupt { job: 0, key: name.clone() })
            .collect()
    }

    /// Submit a job. Returns the job id; every outcome — including
    /// rejection — is reported through `sink`, ending with exactly one
    /// terminal event.
    pub fn submit(&self, payload: JobPayload, options: SubmitOptions, sink: EventSink) -> u64 {
        let job = self.next_job.fetch_add(1, Ordering::AcqRel) + 1;
        let seeds = effective_seeds(&options.seeds);

        if let Err(e) = payload.validate(&seeds) {
            sink(JobEvent::Rejected { job, error: e.to_string() });
            return job;
        }
        let spec_json = match payload.spec_json() {
            Ok(j) => j,
            Err(e) => {
                sink(JobEvent::Rejected { job, error: e.to_string() });
                return job;
            }
        };
        let key = cache_key(payload.kind(), &spec_json, &seeds);

        match self.cache.lookup(&key) {
            Lookup::Hit(entry) => {
                if let Some(state) = &self.state {
                    // A completed result supersedes any checkpoint a
                    // crashed earlier run of this key left behind.
                    state.remove_checkpoint(&key);
                }
                sink(JobEvent::Cached { job, key, digest: entry.digest, result: entry.result });
                return job;
            }
            Lookup::Corrupt => sink(JobEvent::CacheCorrupt { job, key: key.clone() }),
            Lookup::Miss => {}
        }

        // Register the cancel token before the job is visible to any
        // worker, so `cancel` works on queued jobs too.
        let token = CancelToken::new();
        self.registry.lock().expect("registry lock").insert(job, token.clone());

        let ctx = JobContext {
            cfg: self.cfg.clone(),
            cache: Arc::clone(&self.cache),
            state: self.state.clone(),
            registry: Arc::clone(&self.registry),
            sink: Arc::clone(&sink),
            job,
            key: key.clone(),
            seeds,
            payload,
            fault: options.fault.unwrap_or_default(),
            deadline_ms: options.deadline_ms,
            token,
        };
        let admit_sink = Arc::clone(&sink);
        let submitted = self.pool.try_submit(
            Box::new(move || ctx.run()),
            // Under the queue lock: `accepted` is on the wire before any
            // worker can emit this job's `started`.
            |queue_depth| admit_sink(JobEvent::Accepted { job, key, queue_depth }),
        );
        if let Err(err) = submitted {
            self.registry.lock().expect("registry lock").remove(&job);
            match err {
                SubmitError::Overload { queued, limit } => {
                    sink(JobEvent::RejectedOverload { job, queued, limit })
                }
                SubmitError::Closed => sink(JobEvent::Rejected {
                    job,
                    error: "service is shutting down".into(),
                }),
            }
        }
        job
    }

    /// Cooperatively cancel a queued or running job. Returns `false`
    /// when the id is unknown (never submitted, or already terminal).
    pub fn cancel(&self, job: u64) -> bool {
        match self.registry.lock().expect("registry lock").get(&job) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// Jobs currently waiting in the queue (not running).
    pub fn queued(&self) -> usize {
        self.pool.queued()
    }

    /// Graceful shutdown: refuse new submissions and drain every queued
    /// and in-flight job to its terminal event. Returns the number of
    /// jobs drained after the shutdown was requested.
    pub fn shutdown(&self) -> u64 {
        self.pool.shutdown()
    }
}

/// Everything a worker needs to run one job to its terminal event.
struct JobContext {
    cfg: ServiceConfig,
    cache: Arc<ResultCache>,
    state: Option<Arc<StateDir>>,
    registry: Arc<Mutex<HashMap<u64, CancelToken>>>,
    sink: EventSink,
    job: u64,
    key: String,
    seeds: Vec<u64>,
    payload: JobPayload,
    fault: FaultSpec,
    deadline_ms: Option<u64>,
    token: CancelToken,
}

/// Sweep units already in hand — recovered from a checkpoint file or
/// computed by an earlier (panic-retried) attempt — keyed `(cell,
/// seed)`. Units in here are never re-simulated.
type RecoveredUnits = Mutex<HashMap<(u32, u64), Vec<SweepRow>>>;

impl JobContext {
    /// The attempt loop: run, and on a panic retry with capped
    /// exponential backoff until `max_retries` is exhausted.
    fn run(self) {
        let max_attempts = self.cfg.max_retries + 1;
        let total_cycles = self.payload.total_cycles(&self.seeds);
        let recovered: RecoveredUnits = Mutex::new(self.load_recovered_units());
        // Commit ordinal within this job — the 1-based counter the
        // crash/rot faults key off.
        let committed = AtomicU32::new(0);
        let mut attempt = 1u32;
        loop {
            (self.sink)(JobEvent::Started { job: self.job, attempt });
            match self.attempt_once(attempt, total_cycles, &recovered, &committed) {
                Ok(Ok(result)) => {
                    if self.fault.crashes_mid_spill() {
                        // Fault harness: die between the spill's
                        // tempfile write and its rename — the result
                        // was never promised, so a restart must treat
                        // the key as absent and recompute it.
                        if let Some(state) = &self.state {
                            let digest =
                                crate::protocol::digest_hex(result.as_bytes());
                            let _ = state.spill_torn(
                                &self.key,
                                &crate::cache::CacheEntry { result, digest },
                            );
                        }
                        std::process::abort();
                    }
                    let digest = self.cache.insert(&self.key, result.clone());
                    if self.fault.corrupts_cache() {
                        // Fault harness: rot the entry *after* the clean
                        // result went out, so the next submission of
                        // this key exercises the digest check.
                        self.cache.corrupt(&self.key);
                    }
                    if let Some(state) = &self.state {
                        // The spill file is now the durable state; the
                        // checkpoint has served its purpose.
                        state.remove_checkpoint(&self.key);
                    }
                    (self.sink)(JobEvent::Completed {
                        job: self.job,
                        key: self.key.clone(),
                        digest,
                        result,
                    });
                    break;
                }
                Ok(Err(ScenarioError::Cancelled { at_cycle })) => {
                    (self.sink)(JobEvent::Cancelled { job: self.job, at_cycle });
                    break;
                }
                Ok(Err(ScenarioError::DeadlineExceeded { at_cycle })) => {
                    (self.sink)(JobEvent::TimedOut { job: self.job, at_cycle });
                    break;
                }
                Ok(Err(err)) => {
                    // A spec error that only surfaces at run time is
                    // deterministic — retrying cannot help.
                    (self.sink)(JobEvent::Failed {
                        job: self.job,
                        attempts: attempt,
                        error: err.to_string(),
                    });
                    break;
                }
                Err(panic_msg) => {
                    if attempt >= max_attempts {
                        (self.sink)(JobEvent::Failed {
                            job: self.job,
                            attempts: attempt,
                            error: panic_msg,
                        });
                        break;
                    }
                    let backoff_ms = self
                        .cfg
                        .retry_backoff_ms
                        .saturating_mul(1 << (attempt - 1).min(16))
                        .min(self.cfg.retry_backoff_cap_ms);
                    (self.sink)(JobEvent::Retried {
                        job: self.job,
                        attempt,
                        backoff_ms,
                        error: panic_msg,
                    });
                    std::thread::sleep(Duration::from_millis(backoff_ms));
                    attempt += 1;
                }
            }
        }
        self.registry.lock().expect("registry lock").remove(&self.job);
    }

    /// Load and validate this key's checkpoint (sweep payloads on a
    /// state-backed service only), emitting a `recovered` event when
    /// any verified units survive. Units referencing cells or seeds
    /// outside the submitted grid are discarded — a checkpoint can
    /// only ever *shrink* the work, never smuggle foreign rows in.
    fn load_recovered_units(&self) -> HashMap<(u32, u64), Vec<SweepRow>> {
        let Some(state) = &self.state else { return HashMap::new() };
        if !matches!(self.payload, JobPayload::Sweep(_)) || !state.has_checkpoint(&self.key) {
            return HashMap::new();
        }
        let total_units = self.payload.total_units(&self.seeds);
        let n_cells = total_units / (self.seeds.len() as u64).max(1);
        let load = state.load_checkpoint(&self.key);
        let units: HashMap<(u32, u64), Vec<SweepRow>> = load
            .units
            .into_iter()
            .filter(|((cell, seed), _)| {
                u64::from(*cell) < n_cells && self.seeds.contains(seed)
            })
            .collect();
        if !units.is_empty() {
            (self.sink)(JobEvent::Recovered {
                job: self.job,
                key: self.key.clone(),
                cells_done: units.len() as u64,
                cells_total: total_units,
            });
        }
        units
    }

    /// One isolated attempt. The outer `Err` is a caught panic (its
    /// message), the inner result is the run's own outcome.
    fn attempt_once(
        &self,
        attempt: u32,
        total_cycles: u64,
        recovered: &RecoveredUnits,
        committed: &AtomicU32,
    ) -> Result<Result<String, ScenarioError>, String> {
        let deadline = self.deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
        let panic_cycle = self.fault.panic_cycle(attempt);
        let stall = self.fault.stall();
        let stalled = AtomicBool::new(false);
        let done = AtomicU64::new(0);
        let step = self.cfg.progress_step();
        let sink = &self.sink;
        let job = self.job;
        let on_cycle = move |cycle: u64| {
            if panic_cycle == Some(cycle) {
                panic!("injected fault: panic at cycle {cycle}");
            }
            if let Some((stall_cycle, stall_ms)) = stall {
                // One stall per attempt, on whichever parallel cell
                // reaches the cycle first.
                if cycle == stall_cycle && !stalled.swap(true, Ordering::AcqRel) {
                    std::thread::sleep(Duration::from_millis(stall_ms));
                }
            }
            let done_cycles = done.fetch_add(1, Ordering::AcqRel) + 1;
            if done_cycles.is_multiple_of(step) {
                sink(JobEvent::Progress { job, done_cycles, total_cycles });
            }
        };
        let ctl = RunCtl {
            cancel: Some(&self.token),
            deadline,
            on_cycle: Some(&on_cycle),
        };
        // Sweep hooks: units in hand (checkpointed or computed by an
        // earlier attempt) skip simulation; each freshly computed unit
        // commits — map + checkpoint line under one lock, so the commit
        // ordinal is stable and lines never interleave — then streams
        // its rows and fires any commit-keyed fault.
        let precomputed = |cell: u32, seed: u64| -> Option<Vec<SweepRow>> {
            recovered.lock().expect("recovered units lock").get(&(cell, seed)).cloned()
        };
        let on_rows = |cell: u32, seed: u64, rows: &[SweepRow]| {
            let ordinal = {
                let mut units = recovered.lock().expect("recovered units lock");
                units.insert((cell, seed), rows.to_vec());
                let ordinal = committed.fetch_add(1, Ordering::AcqRel) + 1;
                if let Some(state) = &self.state {
                    let _ = state.append_checkpoint(&self.key, cell, seed, rows);
                    if self.fault.rot_line() == Some(ordinal) {
                        // Still under the lock: the rotted line must be
                        // the one just appended, not a later worker's.
                        state.rot_last_checkpoint_line(&self.key);
                    }
                }
                ordinal
            };
            sink(JobEvent::SweepRows { job, cell, seed, rows: rows.to_vec() });
            if self.fault.crash_after() == Some(ordinal) {
                // The `kill -9` fault: die with at least `ordinal`
                // committed checkpoint lines on disk.
                std::process::abort();
            }
            if self.fault.cancel_after() == Some(ordinal) {
                self.token.cancel();
            }
        };
        let hooks = SweepHooks { precomputed: Some(&precomputed), on_rows: Some(&on_rows) };
        catch_unwind(AssertUnwindSafe(|| {
            self.payload.execute_hooked(&self.seeds, &ctl, &hooks)
        }))
        // `&*` reborrows the box's contents: `&payload` would unsize
        // the `Box` itself into `dyn Any` and every downcast would miss.
        .map_err(|payload| panic_message(&*payload))
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_core::df_engine::ArbiterPolicy;
    use dragonfly_core::df_routing::MechanismSpec;
    use dragonfly_core::df_topology::{Arrangement, DragonflyParams};
    use dragonfly_core::df_traffic::PatternSpec;
    use df_workload::{InjectionSpec, JobSpec, PlacementSpec, ScenarioSpec};

    fn tiny_scenario() -> ScenarioSpec {
        ScenarioSpec {
            name: "svc-unit".into(),
            params: DragonflyParams::figure1(),
            arrangement: Arrangement::Palmtree,
            mechanisms: vec![MechanismSpec::InTransitMm],
            arbiter: ArbiterPolicy::TransitPriority,
            warmup_cycles: 100,
            measure_cycles: 200,
            telemetry: None,
            shards: None,
            jobs: vec![JobSpec {
                name: "app".into(),
                placement: PlacementSpec::ConsecutiveGroups { first: 0, count: 2, slots: None },
                pattern: PatternSpec::Uniform,
                injection: InjectionSpec::Bernoulli,
                load: 0.2,
                start_cycle: None,
                stop_cycle: None,
            }],
        }
    }

    /// Collect a submission's events and wait for its terminal one.
    fn collecting_sink() -> (EventSink, Arc<Mutex<Vec<JobEvent>>>) {
        let events = Arc::new(Mutex::new(Vec::new()));
        let sunk = Arc::clone(&events);
        let sink: EventSink = Arc::new(move |e| sunk.lock().unwrap().push(e));
        (sink, events)
    }

    fn wait_terminal(events: &Arc<Mutex<Vec<JobEvent>>>, job: u64) -> Vec<JobEvent> {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            {
                let evs = events.lock().unwrap();
                if evs.iter().any(|e| e.job() == Some(job) && e.is_terminal()) {
                    return evs.iter().filter(|e| e.job() == Some(job)).cloned().collect();
                }
            }
            assert!(Instant::now() < deadline, "no terminal event for job {job}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    fn options(fault: Option<FaultSpec>, deadline_ms: Option<u64>) -> SubmitOptions {
        SubmitOptions { seeds: Some(vec![1]), deadline_ms, fault }
    }

    #[test]
    fn completed_then_cached_byte_identical() {
        let svc = Service::new(ServiceConfig { workers: 1, ..ServiceConfig::default() });
        let (sink, events) = collecting_sink();
        let job1 =
            svc.submit(JobPayload::Scenario(tiny_scenario()), options(None, None), sink.clone());
        let evs1 = wait_terminal(&events, job1);
        assert_eq!(evs1[0].label(), "accepted");
        let (key1, digest1, result1) = match evs1.last().unwrap() {
            JobEvent::Completed { key, digest, result, .. } => {
                (key.clone(), digest.clone(), result.clone())
            }
            other => panic!("expected completed, got {other:?}"),
        };
        let job2 = svc.submit(JobPayload::Scenario(tiny_scenario()), options(None, None), sink);
        let evs2 = wait_terminal(&events, job2);
        match &evs2[..] {
            [JobEvent::Cached { key, digest, result, .. }] => {
                assert_eq!(*key, key1);
                assert_eq!(*digest, digest1);
                assert_eq!(*result, result1, "cache replay must be byte-identical");
            }
            other => panic!("expected a lone cached event, got {other:?}"),
        }
        svc.shutdown();
    }

    #[test]
    fn panic_fault_retries_then_completes() {
        let svc = Service::new(ServiceConfig { workers: 1, ..ServiceConfig::default() });
        let (sink, events) = collecting_sink();
        let fault = FaultSpec { panic_at_cycle: Some(50), ..FaultSpec::default() };
        let job =
            svc.submit(JobPayload::Scenario(tiny_scenario()), options(Some(fault), None), sink);
        let evs = wait_terminal(&events, job);
        let labels: Vec<_> = evs.iter().map(|e| e.label()).collect();
        assert!(labels.contains(&"retried"), "{labels:?}");
        assert_eq!(*labels.last().unwrap(), "completed", "{labels:?}");
        // Attempt numbering: started(1), retried(1), started(2).
        let started: Vec<_> = evs
            .iter()
            .filter_map(|e| match e {
                JobEvent::Started { attempt, .. } => Some(*attempt),
                _ => None,
            })
            .collect();
        assert_eq!(started, vec![1, 2]);
        svc.shutdown();
    }

    #[test]
    fn persistent_panic_exhausts_retries_and_fails() {
        let svc = Service::new(ServiceConfig {
            workers: 1,
            max_retries: 1,
            ..ServiceConfig::default()
        });
        let (sink, events) = collecting_sink();
        let fault = FaultSpec {
            panic_at_cycle: Some(50),
            panic_attempts: Some(u32::MAX),
            ..FaultSpec::default()
        };
        let job = svc.submit(
            JobPayload::Scenario(tiny_scenario()),
            options(Some(fault), None),
            sink.clone(),
        );
        let evs = wait_terminal(&events, job);
        match evs.last().unwrap() {
            JobEvent::Failed { attempts, error, .. } => {
                assert_eq!(*attempts, 2);
                assert!(error.contains("injected fault"), "{error}");
            }
            other => panic!("expected failed, got {other:?}"),
        }
        // The service keeps serving after the poisoned job.
        let job2 = svc.submit(JobPayload::Scenario(tiny_scenario()), options(None, None), sink);
        let evs2 = wait_terminal(&events, job2);
        assert_eq!(evs2.last().unwrap().label(), "completed");
        svc.shutdown();
    }

    #[test]
    fn stall_past_deadline_times_out_without_output() {
        let svc = Service::new(ServiceConfig { workers: 1, ..ServiceConfig::default() });
        let (sink, events) = collecting_sink();
        let fault = FaultSpec {
            stall_at_cycle: Some(50),
            stall_ms: Some(150),
            ..FaultSpec::default()
        };
        let job = svc.submit(
            JobPayload::Scenario(tiny_scenario()),
            options(Some(fault), Some(50)),
            sink.clone(),
        );
        let evs = wait_terminal(&events, job);
        assert!(matches!(evs.last().unwrap(), JobEvent::TimedOut { .. }), "{evs:?}");
        // No partial output: a clean resubmission recomputes (completed,
        // not cached).
        let job2 = svc.submit(JobPayload::Scenario(tiny_scenario()), options(None, None), sink);
        let evs2 = wait_terminal(&events, job2);
        assert_eq!(evs2.last().unwrap().label(), "completed");
        svc.shutdown();
    }

    #[test]
    fn corrupt_cache_fault_is_detected_and_recomputed() {
        let svc = Service::new(ServiceConfig { workers: 1, ..ServiceConfig::default() });
        let (sink, events) = collecting_sink();
        let fault = FaultSpec { corrupt_cache: Some(true), ..FaultSpec::default() };
        let job1 = svc.submit(
            JobPayload::Scenario(tiny_scenario()),
            options(Some(fault), None),
            sink.clone(),
        );
        let evs1 = wait_terminal(&events, job1);
        let result1 = match evs1.last().unwrap() {
            JobEvent::Completed { result, .. } => result.clone(),
            other => panic!("expected completed, got {other:?}"),
        };
        // Same key resubmitted: the rotted entry must fail its digest
        // check and the job recomputes to the byte-identical document.
        let job2 = svc.submit(JobPayload::Scenario(tiny_scenario()), options(None, None), sink);
        let evs2 = wait_terminal(&events, job2);
        let labels: Vec<_> = evs2.iter().map(|e| e.label()).collect();
        assert_eq!(labels[0], "cache_corrupt", "{labels:?}");
        match evs2.last().unwrap() {
            JobEvent::Completed { result, .. } => assert_eq!(*result, result1),
            other => panic!("expected completed, got {other:?}"),
        }
        svc.shutdown();
    }

    #[test]
    fn cancel_during_run_emits_cancelled_and_no_cache_entry() {
        let svc = Service::new(ServiceConfig { workers: 1, ..ServiceConfig::default() });
        let (sink, events) = collecting_sink();
        // Stall long enough for the cancel to land mid-run.
        let fault = FaultSpec {
            stall_at_cycle: Some(10),
            stall_ms: Some(300),
            ..FaultSpec::default()
        };
        let job = svc.submit(
            JobPayload::Scenario(tiny_scenario()),
            options(Some(fault), None),
            sink.clone(),
        );
        // Wait for `started`, then cancel.
        let deadline = Instant::now() + Duration::from_secs(30);
        while !events
            .lock()
            .unwrap()
            .iter()
            .any(|e| matches!(e, JobEvent::Started { job: j, .. } if *j == job))
        {
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(svc.cancel(job));
        let evs = wait_terminal(&events, job);
        assert!(matches!(evs.last().unwrap(), JobEvent::Cancelled { .. }), "{evs:?}");
        // Unknown id after the terminal event: registry entry is gone.
        assert!(!svc.cancel(job));
        let job2 = svc.submit(JobPayload::Scenario(tiny_scenario()), options(None, None), sink);
        let evs2 = wait_terminal(&events, job2);
        assert_eq!(evs2.last().unwrap().label(), "completed", "cancel left no cache entry");
        svc.shutdown();
    }
}
