//! Job payloads: the unit of work a submission carries.
//!
//! A payload knows how to pre-validate itself (so a bad spec is
//! rejected at submit time, before it ever reaches a worker), how many
//! driver cycles it will simulate (the denominator of `progress`
//! events), and how to execute under a [`RunCtl`] into the canonical
//! result document — the exact JSON text that gets cached, digested,
//! and replayed on a cache hit.

use dragonfly_core::{
    run_scenario_ctl, run_sweep_hooked, RunCtl, ScenarioError, SweepHooks, DEFAULT_SEEDS,
};
use df_workload::{ScenarioSpec, SweepSpec};

/// The work behind one submission.
#[derive(Debug, Clone)]
pub enum JobPayload {
    /// A multi-job scenario ([`dragonfly_core::run_scenario`]).
    Scenario(ScenarioSpec),
    /// A sweep grid ([`dragonfly_core::run_sweep`]).
    Sweep(SweepSpec),
}

impl JobPayload {
    /// The cache-key kind component.
    pub fn kind(&self) -> &'static str {
        match self {
            JobPayload::Scenario(_) => "scenario",
            JobPayload::Sweep(_) => "sweep",
        }
    }

    /// The spec serialized to canonical JSON — the hashed component of
    /// the cache key. Serialization of a deserialized spec is
    /// deterministic (struct fields serialize in declaration order), so
    /// semantically identical submissions share a key even when the
    /// client formatted its JSON differently.
    ///
    /// The `shards` field is stripped before hashing: shard count is an
    /// operational knob with bit-identical output (the determinism
    /// contract, pinned by the sharding test suite), so a sharded and a
    /// serial submission of the same experiment share one cache entry.
    pub fn spec_json(&self) -> Result<String, ScenarioError> {
        match self {
            JobPayload::Scenario(s) => {
                let mut s = s.clone();
                s.shards = None;
                serde_json::to_string(&s)
            }
            JobPayload::Sweep(s) => {
                let mut s = s.clone();
                s.base.shards = None;
                serde_json::to_string(&s)
            }
        }
        .map_err(|e| ScenarioError::spec(format!("spec serialization: {e}")))
    }

    /// Cheap structural validation at submit time: a rejected spec never
    /// occupies a queue slot. Runtime-only failures (e.g. an
    /// out-of-range hotspot index) still surface from the worker as a
    /// `failed` event.
    pub fn validate(&self, seeds: &[u64]) -> Result<(), ScenarioError> {
        if seeds.is_empty() {
            return Err(ScenarioError::spec("need at least one seed"));
        }
        match self {
            JobPayload::Scenario(s) => s.validate(seeds[0]).map_err(ScenarioError::spec),
            JobPayload::Sweep(s) => {
                let cells = s.expand().map_err(ScenarioError::spec)?;
                for (c, cell) in cells.iter().enumerate() {
                    cell.scenario
                        .validate(seeds[0])
                        .map_err(|e| ScenarioError::spec(format!("cell {c}: {e}")))?;
                }
                Ok(())
            }
        }
    }

    /// Total driver cycles this payload will simulate across all of its
    /// parallel cells — the `total_cycles` of `progress` events.
    pub fn total_cycles(&self, seeds: &[u64]) -> u64 {
        let n_seeds = seeds.len() as u64;
        match self {
            JobPayload::Scenario(s) => {
                (s.warmup_cycles + s.measure_cycles) * s.mechanisms.len() as u64 * n_seeds
            }
            JobPayload::Sweep(s) => match s.expand() {
                Ok(cells) => cells
                    .iter()
                    .map(|c| c.scenario.warmup_cycles + c.scenario.measure_cycles)
                    .sum::<u64>()
                    .saturating_mul(n_seeds),
                Err(_) => 0,
            },
        }
    }

    /// Run the payload under `ctl` and serialize the canonical result
    /// document: the scenario *summary* (no raw runs) or the full sweep
    /// table, pretty-printed. Byte-identical across runs of the same
    /// key per the determinism contract.
    pub fn execute(&self, seeds: &[u64], ctl: &RunCtl<'_>) -> Result<String, ScenarioError> {
        self.execute_hooked(seeds, ctl, &SweepHooks::NONE)
    }

    /// [`JobPayload::execute`] with sweep observation hooks: a sweep
    /// payload recovers `(cell, seed)` units through `hooks.precomputed`
    /// and streams each freshly computed unit's rows through
    /// `hooks.on_rows`; scenario payloads ignore the hooks. The result
    /// document is byte-identical whether or not units were recovered —
    /// rows merge in deterministic cell-major order.
    pub fn execute_hooked(
        &self,
        seeds: &[u64],
        ctl: &RunCtl<'_>,
        hooks: &SweepHooks<'_>,
    ) -> Result<String, ScenarioError> {
        let doc = match self {
            JobPayload::Scenario(s) => {
                let result = run_scenario_ctl(s, seeds, ctl)?;
                serde_json::to_string_pretty(&result.summary())
            }
            JobPayload::Sweep(s) => {
                let table = run_sweep_hooked(s, seeds, ctl, hooks)?;
                serde_json::to_string_pretty(&table)
            }
        };
        doc.map_err(|e| ScenarioError::spec(format!("result serialization: {e}")))
    }

    /// Number of `(cell, seed)` units the payload runs: the sweep grid
    /// times the seed list (scenarios count mechanism × seed runs).
    /// This is the `cells_total` of `recovered` events.
    pub fn total_units(&self, seeds: &[u64]) -> u64 {
        let n_seeds = seeds.len() as u64;
        match self {
            JobPayload::Scenario(s) => s.mechanisms.len() as u64 * n_seeds,
            JobPayload::Sweep(s) => {
                s.expand().map(|cells| cells.len() as u64).unwrap_or(0) * n_seeds
            }
        }
    }
}

/// The seeds a submission runs under: the client's, or the paper's
/// three-simulation protocol.
pub fn effective_seeds(requested: &Option<Vec<u64>>) -> Vec<u64> {
    match requested {
        Some(seeds) if !seeds.is_empty() => seeds.clone(),
        _ => DEFAULT_SEEDS.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_core::df_engine::ArbiterPolicy;
    use dragonfly_core::df_routing::MechanismSpec;
    use dragonfly_core::df_topology::{Arrangement, DragonflyParams};
    use dragonfly_core::df_traffic::PatternSpec;
    use df_workload::{InjectionSpec, JobSpec, PlacementSpec};

    fn tiny_scenario() -> ScenarioSpec {
        ScenarioSpec {
            name: "svc-tiny".into(),
            params: DragonflyParams::figure1(),
            arrangement: Arrangement::Palmtree,
            mechanisms: vec![MechanismSpec::InTransitMm],
            arbiter: ArbiterPolicy::TransitPriority,
            warmup_cycles: 100,
            measure_cycles: 200,
            telemetry: None,
            shards: None,
            jobs: vec![JobSpec {
                name: "app".into(),
                placement: PlacementSpec::ConsecutiveGroups { first: 0, count: 2, slots: None },
                pattern: PatternSpec::Uniform,
                injection: InjectionSpec::Bernoulli,
                load: 0.2,
                start_cycle: None,
                stop_cycle: None,
            }],
        }
    }

    #[test]
    fn total_cycles_counts_every_cell() {
        let p = JobPayload::Scenario(tiny_scenario());
        // (warmup + measure) × 1 mechanism × 2 seeds
        assert_eq!(p.total_cycles(&[1, 2]), 300 * 2);
    }

    #[test]
    fn validate_rejects_empty_seeds_and_bad_specs() {
        let p = JobPayload::Scenario(tiny_scenario());
        assert!(p.validate(&[]).is_err());
        assert!(p.validate(&[1]).is_ok());
        let mut bad = tiny_scenario();
        bad.jobs.clear();
        assert!(JobPayload::Scenario(bad).validate(&[1]).is_err());
    }

    #[test]
    fn execute_is_byte_deterministic() {
        let p = JobPayload::Scenario(tiny_scenario());
        let a = p.execute(&[7], &RunCtl::NONE).unwrap();
        let b = p.execute(&[7], &RunCtl::NONE).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("svc-tiny"));
    }

    /// The cache-key satellite: the key hashes the *canonical*
    /// serialization of the parsed spec, never the client's raw bytes —
    /// so whitespace and key-order variants of the same spec share a
    /// key and hit each other's cache entries.
    #[test]
    fn spec_json_is_canonical_across_client_formattings() {
        use crate::protocol::cache_key;
        // The same two-field job spec in three client formattings:
        // compact, pretty-printed, and with its keys in a different
        // order (field-order-insensitive deserialization).
        let compact = r#"{"name":"fmt","params":{"p":3,"a":6,"h":3},"arrangement":"Palmtree","mechanisms":["in-transit-mm"],"arbiter":"TransitPriority","warmup_cycles":100,"measure_cycles":200,"jobs":[{"name":"app","placement":{"placement":"consecutive_groups","first":0,"count":2},"pattern":{"pattern":"uniform"},"injection":{"process":"bernoulli"},"load":0.2}]}"#;
        let pretty = r#"{
            "name": "fmt",
            "params": { "p": 3, "a": 6, "h": 3 },
            "arrangement": "Palmtree",
            "mechanisms": [ "in-transit-mm" ],
            "arbiter": "TransitPriority",
            "warmup_cycles": 100,
            "measure_cycles": 200,
            "jobs": [ {
                "name": "app",
                "placement": { "placement": "consecutive_groups", "first": 0, "count": 2 },
                "pattern": { "pattern": "uniform" },
                "injection": { "process": "bernoulli" },
                "load": 0.2
            } ]
        }"#;
        let reordered = r#"{
            "jobs": [ {
                "load": 0.2,
                "injection": { "process": "bernoulli" },
                "pattern": { "pattern": "uniform" },
                "placement": { "count": 2, "first": 0, "placement": "consecutive_groups" },
                "name": "app"
            } ],
            "measure_cycles": 200,
            "warmup_cycles": 100,
            "arbiter": "TransitPriority",
            "mechanisms": [ "in-transit-mm" ],
            "arrangement": "Palmtree",
            "params": { "h": 3, "a": 6, "p": 3 },
            "name": "fmt"
        }"#;
        let keys: Vec<String> = [compact, pretty, reordered]
            .iter()
            .map(|text| {
                let spec: ScenarioSpec = serde_json::from_str(text).unwrap();
                let payload = JobPayload::Scenario(spec);
                cache_key(payload.kind(), &payload.spec_json().unwrap(), &[1, 2])
            })
            .collect();
        assert_eq!(keys[0], keys[1], "whitespace must not change the key");
        assert_eq!(keys[0], keys[2], "key order must not change the key");
    }

    /// Shard count is excluded from the cache key by contract: output is
    /// bit-identical for every value, so a sharded resubmission of a
    /// cached experiment must hit the serial run's entry.
    #[test]
    fn shards_do_not_enter_the_cache_key() {
        use crate::protocol::cache_key;
        let serial = JobPayload::Scenario(tiny_scenario());
        let mut spec = tiny_scenario();
        spec.shards = Some(4);
        let sharded = JobPayload::Scenario(spec);
        assert_eq!(
            cache_key(serial.kind(), &serial.spec_json().unwrap(), &[1, 2]),
            cache_key(sharded.kind(), &sharded.spec_json().unwrap(), &[1, 2]),
        );
    }

    #[test]
    fn total_units_counts_the_grid() {
        let p = JobPayload::Scenario(tiny_scenario());
        // 1 mechanism × 2 seeds.
        assert_eq!(p.total_units(&[1, 2]), 2);
    }

    #[test]
    fn effective_seeds_defaults_to_the_paper_protocol() {
        assert_eq!(effective_seeds(&None), DEFAULT_SEEDS.to_vec());
        assert_eq!(effective_seeds(&Some(vec![])), DEFAULT_SEEDS.to_vec());
        assert_eq!(effective_seeds(&Some(vec![5])), vec![5]);
    }
}
