//! Job payloads: the unit of work a submission carries.
//!
//! A payload knows how to pre-validate itself (so a bad spec is
//! rejected at submit time, before it ever reaches a worker), how many
//! driver cycles it will simulate (the denominator of `progress`
//! events), and how to execute under a [`RunCtl`] into the canonical
//! result document — the exact JSON text that gets cached, digested,
//! and replayed on a cache hit.

use dragonfly_core::{
    run_scenario_ctl, run_sweep_ctl, RunCtl, ScenarioError, DEFAULT_SEEDS,
};
use df_workload::{ScenarioSpec, SweepSpec};

/// The work behind one submission.
#[derive(Debug, Clone)]
pub enum JobPayload {
    /// A multi-job scenario ([`dragonfly_core::run_scenario`]).
    Scenario(ScenarioSpec),
    /// A sweep grid ([`dragonfly_core::run_sweep`]).
    Sweep(SweepSpec),
}

impl JobPayload {
    /// The cache-key kind component.
    pub fn kind(&self) -> &'static str {
        match self {
            JobPayload::Scenario(_) => "scenario",
            JobPayload::Sweep(_) => "sweep",
        }
    }

    /// The spec serialized to canonical JSON — the hashed component of
    /// the cache key. Serialization of a deserialized spec is
    /// deterministic (struct fields serialize in declaration order), so
    /// semantically identical submissions share a key even when the
    /// client formatted its JSON differently.
    pub fn spec_json(&self) -> Result<String, ScenarioError> {
        match self {
            JobPayload::Scenario(s) => serde_json::to_string(s),
            JobPayload::Sweep(s) => serde_json::to_string(s),
        }
        .map_err(|e| ScenarioError::spec(format!("spec serialization: {e}")))
    }

    /// Cheap structural validation at submit time: a rejected spec never
    /// occupies a queue slot. Runtime-only failures (e.g. an
    /// out-of-range hotspot index) still surface from the worker as a
    /// `failed` event.
    pub fn validate(&self, seeds: &[u64]) -> Result<(), ScenarioError> {
        if seeds.is_empty() {
            return Err(ScenarioError::spec("need at least one seed"));
        }
        match self {
            JobPayload::Scenario(s) => s.validate(seeds[0]).map_err(ScenarioError::spec),
            JobPayload::Sweep(s) => {
                let cells = s.expand().map_err(ScenarioError::spec)?;
                for (c, cell) in cells.iter().enumerate() {
                    cell.scenario
                        .validate(seeds[0])
                        .map_err(|e| ScenarioError::spec(format!("cell {c}: {e}")))?;
                }
                Ok(())
            }
        }
    }

    /// Total driver cycles this payload will simulate across all of its
    /// parallel cells — the `total_cycles` of `progress` events.
    pub fn total_cycles(&self, seeds: &[u64]) -> u64 {
        let n_seeds = seeds.len() as u64;
        match self {
            JobPayload::Scenario(s) => {
                (s.warmup_cycles + s.measure_cycles) * s.mechanisms.len() as u64 * n_seeds
            }
            JobPayload::Sweep(s) => match s.expand() {
                Ok(cells) => cells
                    .iter()
                    .map(|c| c.scenario.warmup_cycles + c.scenario.measure_cycles)
                    .sum::<u64>()
                    .saturating_mul(n_seeds),
                Err(_) => 0,
            },
        }
    }

    /// Run the payload under `ctl` and serialize the canonical result
    /// document: the scenario *summary* (no raw runs) or the full sweep
    /// table, pretty-printed. Byte-identical across runs of the same
    /// key per the determinism contract.
    pub fn execute(&self, seeds: &[u64], ctl: &RunCtl<'_>) -> Result<String, ScenarioError> {
        let doc = match self {
            JobPayload::Scenario(s) => {
                let result = run_scenario_ctl(s, seeds, ctl)?;
                serde_json::to_string_pretty(&result.summary())
            }
            JobPayload::Sweep(s) => {
                let table = run_sweep_ctl(s, seeds, ctl)?;
                serde_json::to_string_pretty(&table)
            }
        };
        doc.map_err(|e| ScenarioError::spec(format!("result serialization: {e}")))
    }
}

/// The seeds a submission runs under: the client's, or the paper's
/// three-simulation protocol.
pub fn effective_seeds(requested: &Option<Vec<u64>>) -> Vec<u64> {
    match requested {
        Some(seeds) if !seeds.is_empty() => seeds.clone(),
        _ => DEFAULT_SEEDS.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_core::df_engine::ArbiterPolicy;
    use dragonfly_core::df_routing::MechanismSpec;
    use dragonfly_core::df_topology::{Arrangement, DragonflyParams};
    use dragonfly_core::df_traffic::PatternSpec;
    use df_workload::{InjectionSpec, JobSpec, PlacementSpec};

    fn tiny_scenario() -> ScenarioSpec {
        ScenarioSpec {
            name: "svc-tiny".into(),
            params: DragonflyParams::figure1(),
            arrangement: Arrangement::Palmtree,
            mechanisms: vec![MechanismSpec::InTransitMm],
            arbiter: ArbiterPolicy::TransitPriority,
            warmup_cycles: 100,
            measure_cycles: 200,
            telemetry: None,
            jobs: vec![JobSpec {
                name: "app".into(),
                placement: PlacementSpec::ConsecutiveGroups { first: 0, count: 2, slots: None },
                pattern: PatternSpec::Uniform,
                injection: InjectionSpec::Bernoulli,
                load: 0.2,
                start_cycle: None,
                stop_cycle: None,
            }],
        }
    }

    #[test]
    fn total_cycles_counts_every_cell() {
        let p = JobPayload::Scenario(tiny_scenario());
        // (warmup + measure) × 1 mechanism × 2 seeds
        assert_eq!(p.total_cycles(&[1, 2]), 300 * 2);
    }

    #[test]
    fn validate_rejects_empty_seeds_and_bad_specs() {
        let p = JobPayload::Scenario(tiny_scenario());
        assert!(p.validate(&[]).is_err());
        assert!(p.validate(&[1]).is_ok());
        let mut bad = tiny_scenario();
        bad.jobs.clear();
        assert!(JobPayload::Scenario(bad).validate(&[1]).is_err());
    }

    #[test]
    fn execute_is_byte_deterministic() {
        let p = JobPayload::Scenario(tiny_scenario());
        let a = p.execute(&[7], &RunCtl::NONE).unwrap();
        let b = p.execute(&[7], &RunCtl::NONE).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("svc-tiny"));
    }

    #[test]
    fn effective_seeds_defaults_to_the_paper_protocol() {
        assert_eq!(effective_seeds(&None), DEFAULT_SEEDS.to_vec());
        assert_eq!(effective_seeds(&Some(vec![])), DEFAULT_SEEDS.to_vec());
        assert_eq!(effective_seeds(&Some(vec![5])), vec![5]);
    }
}
