//! # df-service — the fault-tolerant scenario job service
//!
//! A long-running job server in front of the simulator: clients submit
//! [`df_workload::ScenarioSpec`] / [`df_workload::SweepSpec`] jobs over
//! a local Unix socket as newline-delimited JSON and read back a
//! structured [`JobEvent`] stream.
//!
//! The service exists to make the simulator *safe to share*: a bounded
//! worker pool with admission control (a full queue rejects instead of
//! growing), per-job deadlines with cooperative cancellation (an
//! interrupted run leaves no partial output), retry with capped
//! exponential backoff for panicking attempts, per-attempt panic
//! isolation, graceful shutdown that drains in-flight jobs, and a
//! content-addressed result cache keyed by
//! `(spec hash, seeds, engine version)` — sound because the engine is
//! deterministic (docs/DETERMINISM.md): the same key always reproduces
//! the byte-identical result document, and every cached read is
//! digest-checked so bit rot is detected and recomputed rather than
//! served.
//!
//! With a `state_dir` configured the service is also *durable*: every
//! completed result spills to disk tempfile-then-rename and reloads
//! (digest-verified) after a restart, and in-flight sweeps checkpoint
//! each `(cell, seed)` unit so a crashed job resumes from the last
//! committed unit instead of starting over — with the recovered table
//! byte-identical to an uninterrupted run.
//!
//! Every robustness claim is exercised by the [`FaultSpec`] injection
//! harness: a worker panic at cycle N, an artificial stall past the
//! deadline, a corrupted cache entry, and the crash points (`abort`
//! after N checkpoint commits, a torn spill, a rotted checkpoint
//! line). See `docs/SERVICE.md` for the wire protocol and event
//! schema, and the `df-serve` / `df-submit` binaries in `df-bench` for
//! the CLI surface.

#![warn(missing_docs)]

pub mod cache;
pub mod fault;
pub mod job;
pub mod protocol;
pub mod server;
pub mod service;
pub mod store;
mod worker;

pub use cache::{CacheEntry, Lookup, ResultCache};
pub use fault::FaultSpec;
pub use job::{effective_seeds, JobPayload};
pub use protocol::{cache_key, digest_hex, fnv1a64, JobEvent, Request, SubmitOptions};
pub use server::serve;
pub use service::{EventSink, Service, ServiceConfig};
pub use store::{CheckpointLoad, LoadReport, StateDir};
pub use worker::SubmitError;
