//! Deterministic fault injection.
//!
//! Every robustness claim the service makes is exercised by a fault
//! that can be switched on per submission: a worker panic at a chosen
//! cycle (panic isolation + retry), an artificial stall that pushes the
//! run past its deadline (cooperative timeout), and a corrupted cache
//! entry (digest check + recompute). Faults key off *simulated* cycle
//! numbers, so the injection point is reproducible run to run.

use serde::{Deserialize, Serialize};

/// Fault-injection knobs, submitted alongside a job (tests and the CI
/// harness only — an omitted `fault` field injects nothing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Panic inside the run loop when a cell of the job reaches this
    /// driver cycle — the "poisoned job" that must not take down the
    /// service.
    pub panic_at_cycle: Option<u64>,
    /// How many attempts the panic fires on (default 1): with the
    /// default, the first retry runs clean and succeeds; set it at or
    /// above the retry cap to exhaust retries deterministically.
    pub panic_attempts: Option<u32>,
    /// Stall (sleep on the worker thread) once, when a cell of the job
    /// reaches this driver cycle — used with a short `deadline_ms` to
    /// force a `timed_out` event deterministically.
    pub stall_at_cycle: Option<u64>,
    /// Stall duration in milliseconds (default 100).
    pub stall_ms: Option<u64>,
    /// After the job's result lands in the cache, flip a byte of the
    /// stored entry (and of its spill file when the service is
    /// state-backed), so the *next* submission of the same key — or the
    /// next restart's startup scan — exercises the digest check and
    /// recompute path.
    pub corrupt_cache: Option<bool>,
    /// Kill the whole process (`abort`, the `kill -9` equivalent) right
    /// after the Nth `(cell, seed)` sweep unit commits to the
    /// checkpoint file. The restart harness in ci.sh uses this to die
    /// mid-sweep deterministically.
    pub crash_after_cells: Option<u32>,
    /// Cooperatively cancel the job right after the Nth sweep unit
    /// commits — the in-process stand-in for `crash_after_cells`, so
    /// restart-shaped integration tests can exercise checkpoint
    /// recovery without killing the test binary. At least N units are
    /// durable when the `cancelled` event lands (parallel units already
    /// past their last checkpoint may still commit).
    pub cancel_after_cells: Option<u32>,
    /// Kill the process between a completed result's tempfile write and
    /// its rename into the cache — the torn-spill crash point. The
    /// restart must treat the result as never promised: the `.tmp`
    /// debris is deleted and the key recomputes.
    pub crash_mid_spill: Option<bool>,
    /// Flip a byte of the checkpoint line whose 1-based commit ordinal
    /// (within this job) equals N, right after it is appended. Recovery
    /// must drop exactly that line's unit and recompute it.
    pub rot_checkpoint_line: Option<u32>,
}

impl FaultSpec {
    /// The cycle the panic fault fires at during `attempt` (1-based),
    /// or `None` when this attempt runs clean.
    pub fn panic_cycle(&self, attempt: u32) -> Option<u64> {
        let cycle = self.panic_at_cycle?;
        (attempt <= self.panic_attempts.unwrap_or(1)).then_some(cycle)
    }

    /// The stall as `(cycle, duration_ms)`, if configured.
    pub fn stall(&self) -> Option<(u64, u64)> {
        self.stall_at_cycle.map(|c| (c, self.stall_ms.unwrap_or(100)))
    }

    /// Should the cache entry be corrupted after a completed run?
    pub fn corrupts_cache(&self) -> bool {
        self.corrupt_cache.unwrap_or(false)
    }

    /// Abort the process after this many sweep-unit commits, if set.
    pub fn crash_after(&self) -> Option<u32> {
        self.crash_after_cells
    }

    /// Cancel the job after this many sweep-unit commits, if set.
    pub fn cancel_after(&self) -> Option<u32> {
        self.cancel_after_cells
    }

    /// Should the process die between spill write and rename?
    pub fn crashes_mid_spill(&self) -> bool {
        self.crash_mid_spill.unwrap_or(false)
    }

    /// The 1-based commit ordinal whose checkpoint line gets rotted,
    /// if set.
    pub fn rot_line(&self) -> Option<u32> {
        self.rot_checkpoint_line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_fires_on_configured_attempts_only() {
        let f = FaultSpec { panic_at_cycle: Some(40), ..FaultSpec::default() };
        assert_eq!(f.panic_cycle(1), Some(40));
        assert_eq!(f.panic_cycle(2), None);
        let always = FaultSpec {
            panic_at_cycle: Some(40),
            panic_attempts: Some(u32::MAX),
            ..FaultSpec::default()
        };
        assert_eq!(always.panic_cycle(7), Some(40));
        assert_eq!(FaultSpec::default().panic_cycle(1), None);
    }

    #[test]
    fn stall_defaults_its_duration() {
        let f = FaultSpec { stall_at_cycle: Some(5), ..FaultSpec::default() };
        assert_eq!(f.stall(), Some((5, 100)));
        let g = FaultSpec { stall_at_cycle: Some(5), stall_ms: Some(250), ..f };
        assert_eq!(g.stall(), Some((5, 250)));
        assert_eq!(FaultSpec::default().stall(), None);
    }

    #[test]
    fn omitted_json_fields_inject_nothing() {
        let f: FaultSpec = serde_json::from_str("{}").unwrap();
        assert_eq!(f, FaultSpec::default());
        assert!(!f.corrupts_cache());
        assert!(!f.crashes_mid_spill());
        assert_eq!((f.crash_after(), f.cancel_after(), f.rot_line()), (None, None, None));
        let g: FaultSpec =
            serde_json::from_str(r#"{"panic_at_cycle": 12, "corrupt_cache": true}"#).unwrap();
        assert_eq!(g.panic_cycle(1), Some(12));
        assert!(g.corrupts_cache());
    }

    #[test]
    fn crash_point_fields_roundtrip_from_json() {
        let f: FaultSpec = serde_json::from_str(
            r#"{"crash_after_cells": 3, "cancel_after_cells": 2,
                "crash_mid_spill": true, "rot_checkpoint_line": 1}"#,
        )
        .unwrap();
        assert_eq!(f.crash_after(), Some(3));
        assert_eq!(f.cancel_after(), Some(2));
        assert!(f.crashes_mid_spill());
        assert_eq!(f.rot_line(), Some(1));
    }
}
