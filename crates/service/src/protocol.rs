//! The wire protocol: newline-delimited JSON requests and structured
//! job events.
//!
//! A client connects to the service socket, writes one [`Request`] per
//! line, and reads back a stream of [`JobEvent`] lines. Every event
//! carries the job id it belongs to, so several jobs may interleave on
//! one connection; a job's stream ends with exactly one *terminal*
//! event ([`JobEvent::is_terminal`]). Integration tests — and the CI
//! smoke gate — assert on this event stream, never on timing.
//!
//! See `docs/SERVICE.md` for the full schema reference.

use crate::fault::FaultSpec;
use df_workload::{ScenarioSpec, SweepSpec};
use dragonfly_core::SweepRow;
use serde::{Deserialize, Serialize};

/// One client request line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Request {
    /// Run (or serve from cache) a multi-job scenario.
    SubmitScenario {
        /// The scenario to run.
        spec: ScenarioSpec,
        /// Seeds, deadline, and fault-injection knobs.
        options: SubmitOptions,
    },
    /// Run (or serve from cache) a sweep grid.
    SubmitSweep {
        /// The sweep to expand and run.
        spec: SweepSpec,
        /// Seeds, deadline, and fault-injection knobs.
        options: SubmitOptions,
    },
    /// Cooperatively cancel a queued or running job by id.
    Cancel {
        /// The id from the job's `accepted` event.
        job: u64,
    },
    /// Liveness probe; answered with [`JobEvent::Pong`].
    Ping,
    /// Drain in-flight and queued jobs, then stop the server.
    Shutdown,
}

/// Per-submission options. Every field is optional — an omitted JSON
/// key deserializes to `None` and picks the documented default.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SubmitOptions {
    /// Master seeds to run (default: the paper's three-seed protocol,
    /// [`dragonfly_core::DEFAULT_SEEDS`]). Part of the cache key.
    pub seeds: Option<Vec<u64>>,
    /// Per-attempt wall-clock deadline in milliseconds, measured from
    /// the attempt's `started` event and checked at cycle granularity.
    /// Exceeding it cancels the run cooperatively (`timed_out`).
    pub deadline_ms: Option<u64>,
    /// Deterministic fault injection (tests and the CI harness only).
    pub fault: Option<FaultSpec>,
}

/// One structured event in a job's lifecycle (or a connection-level
/// response). Serialized as one JSON object per line, tagged `event`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "event", rename_all = "snake_case")]
pub enum JobEvent {
    /// The job passed validation and admission and is queued.
    Accepted {
        /// Job id; all later events for this submission carry it.
        job: u64,
        /// Content-address cache key the result will be stored under.
        key: String,
        /// Jobs ahead of this one in the queue (including it).
        queue_depth: u64,
    },
    /// The queue is at its depth cap; the job was *not* admitted.
    /// Terminal: resubmit later. This is the admission-control backstop
    /// against unbounded memory growth under a submission burst.
    RejectedOverload {
        /// Job id of the rejected submission.
        job: u64,
        /// Jobs already queued when the submission arrived.
        queued: u64,
        /// The configured queue-depth cap.
        limit: u64,
    },
    /// The spec failed validation (or the service is shutting down).
    /// Terminal; nothing ran.
    Rejected {
        /// Job id of the rejected submission.
        job: u64,
        /// Human-readable reason.
        error: String,
    },
    /// Cache hit: the byte-identical result of an earlier run of the
    /// same `(spec hash, seeds, engine version)` key. Terminal.
    Cached {
        /// Job id.
        job: u64,
        /// The cache key that hit.
        key: String,
        /// Digest of `result` (matches the `completed` event that
        /// populated the entry).
        digest: String,
        /// The stored result document (JSON text).
        result: String,
    },
    /// A cache entry for this key existed but failed its digest check;
    /// the entry was evicted and the job recomputes. Non-terminal.
    CacheCorrupt {
        /// Job id.
        job: u64,
        /// The key whose entry was evicted.
        key: String,
    },
    /// A worker began executing the job (attempt 1) or re-executing it
    /// after a retry (attempt ≥ 2).
    Started {
        /// Job id.
        job: u64,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// Periodic progress, emitted every `progress_cycles` simulated
    /// cycles (summed over the job's parallel cells — the same window
    /// notion as the telemetry timelines).
    Progress {
        /// Job id.
        job: u64,
        /// Simulated cycles completed so far, across all cells.
        done_cycles: u64,
        /// Total cycles the job will simulate (cells × seeds × protocol).
        total_cycles: u64,
    },
    /// Checkpointed rows from an earlier interrupted run of this key
    /// were verified (digest-checked per line) and will be reused: only
    /// the remaining units recompute. Non-terminal; sweep submissions
    /// on a state-backed server only.
    Recovered {
        /// Job id.
        job: u64,
        /// The cache key whose checkpoint was recovered.
        key: String,
        /// `(cell, seed)` units recovered from the checkpoint.
        cells_done: u64,
        /// Total `(cell, seed)` units in the sweep grid.
        cells_total: u64,
    },
    /// One sweep `(cell, seed)` unit finished: its long-format rows
    /// stream here as cells complete, before the final table exists.
    /// Non-terminal; sweep submissions only. Units recovered from a
    /// checkpoint do *not* re-emit their rows — count these events to
    /// measure how much of a resumed sweep actually recomputed.
    SweepRows {
        /// Job id.
        job: u64,
        /// Cell index in expansion order.
        cell: u32,
        /// Master seed of the unit.
        seed: u64,
        /// The unit's rows, in the same order they hold in the final
        /// table (network scope first, then jobs in spec order).
        rows: Vec<SweepRow>,
    },
    /// The attempt died to a panic and the job will re-run after a
    /// capped exponential backoff. Non-terminal.
    Retried {
        /// Job id.
        job: u64,
        /// The attempt that failed (the next `started` carries +1).
        attempt: u32,
        /// Backoff slept before the retry, in milliseconds.
        backoff_ms: u64,
        /// The panic message of the failed attempt.
        error: String,
    },
    /// The job finished; its result is cached under `key`. Terminal.
    Completed {
        /// Job id.
        job: u64,
        /// Cache key the result was stored under.
        key: String,
        /// Digest of `result` (the corruption check re-derives this).
        digest: String,
        /// The result document (JSON text): a scenario summary or a
        /// sweep table.
        result: String,
    },
    /// The per-attempt deadline passed; the run was cancelled
    /// cooperatively and produced no output. Terminal.
    TimedOut {
        /// Job id.
        job: u64,
        /// Driver cycle at which the deadline check fired.
        at_cycle: u64,
    },
    /// The job was cancelled via [`Request::Cancel`] (or the in-process
    /// API) and produced no output. Terminal.
    Cancelled {
        /// Job id.
        job: u64,
        /// Driver cycle at which the cancellation was observed.
        at_cycle: u64,
    },
    /// Retries exhausted (or a non-retryable error). Terminal.
    Failed {
        /// Job id.
        job: u64,
        /// Attempts consumed.
        attempts: u32,
        /// The final error.
        error: String,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Shutdown`], sent *after* the drain: every
    /// in-flight and queued job ran to its terminal event.
    ShuttingDown {
        /// Jobs that were still queued or running when the shutdown
        /// arrived and were drained to completion.
        drained: u64,
    },
    /// The request line could not be parsed or referenced an unknown
    /// job. Connection-level; not part of any job's stream.
    ProtocolError {
        /// What was wrong with the request.
        error: String,
    },
}

impl JobEvent {
    /// The job id this event belongs to (`None` for connection-level
    /// events like `pong`).
    pub fn job(&self) -> Option<u64> {
        match self {
            JobEvent::Accepted { job, .. }
            | JobEvent::RejectedOverload { job, .. }
            | JobEvent::Rejected { job, .. }
            | JobEvent::Cached { job, .. }
            | JobEvent::CacheCorrupt { job, .. }
            | JobEvent::Started { job, .. }
            | JobEvent::Progress { job, .. }
            | JobEvent::Recovered { job, .. }
            | JobEvent::SweepRows { job, .. }
            | JobEvent::Retried { job, .. }
            | JobEvent::Completed { job, .. }
            | JobEvent::TimedOut { job, .. }
            | JobEvent::Cancelled { job, .. }
            | JobEvent::Failed { job, .. } => Some(*job),
            JobEvent::Pong | JobEvent::ShuttingDown { .. } | JobEvent::ProtocolError { .. } => {
                None
            }
        }
    }

    /// Does this event end its job's stream?
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobEvent::RejectedOverload { .. }
                | JobEvent::Rejected { .. }
                | JobEvent::Cached { .. }
                | JobEvent::Completed { .. }
                | JobEvent::TimedOut { .. }
                | JobEvent::Cancelled { .. }
                | JobEvent::Failed { .. }
        )
    }

    /// The wire tag of this event (the serialized `event` field).
    pub fn label(&self) -> &'static str {
        match self {
            JobEvent::Accepted { .. } => "accepted",
            JobEvent::RejectedOverload { .. } => "rejected_overload",
            JobEvent::Rejected { .. } => "rejected",
            JobEvent::Cached { .. } => "cached",
            JobEvent::CacheCorrupt { .. } => "cache_corrupt",
            JobEvent::Started { .. } => "started",
            JobEvent::Progress { .. } => "progress",
            JobEvent::Recovered { .. } => "recovered",
            JobEvent::SweepRows { .. } => "sweep_rows",
            JobEvent::Retried { .. } => "retried",
            JobEvent::Completed { .. } => "completed",
            JobEvent::TimedOut { .. } => "timed_out",
            JobEvent::Cancelled { .. } => "cancelled",
            JobEvent::Failed { .. } => "failed",
            JobEvent::Pong => "pong",
            JobEvent::ShuttingDown { .. } => "shutting_down",
            JobEvent::ProtocolError { .. } => "protocol_error",
        }
    }
}

/// FNV-1a 64-bit hash — the service's content digest. Collisions are a
/// non-issue for corruption *detection* (a flipped byte changes the
/// digest with overwhelming probability), and the function is tiny,
/// allocation-free, and stable across platforms.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// [`fnv1a64`] as a fixed-width lowercase hex string.
pub fn digest_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

/// The content-address cache key of a submission:
/// `(kind, spec hash, seeds, engine version)`. Determinism
/// (docs/DETERMINISM.md) makes the key sound — the same key always
/// produces a byte-identical result document — and the engine version
/// component invalidates every entry when an engine change moves
/// same-seed outputs.
pub fn cache_key(kind: &str, spec_json: &str, seeds: &[u64]) -> String {
    let mut seed_list = String::new();
    for (i, s) in seeds.iter().enumerate() {
        if i > 0 {
            seed_list.push(',');
        }
        seed_list.push_str(&s.to_string());
    }
    format!(
        "{kind}:{spec}:seeds[{seed_list}]:{engine}",
        spec = digest_hex(spec_json.as_bytes()),
        engine = dragonfly_core::ENGINE_VERSION,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_sensitive() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"result-a"), fnv1a64(b"result-b"));
        assert_eq!(digest_hex(b"").len(), 16);
    }

    #[test]
    fn cache_key_separates_kind_spec_and_seeds() {
        let a = cache_key("scenario", "{\"x\":1}", &[1, 2]);
        let b = cache_key("scenario", "{\"x\":2}", &[1, 2]);
        let c = cache_key("scenario", "{\"x\":1}", &[1]);
        let d = cache_key("sweep", "{\"x\":1}", &[1, 2]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert!(a.contains(dragonfly_core::ENGINE_VERSION));
        assert!(a.contains("seeds[1,2]"));
    }

    #[test]
    fn events_roundtrip_through_json() {
        let events = vec![
            JobEvent::Accepted { job: 3, key: "k".into(), queue_depth: 2 },
            JobEvent::RejectedOverload { job: 4, queued: 8, limit: 8 },
            JobEvent::Progress { job: 3, done_cycles: 1000, total_cycles: 9000 },
            JobEvent::Recovered { job: 3, key: "k".into(), cells_done: 5, cells_total: 8 },
            JobEvent::SweepRows { job: 3, cell: 2, seed: 7, rows: vec![] },
            JobEvent::Retried { job: 3, attempt: 1, backoff_ms: 5, error: "boom".into() },
            JobEvent::Completed {
                job: 3,
                key: "k".into(),
                digest: "d".into(),
                result: "{\"rows\":[]}".into(),
            },
            JobEvent::Pong,
        ];
        for e in events {
            let line = serde_json::to_string(&e).unwrap();
            let back: JobEvent = serde_json::from_str(&line).unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn event_tags_match_labels() {
        let e = JobEvent::RejectedOverload { job: 1, queued: 2, limit: 2 };
        let line = serde_json::to_string(&e).unwrap();
        assert!(line.contains("\"event\":\"rejected_overload\""), "{line}");
        assert!(e.is_terminal());
        assert_eq!(e.job(), Some(1));
        let p = JobEvent::Progress { job: 1, done_cycles: 0, total_cycles: 1 };
        assert!(!p.is_terminal());
        assert_eq!(JobEvent::Pong.job(), None);
        // The streaming/recovery events belong to their job but never
        // end its stream.
        let r = JobEvent::Recovered { job: 2, key: "k".into(), cells_done: 1, cells_total: 4 };
        assert!(!r.is_terminal());
        assert_eq!(r.job(), Some(2));
        assert_eq!(r.label(), "recovered");
        let s = JobEvent::SweepRows { job: 2, cell: 0, seed: 1, rows: vec![] };
        assert!(!s.is_terminal());
        assert_eq!(s.job(), Some(2));
        let line = serde_json::to_string(&s).unwrap();
        assert!(line.contains("\"event\":\"sweep_rows\""), "{line}");
    }

    #[test]
    fn requests_roundtrip_through_json() {
        for r in [Request::Ping, Request::Shutdown, Request::Cancel { job: 9 }] {
            let line = serde_json::to_string(&r).unwrap();
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(back, r);
        }
    }
}
