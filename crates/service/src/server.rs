//! The Unix-domain-socket front end: newline-delimited JSON requests
//! in, [`JobEvent`] lines out.
//!
//! One thread per connection; a connection may carry many submissions,
//! and each job's events are written to that connection (and, when
//! configured, appended to a shared event log — the artifact the CI
//! gate archives). A client that disconnects mid-run does *not* cancel
//! its job: the run completes and populates the cache, so the work is
//! not wasted; only an explicit `cancel` request stops a job early.
//!
//! `shutdown` drains every queued and in-flight job to its terminal
//! event, answers `shutting_down` with the drain count, and stops the
//! accept loop.

use crate::job::JobPayload;
use crate::protocol::{JobEvent, Request};
use crate::service::{EventSink, Service};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Serve `service` on a Unix socket at `socket` until a `shutdown`
/// request arrives. `event_log`, when set, receives every event of
/// every connection as JSON lines (append mode).
pub fn serve(
    service: Arc<Service>,
    socket: &Path,
    event_log: Option<&Path>,
) -> std::io::Result<()> {
    // A stale socket file from a killed predecessor would make bind
    // fail — but blindly unlinking would hijack a *live* server's
    // socket. Probe first: only an unanswered socket file is stale.
    if socket.exists() {
        if UnixStream::connect(socket).is_ok() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AddrInUse,
                format!("{} already serves a live df-service", socket.display()),
            ));
        }
        std::fs::remove_file(socket)?;
    }
    let listener = UnixListener::bind(socket)?;
    let log = match event_log {
        Some(path) => Some(Arc::new(Mutex::new(
            std::fs::OpenOptions::new().create(true).append(true).open(path)?,
        ))),
        None => None,
    };
    // Surface what the startup scan quarantined: one `cache_corrupt`
    // line per bad spill file, in the log before any client events.
    if let Some(log) = &log {
        let mut f = log.lock().expect("event log lock");
        for event in service.startup_events() {
            if let Ok(line) = serde_json::to_string(&event) {
                let _ = writeln!(f, "{line}");
            }
        }
    }
    let shutting_down = Arc::new(AtomicBool::new(false));
    let socket_path: PathBuf = socket.to_path_buf();

    for stream in listener.incoming() {
        if shutting_down.load(Ordering::Acquire) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let service = Arc::clone(&service);
        let log = log.clone();
        let shutting_down = Arc::clone(&shutting_down);
        let socket_path = socket_path.clone();
        std::thread::spawn(move || {
            handle_connection(&service, stream, log, &shutting_down, &socket_path);
        });
    }
    Ok(())
}

/// Build the sink that fans one connection's events out to the client
/// stream and the shared event log. Write errors to the client are
/// ignored (it may have disconnected; the job still runs to completion
/// and its result is cached).
fn line_sink(
    stream: Arc<Mutex<UnixStream>>,
    log: Option<Arc<Mutex<std::fs::File>>>,
) -> EventSink {
    Arc::new(move |event: JobEvent| {
        let line = match serde_json::to_string(&event) {
            Ok(l) => l,
            Err(_) => return,
        };
        {
            let mut s = stream.lock().expect("client stream lock");
            let _ = writeln!(s, "{line}");
            let _ = s.flush();
        }
        if let Some(log) = &log {
            let mut f = log.lock().expect("event log lock");
            let _ = writeln!(f, "{line}");
        }
    })
}

fn handle_connection(
    service: &Service,
    stream: UnixStream,
    log: Option<Arc<Mutex<std::fs::File>>>,
    shutting_down: &AtomicBool,
    socket_path: &Path,
) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let writer = Arc::new(Mutex::new(stream));
    let sink = line_sink(writer, log);

    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let request: Request = match serde_json::from_str(&line) {
            Ok(r) => r,
            Err(e) => {
                sink(JobEvent::ProtocolError { error: format!("bad request: {e}") });
                continue;
            }
        };
        match request {
            Request::SubmitScenario { spec, options } => {
                service.submit(JobPayload::Scenario(spec), options, Arc::clone(&sink));
            }
            Request::SubmitSweep { spec, options } => {
                service.submit(JobPayload::Sweep(spec), options, Arc::clone(&sink));
            }
            Request::Cancel { job } => {
                if !service.cancel(job) {
                    sink(JobEvent::ProtocolError { error: format!("unknown job {job}") });
                }
            }
            Request::Ping => sink(JobEvent::Pong),
            Request::Shutdown => {
                shutting_down.store(true, Ordering::Release);
                let drained = service.shutdown();
                sink(JobEvent::ShuttingDown { drained });
                // Unblock the accept loop so `serve` observes the flag.
                let _ = UnixStream::connect(socket_path);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    /// Round-trip ping/shutdown over a real socket; submissions are
    /// exercised end-to-end by the integration suite.
    #[test]
    fn ping_and_shutdown_over_the_socket() {
        let socket = std::env::temp_dir().join(format!("df-service-test-{}.sock", std::process::id()));
        let service = Arc::new(Service::new(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        }));
        let server = {
            let socket = socket.clone();
            std::thread::spawn(move || serve(service, &socket, None))
        };
        // Wait for the socket to come up.
        let mut client = loop {
            match UnixStream::connect(&socket) {
                Ok(s) => break s,
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(5)),
            }
        };
        let mut reader = BufReader::new(client.try_clone().unwrap());
        writeln!(client, "{}", serde_json::to_string(&Request::Ping).unwrap()).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(serde_json::from_str::<JobEvent>(&line).unwrap(), JobEvent::Pong);
        // Garbage gets a protocol error, not a dropped connection.
        writeln!(client, "not json").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(matches!(
            serde_json::from_str::<JobEvent>(&line).unwrap(),
            JobEvent::ProtocolError { .. }
        ));
        writeln!(client, "{}", serde_json::to_string(&Request::Shutdown).unwrap()).unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(
            serde_json::from_str::<JobEvent>(&line).unwrap(),
            JobEvent::ShuttingDown { drained: 0 }
        );
        server.join().unwrap().unwrap();
        let _ = std::fs::remove_file(&socket);
    }

    /// The stale-socket satellite: a dead predecessor's socket file is
    /// reclaimed, but a *live* server's socket is refused instead of
    /// hijacked.
    #[test]
    fn stale_socket_is_reclaimed_but_a_live_one_is_refused() {
        let socket =
            std::env::temp_dir().join(format!("df-service-stale-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&socket);
        // Simulate a killed predecessor: a socket file with no listener
        // behind it. Connect fails, so serve unlinks and binds.
        drop(UnixListener::bind(&socket).unwrap());
        assert!(socket.exists());
        let service = Arc::new(Service::new(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        }));
        let server = {
            let socket = socket.clone();
            std::thread::spawn(move || serve(service, &socket, None))
        };
        let mut client = loop {
            match UnixStream::connect(&socket) {
                Ok(s) => break s,
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(5)),
            }
        };
        // A second server against the now-live socket must refuse.
        let rival = Arc::new(Service::new(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        }));
        let err = serve(rival, &socket, None).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
        writeln!(client, "{}", serde_json::to_string(&Request::Shutdown).unwrap()).unwrap();
        let mut line = String::new();
        BufReader::new(client).read_line(&mut line).unwrap();
        server.join().unwrap().unwrap();
        let _ = std::fs::remove_file(&socket);
    }
}
