//! The content-addressed result cache.
//!
//! Entries are keyed by [`crate::protocol::cache_key`] — `(spec hash,
//! seeds, engine version)` — and hold the serialized result document
//! plus its digest. Determinism makes the cache sound: the same key
//! always reproduces the byte-identical document, so a hit may be
//! served without rerunning anything. Every lookup re-derives the
//! stored bytes' digest; a mismatch (bit rot, or the fault-injection
//! harness) evicts the entry and reports [`Lookup::Corrupt`] so the
//! caller recomputes instead of serving bad bytes.

use crate::protocol::digest_hex;
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// A cached result document and the digest it must hash to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// The serialized result (JSON text, byte-exact).
    pub result: String,
    /// [`digest_hex`] of `result` at insertion time.
    pub digest: String,
}

/// Outcome of a cache probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// Entry present and its digest checks out.
    Hit(CacheEntry),
    /// Entry present but its bytes no longer match the stored digest;
    /// the entry has been evicted.
    Corrupt,
    /// No entry for this key.
    Miss,
}

struct CacheInner {
    map: HashMap<String, CacheEntry>,
    /// Insertion order for FIFO eviction at capacity.
    order: VecDeque<String>,
}

/// A bounded, thread-safe result cache with digest-checked reads.
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries (oldest evicted
    /// first). `capacity` 0 disables caching: every probe misses.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner { map: HashMap::new(), order: VecDeque::new() }),
            capacity,
        }
    }

    /// Probe `key`, re-verifying the stored digest.
    pub fn lookup(&self, key: &str) -> Lookup {
        let mut inner = self.inner.lock().expect("cache lock");
        let Some(entry) = inner.map.get(key) else {
            return Lookup::Miss;
        };
        if digest_hex(entry.result.as_bytes()) == entry.digest {
            Lookup::Hit(entry.clone())
        } else {
            inner.map.remove(key);
            inner.order.retain(|k| k != key);
            Lookup::Corrupt
        }
    }

    /// Store `result` under `key`, returning its digest. Replaces any
    /// previous entry; evicts the oldest entry at capacity.
    pub fn insert(&self, key: &str, result: String) -> String {
        let digest = digest_hex(result.as_bytes());
        if self.capacity == 0 {
            return digest;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        if inner.map.remove(key).is_some() {
            inner.order.retain(|k| k != key);
        }
        while inner.map.len() >= self.capacity {
            let Some(oldest) = inner.order.pop_front() else { break };
            inner.map.remove(&oldest);
        }
        inner.order.push_back(key.to_string());
        inner.map.insert(key.to_string(), CacheEntry { result, digest: digest.clone() });
        digest
    }

    /// Fault-injection hook: flip a byte of the entry stored under
    /// `key` *without* updating its digest, so the next lookup detects
    /// the corruption. Returns `false` if the key is absent.
    pub fn corrupt(&self, key: &str) -> bool {
        let mut inner = self.inner.lock().expect("cache lock");
        let Some(entry) = inner.map.get_mut(key) else {
            return false;
        };
        let mut bytes = std::mem::take(&mut entry.result).into_bytes();
        if let Some(b) = bytes.first_mut() {
            *b ^= 0x01;
        }
        entry.result = String::from_utf8_lossy(&bytes).into_owned();
        true
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_byte_identical_entry() {
        let cache = ResultCache::new(4);
        assert_eq!(cache.lookup("k"), Lookup::Miss);
        let digest = cache.insert("k", "{\"rows\":[1,2]}".into());
        match cache.lookup("k") {
            Lookup::Hit(e) => {
                assert_eq!(e.result, "{\"rows\":[1,2]}");
                assert_eq!(e.digest, digest);
            }
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn corruption_is_detected_and_evicted() {
        let cache = ResultCache::new(4);
        cache.insert("k", "payload".into());
        assert!(cache.corrupt("k"));
        assert_eq!(cache.lookup("k"), Lookup::Corrupt);
        // The corrupt entry is gone: the next probe is a clean miss and
        // a recompute repopulates it.
        assert_eq!(cache.lookup("k"), Lookup::Miss);
        cache.insert("k", "payload".into());
        assert!(matches!(cache.lookup("k"), Lookup::Hit(_)));
        assert!(!cache.corrupt("unknown"));
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let cache = ResultCache::new(2);
        cache.insert("a", "1".into());
        cache.insert("b", "2".into());
        cache.insert("c", "3".into());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup("a"), Lookup::Miss);
        assert!(matches!(cache.lookup("b"), Lookup::Hit(_)));
        assert!(matches!(cache.lookup("c"), Lookup::Hit(_)));
        // Reinserting an existing key refreshes its slot, not a second copy.
        cache.insert("b", "2b".into());
        assert_eq!(cache.len(), 2);
        cache.insert("d", "4".into());
        assert_eq!(cache.lookup("c"), Lookup::Miss, "c was oldest after b refresh");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        cache.insert("k", "1".into());
        assert_eq!(cache.lookup("k"), Lookup::Miss);
        assert!(cache.is_empty());
    }
}
