//! The content-addressed result cache.
//!
//! Entries are keyed by [`crate::protocol::cache_key`] — `(spec hash,
//! seeds, engine version)` — and hold the serialized result document
//! plus its digest. Determinism makes the cache sound: the same key
//! always reproduces the byte-identical document, so a hit may be
//! served without rerunning anything. Every lookup re-derives the
//! stored bytes' digest; a mismatch (bit rot, or the fault-injection
//! harness) evicts the entry and reports [`Lookup::Corrupt`] so the
//! caller recomputes instead of serving bad bytes.

use crate::protocol::digest_hex;
use crate::store::{LoadReport, StateDir};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// A cached result document and the digest it must hash to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// The serialized result (JSON text, byte-exact).
    pub result: String,
    /// [`digest_hex`] of `result` at insertion time.
    pub digest: String,
}

/// Outcome of a cache probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// Entry present and its digest checks out.
    Hit(CacheEntry),
    /// Entry present but its bytes no longer match the stored digest;
    /// the entry has been evicted.
    Corrupt,
    /// No entry for this key.
    Miss,
}

struct CacheInner {
    map: HashMap<String, CacheEntry>,
    /// Insertion order for FIFO eviction at capacity.
    order: VecDeque<String>,
}

/// A bounded, thread-safe result cache with digest-checked reads,
/// optionally backed by a [`StateDir`] that spills every insertion to
/// disk and reloads verified entries at startup.
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    state: Option<Arc<StateDir>>,
}

impl ResultCache {
    /// A memory-only cache holding at most `capacity` entries (oldest
    /// evicted first). `capacity` 0 disables caching: every probe
    /// misses.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner { map: HashMap::new(), order: VecDeque::new() }),
            capacity,
            state: None,
        }
    }

    /// A durable cache backed by `state`: the startup scan loads every
    /// verified spill file (in file-name order, up to `capacity`) and
    /// quarantines the rest; thereafter every insertion spills
    /// tempfile-then-rename, and evictions delete their spill files.
    /// Returns the cache and the scan's [`LoadReport`] so the server
    /// can surface what it recovered (and emit `cache_corrupt` for
    /// every quarantined file).
    pub fn with_state(capacity: usize, state: Arc<StateDir>) -> (Self, LoadReport) {
        let cache = Self {
            inner: Mutex::new(CacheInner { map: HashMap::new(), order: VecDeque::new() }),
            capacity,
            state: Some(state),
        };
        let report = match &cache.state {
            Some(st) => st.load_cache(),
            None => unreachable!(),
        };
        if cache.capacity > 0 {
            let mut inner = cache.inner.lock().expect("cache lock");
            for (key, entry) in report.entries.iter().take(cache.capacity) {
                inner.order.push_back(key.clone());
                inner.map.insert(key.clone(), entry.clone());
            }
        }
        (cache, report)
    }

    /// Probe `key`, re-verifying the stored digest.
    pub fn lookup(&self, key: &str) -> Lookup {
        let mut inner = self.inner.lock().expect("cache lock");
        let Some(entry) = inner.map.get(key) else {
            return Lookup::Miss;
        };
        if digest_hex(entry.result.as_bytes()) == entry.digest {
            Lookup::Hit(entry.clone())
        } else {
            inner.map.remove(key);
            inner.order.retain(|k| k != key);
            if let Some(state) = &self.state {
                // The spill file backs the rotted memory entry; drop it
                // too so a restart cannot resurrect bad bytes (the
                // startup scan would quarantine them anyway).
                state.unspill(key);
            }
            Lookup::Corrupt
        }
    }

    /// Store `result` under `key`, returning its digest. Replaces any
    /// previous entry; evicts the oldest entry at capacity. When
    /// state-backed, the entry is spilled tempfile-then-rename before
    /// it becomes visible, and evicted entries lose their spill files;
    /// a spill I/O failure degrades the entry to memory-only.
    pub fn insert(&self, key: &str, result: String) -> String {
        let digest = digest_hex(result.as_bytes());
        if self.capacity == 0 {
            return digest;
        }
        let entry = CacheEntry { result, digest: digest.clone() };
        if let Some(state) = &self.state {
            let _ = state.spill(key, &entry);
        }
        let mut inner = self.inner.lock().expect("cache lock");
        if inner.map.remove(key).is_some() {
            inner.order.retain(|k| k != key);
        }
        while inner.map.len() >= self.capacity {
            let Some(oldest) = inner.order.pop_front() else { break };
            inner.map.remove(&oldest);
            if let Some(state) = &self.state {
                state.unspill(&oldest);
            }
        }
        inner.order.push_back(key.to_string());
        inner.map.insert(key.to_string(), entry);
        digest
    }

    /// Fault-injection hook: flip a byte of the entry stored under
    /// `key` *without* updating its digest, so the next lookup detects
    /// the corruption. When state-backed, the key's spill file is
    /// rotted the same way, so a restart's startup scan must quarantine
    /// it. Returns `false` if the key is absent.
    pub fn corrupt(&self, key: &str) -> bool {
        let mut inner = self.inner.lock().expect("cache lock");
        if let Some(state) = &self.state {
            state.rot_entry(key);
        }
        let Some(entry) = inner.map.get_mut(key) else {
            return false;
        };
        let mut bytes = std::mem::take(&mut entry.result).into_bytes();
        if let Some(b) = bytes.first_mut() {
            *b ^= 0x01;
        }
        entry.result = String::from_utf8_lossy(&bytes).into_owned();
        true
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_byte_identical_entry() {
        let cache = ResultCache::new(4);
        assert_eq!(cache.lookup("k"), Lookup::Miss);
        let digest = cache.insert("k", "{\"rows\":[1,2]}".into());
        match cache.lookup("k") {
            Lookup::Hit(e) => {
                assert_eq!(e.result, "{\"rows\":[1,2]}");
                assert_eq!(e.digest, digest);
            }
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn corruption_is_detected_and_evicted() {
        let cache = ResultCache::new(4);
        cache.insert("k", "payload".into());
        assert!(cache.corrupt("k"));
        assert_eq!(cache.lookup("k"), Lookup::Corrupt);
        // The corrupt entry is gone: the next probe is a clean miss and
        // a recompute repopulates it.
        assert_eq!(cache.lookup("k"), Lookup::Miss);
        cache.insert("k", "payload".into());
        assert!(matches!(cache.lookup("k"), Lookup::Hit(_)));
        assert!(!cache.corrupt("unknown"));
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let cache = ResultCache::new(2);
        cache.insert("a", "1".into());
        cache.insert("b", "2".into());
        cache.insert("c", "3".into());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup("a"), Lookup::Miss);
        assert!(matches!(cache.lookup("b"), Lookup::Hit(_)));
        assert!(matches!(cache.lookup("c"), Lookup::Hit(_)));
        // Reinserting an existing key refreshes its slot, not a second copy.
        cache.insert("b", "2b".into());
        assert_eq!(cache.len(), 2);
        cache.insert("d", "4".into());
        assert_eq!(cache.lookup("c"), Lookup::Miss, "c was oldest after b refresh");
    }

    #[test]
    fn state_backed_cache_survives_a_restart_and_evicts_spill_files() {
        let dir = std::env::temp_dir()
            .join(format!("df-cache-state-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let state = Arc::new(StateDir::open(&dir).unwrap());

        let (cache, report) = ResultCache::with_state(2, Arc::clone(&state));
        assert!(report.entries.is_empty() && report.quarantined.is_empty());
        cache.insert("a", "result-a".into());
        cache.insert("b", "result-b".into());

        // "Restart": a fresh cache on the same dir reloads both entries.
        let (cache2, report2) = ResultCache::with_state(2, Arc::clone(&state));
        assert_eq!(report2.entries.len(), 2);
        match cache2.lookup("a") {
            Lookup::Hit(e) => assert_eq!(e.result, "result-a"),
            other => panic!("expected hit after reload, got {other:?}"),
        }

        // Eviction removes the spill file: the next restart only sees
        // the survivors.
        cache2.insert("c", "result-c".into()); // evicts the oldest
        let (_, report3) = ResultCache::with_state(2, Arc::clone(&state));
        assert_eq!(report3.entries.len(), 2);
        assert!(report3.entries.iter().all(|(k, _)| k != "a"), "{report3:?}");

        // Rot one entry on disk and in memory: a restart quarantines
        // the rotted file instead of loading it, so the key misses and
        // recomputes rather than serving bad bytes.
        assert!(cache2.corrupt("b"));
        let (cache4, report4) = ResultCache::with_state(2, Arc::clone(&state));
        assert_eq!(report4.entries.len(), 1);
        assert_eq!(report4.quarantined.len(), 1);
        assert_eq!(cache4.lookup("b"), Lookup::Miss);
        // And the live probe on the pre-restart cache detects it too,
        // dropping the (already-quarantined) disk state.
        assert_eq!(cache2.lookup("b"), Lookup::Corrupt);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        cache.insert("k", "1".into());
        assert_eq!(cache.lookup("k"), Lookup::Miss);
        assert!(cache.is_empty());
    }
}
