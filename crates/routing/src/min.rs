//! Minimal (MIN) oblivious routing: always the shortest path
//! `local → global → local`.

use crate::common::{current_target, make_decision, minimal_out, normalize_route_state, VcPlan};
use df_engine::{Decision, EngineConfig, PacketHeader, RouteInfo, RouterState, RoutingPolicy};
use df_topology::{Port, Topology};

/// Minimal routing. The reference for UN traffic; caps throughput at
/// `1/(a·p)` under ADV+1 and `h/(a·p)` under ADVc.
pub struct MinRouting {
    topo: Topology,
    plan: VcPlan,
}

impl MinRouting {
    /// Build for `topo` under `cfg`'s VC widths.
    pub fn new(topo: Topology, cfg: &EngineConfig) -> Self {
        Self { plan: VcPlan::from_config(cfg), topo }
    }
}

impl RoutingPolicy for MinRouting {
    fn route(
        &mut self,
        router: &RouterState,
        _in_port: Port,
        hdr: PacketHeader,
        info: RouteInfo,
    ) -> Decision {
        let info = normalize_route_state(&self.topo, router.id(), info);
        let target = current_target(hdr.dst, &info);
        let out = minimal_out(&self.topo, router.id(), target);
        make_decision(&self.topo, out, info, &self.plan)
    }

    fn name(&self) -> &'static str {
        "MIN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_engine::{ArbiterPolicy, Network, NullSink};
    use df_topology::{Arrangement, DragonflyParams, NodeId};

    fn build() -> Network<MinRouting, NullSink> {
        let topo = Topology::new(DragonflyParams::figure1(), Arrangement::Palmtree);
        let cfg = EngineConfig::paper(ArbiterPolicy::RoundRobin, 3);
        let policy = MinRouting::new(topo.clone(), &cfg);
        Network::new(topo, cfg, policy, NullSink)
    }

    #[test]
    fn delivers_across_the_machine() {
        let mut net = build();
        let nodes = net.topology().params().nodes();
        for n in 0..nodes {
            net.offer(NodeId(n), NodeId((n + 17) % nodes));
        }
        assert!(net.drain(20_000));
        assert_eq!(net.counters().delivered_packets as u32, nodes);
    }

    #[test]
    fn min_latency_is_exact_on_idle_network() {
        let topo = Topology::new(DragonflyParams::figure1(), Arrangement::Palmtree);
        let cfg = EngineConfig::paper(ArbiterPolicy::RoundRobin, 3);
        let policy = MinRouting::new(topo.clone(), &cfg);
        let recs = std::cell::RefCell::new(Vec::new());
        {
            let sink = |r: &df_engine::DeliveredRecord| recs.borrow_mut().push(*r);
            let mut net = Network::new(topo, cfg, policy, sink);
            net.offer(NodeId(0), NodeId(40));
            assert!(net.drain(5_000));
        }
        let r = recs.into_inner()[0];
        assert_eq!(r.misroute_latency(), 0);
        assert_eq!(r.waits.total(), 0);
    }
}
