//! # df-routing
//!
//! The routing mechanisms evaluated by Fuentes et al. (CLUSTER 2015),
//! implemented against the `df-engine` [`RoutingPolicy`] interface:
//!
//! | Mechanism | Class | Global misrouting |
//! |---|---|---|
//! | [`MinRouting`] | oblivious | — |
//! | [`Oblivious`] (RRG/CRG) | oblivious non-minimal (Valiant) | intermediate selection |
//! | [`PiggyBack`] (RRG/CRG) | source-adaptive | intermediate selection |
//! | [`InTransit`] (RRG/CRG/MM) | in-transit adaptive (PAR + OLM) | per-hop candidates |
//!
//! [`MechanismSpec`] is the serializable umbrella used by experiment
//! configs; [`MechanismSpec::PAPER_SET`] lists the seven combinations the
//! paper plots.
//!
//! [`RoutingPolicy`]: df_engine::RoutingPolicy

#![warn(missing_docs)]

mod common;
mod in_transit;
mod min;
mod oblivious;
mod piggyback;
mod spec;

pub use common::{
    current_target, entry_node_of_group, make_decision, minimal_out, normalize_route_state,
    vc_for, VcPlan,
};
pub use in_transit::{CongestionSignal, EscapeSelect, GlobalMisrouting, InTransit};
pub use min::MinRouting;
pub use oblivious::{Oblivious, ObliviousFlavor};
pub use piggyback::PiggyBack;
pub use spec::MechanismSpec;
