//! In-transit adaptive routing (PAR-style global misrouting + OLM local
//! misrouting; §II-C), with the RRG / CRG / MM global misrouting policies.
//!
//! Decisions are re-evaluated every cycle while the packet waits (that is
//! what "in-transit adaptive" means): the head compares the occupancy of
//! its minimal output against the congestion threshold (Table I: 43%) and
//! escapes to a non-minimal candidate when the minimal port is congested
//! and the candidate is not.
//!
//! * Global misrouting is allowed in the source group only (at injection
//!   or after the first local hop, as in PAR), at most once per packet.
//!   The candidate *intermediate group* is picked per policy:
//!   - **CRG** — a group behind one of the current router's own global
//!     ports (1 hop to the intermediate group);
//!   - **RRG** — any group (reached via the canonical exit, 1–2 hops);
//!   - **MM**  — CRG at the source router, NRG (a group behind another
//!     router of the source group) in transit.
//! * Local misrouting (OLM) is allowed outside the source group when the
//!   minimal next hop is local and congested, at most once per group.
//!
//! Under ADVc + CRG/MM the bottleneck router's non-minimal global
//! candidates *are* the congested minimal links of its neighbours — the
//! structural overlap behind the paper's unfairness result.

use crate::common::{
    current_target, entry_node_of_group, make_decision, minimal_out, normalize_route_state,
    VcPlan,
};
use df_engine::{
    Decision, EngineConfig, PacketHeader, Phase, RouteDep, RouteInfo, RouterState, RoutingPolicy,
};
use df_topology::{GroupId, Port, PortKind, PortLayout, RouterId, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Global misrouting policy for in-transit adaptive routing (§II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalMisrouting {
    /// Random-router Global: any group in the network.
    Rrg,
    /// Current-router Global: only groups behind the current router's own
    /// global links.
    Crg,
    /// Mixed-mode: CRG at the source router, NRG in transit.
    Mm,
}

/// Which congestion estimate drives the misrouting decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CongestionSignal {
    /// Output buffer occupancy only. Matches FOGSim's behaviour: on long
    /// links the buffer backs up only under genuine credit exhaustion,
    /// so minimal traffic keeps pouring into the bottleneck router and
    /// transit-over-injection priority starves its injection — the
    /// paper's headline result.
    OutputBuffer,
    /// Output buffer plus consumed downstream credits. This signal is
    /// biased by the credit round-trip on 100-cycle global links (a
    /// fully-utilized but uncongested link reads ~45% occupied), so the
    /// 43% threshold triggers on utilization rather than congestion and
    /// the network settles into a fairer fluid equilibrium. Kept for the
    /// sensitivity ablation.
    Combined,
    /// Consumed credits of the specific VC the packet would ride on the
    /// next hop ("the number of credits of the output ports", §II-C).
    /// On any *utilized* link the credit round-trip alone consumes most
    /// of a small VC window (a 32-phit local VC reads ~75% busy), so
    /// escape candidates through busy local links fail the 43% test and
    /// transit is forced to stay minimal — producing the standing queues
    /// at the bottleneck router that transit-over-injection priority
    /// turns into the paper's injection starvation.
    VcCredits,
}

/// How the escape candidate of a global misroute is selected among the
/// (equal-cost) CRG alternatives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EscapeSelect {
    /// Sample one candidate uniformly at random per decision (the
    /// paper's mechanisms; consumes RNG on every congested-minimal
    /// evaluation).
    Random,
    /// Deterministic least-recently-granted tie-break: consider every
    /// uncongested CRG candidate and escape through the one this router
    /// routed an escape through longest ago. RNG-free; trades the
    /// statistical spreading of random selection for a rotation
    /// guarantee under sustained congestion.
    Lru,
}

/// In-transit adaptive routing mechanism.
pub struct InTransit {
    topo: Topology,
    plan: VcPlan,
    policy: GlobalMisrouting,
    /// Congestion threshold as an occupancy fraction (Table I: 0.43).
    threshold: f64,
    /// Whether a blocked head re-evaluates its decision every cycle
    /// (`true`) or commits once per router visit (`false`, FOGSim-like).
    reevaluate: bool,
    /// Congestion estimate in use.
    signal: CongestionSignal,
    /// Escape-candidate selection (see [`EscapeSelect`]).
    escape: EscapeSelect,
    /// LRU state, `[router][global port j]` flattened: the stamp of the
    /// last escape this router sent through candidate `j`.
    last_routed: Vec<u64>,
    /// Monotonic stamp source for `last_routed`.
    lru_stamp: u64,
    rng: SmallRng,
}

impl InTransit {
    /// Build with the paper's 43% congestion threshold.
    pub fn new(topo: Topology, cfg: &EngineConfig, policy: GlobalMisrouting, seed: u64) -> Self {
        Self::with_threshold(topo, cfg, policy, 0.43, seed)
    }

    /// Build with a custom congestion threshold (ablation studies).
    pub fn with_threshold(
        topo: Topology,
        cfg: &EngineConfig,
        policy: GlobalMisrouting,
        threshold: f64,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&threshold));
        Self {
            plan: VcPlan::from_config(cfg),
            topo,
            policy,
            threshold,
            reevaluate: false,
            signal: CongestionSignal::VcCredits,
            escape: EscapeSelect::Random,
            last_routed: Vec::new(),
            lru_stamp: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Select the congestion estimate (ablation).
    pub fn with_signal(mut self, signal: CongestionSignal) -> Self {
        self.signal = signal;
        self
    }

    /// Switch the global-misroute escape to the deterministic LRU
    /// tie-break ([`EscapeSelect::Lru`]). Meaningful with the CRG policy,
    /// whose candidate set is exactly the current router's own `h` global
    /// ports.
    pub fn with_lru_escape(mut self) -> Self {
        let params = self.topo.params();
        self.escape = EscapeSelect::Lru;
        self.last_routed = vec![0; (params.routers() * params.h) as usize];
        self
    }

    /// The congestion estimate for `port` under the configured signal.
    /// `vc` is the VC the packet would use on that port (only relevant
    /// for [`CongestionSignal::VcCredits`]; ejection ports have no
    /// credit window and always read idle there).
    fn congestion(&self, router: &RouterState, port: df_topology::Port, vc: u8) -> f64 {
        match self.signal {
            CongestionSignal::OutputBuffer => router.output_buffer_fill(port),
            CongestionSignal::Combined => router.output_congestion(port),
            CongestionSignal::VcCredits => router.vc_credit_fill(port, vc),
        }
    }

    /// Re-evaluate blocked heads every cycle instead of committing one
    /// decision per router visit. Per-cycle re-evaluation lets transit
    /// packets walk away from a congested bottleneck while they wait,
    /// which softens (but does not remove) the ADVc starvation; the
    /// default once-per-visit semantics match FOGSim.
    pub fn with_reevaluation(mut self, on: bool) -> Self {
        self.reevaluate = on;
        self
    }

    /// The full routing decision plus what it depended on.
    ///
    /// Dependency classification (drives the engine's route-decision
    /// cache): the ejection and uncongested-minimal fast paths are pure
    /// reads of at most one output port's congestion and get `Always` /
    /// `Port` dependencies; so does the congested-minimal fallback when
    /// neither misroute gate is open (the gates read only packet state).
    /// Every path that enters a misroute evaluation is `Volatile` — it
    /// consumes RNG (random escape, local misroute) or reads several
    /// candidate ports and mutates the LRU state, so a recompute is not
    /// guaranteed to reproduce it.
    fn decide(
        &mut self,
        router: &RouterState,
        in_port: Port,
        hdr: PacketHeader,
        info: RouteInfo,
    ) -> (Decision, RouteDep) {
        let params = *self.topo.params();
        let me = router.id();
        let mut info = normalize_route_state(&self.topo, me, info);
        let target = current_target(hdr.dst, &info);
        let min_out = minimal_out(&self.topo, me, target);
        let min_kind = params.port_kind(min_out);

        // Minimal wins outright while uncongested (ejection is free).
        if min_kind == PortKind::Injection {
            return (make_decision(&self.topo, min_out, info, &self.plan), RouteDep::Always);
        }
        let min_vc = crate::common::vc_for(min_kind, &info, &self.plan);
        let occ_min = self.congestion(router, min_out, min_vc);
        let min_dep = RouteDep::Port { port: min_out.0 as u8, epoch: router.port_epoch(min_out) };
        if occ_min <= self.threshold {
            return (make_decision(&self.topo, min_out, info, &self.plan), min_dep);
        }

        let my_group = me.group(&params);
        let in_source_group = my_group == hdr.src.group(&params);
        let at_injection = params.port_kind(in_port) == PortKind::Injection;

        // --- Global misroute (source group only, once per packet). ---
        let may_global = in_source_group
            && !info.global_misrouted
            && info.phase == Phase::ToDestination
            && hdr.dst.group(&params) != my_group;

        // --- Local misroute (OLM-style: destination group only, once,
        // around a congested local minimal hop). Restricting it to the
        // destination group keeps the VC channel-dependency graph acyclic
        // with 3 local VCs (see `vc_for`); misrouted packets there are at
        // most two local hops from their always-draining ejection port.
        let may_local = !in_source_group
            && my_group == hdr.dst.group(&params)
            && !info.local_misrouted
            && min_kind == PortKind::Local
            && info.phase == Phase::ToDestination;

        // Neither misroute gate open: the congested minimal port is the
        // only congestion this decision read, and no RNG was consumed.
        if !may_global && !may_local {
            return (make_decision(&self.topo, min_out, info, &self.plan), min_dep);
        }

        if may_global {
            match self.escape {
                EscapeSelect::Random => {
                    let cand_group = self.sample_group(me, at_injection);
                    let inter = entry_node_of_group(&self.topo, my_group, cand_group);
                    if inter.router(&params) != me {
                        let cand_out = minimal_out(&self.topo, me, inter);
                        let cand_vc = crate::common::vc_for(
                            params.port_kind(cand_out),
                            &info,
                            &self.plan,
                        );
                        if self.congestion(router, cand_out, cand_vc) < self.threshold {
                            info.global_misrouted = true;
                            info.phase = Phase::ToIntermediate;
                            info.intermediate = Some(inter);
                            return (
                                make_decision(&self.topo, cand_out, info, &self.plan),
                                RouteDep::Volatile,
                            );
                        }
                    }
                }
                EscapeSelect::Lru => {
                    // Deterministic CRG scan: every uncongested candidate
                    // behind one of my own global ports competes; the one
                    // granted an escape longest ago wins (port index
                    // breaks stamp ties, so the cold start rotates
                    // j = 0, 1, …, h-1).
                    let mut best: Option<(u64, u32, Port, df_topology::NodeId)> = None;
                    for j in 0..params.h {
                        let cand_group = self.topo.global_port_target_group(me, j);
                        let inter = entry_node_of_group(&self.topo, my_group, cand_group);
                        if inter.router(&params) == me {
                            continue;
                        }
                        let cand_out = minimal_out(&self.topo, me, inter);
                        let cand_vc = crate::common::vc_for(
                            params.port_kind(cand_out),
                            &info,
                            &self.plan,
                        );
                        if self.congestion(router, cand_out, cand_vc) >= self.threshold {
                            continue;
                        }
                        let stamp =
                            self.last_routed[(me.0 * params.h + j) as usize];
                        if best.is_none_or(|(s, bj, _, _)| (stamp, j) < (s, bj)) {
                            best = Some((stamp, j, cand_out, inter));
                        }
                    }
                    if let Some((_, j, cand_out, inter)) = best {
                        self.lru_stamp += 1;
                        self.last_routed[(me.0 * params.h + j) as usize] = self.lru_stamp;
                        info.global_misrouted = true;
                        info.phase = Phase::ToIntermediate;
                        info.intermediate = Some(inter);
                        return (
                            make_decision(&self.topo, cand_out, info, &self.plan),
                            RouteDep::Volatile,
                        );
                    }
                }
            }
        }

        if may_local {
            let avoid = target.router(&params).local_index(&params);
            let my_idx = me.local_index(&params);
            // Sample a random other router that is neither me nor the
            // minimal next router.
            let mut x = self.rng.gen_range(0..params.a);
            for _ in 0..params.a {
                if x != my_idx && x != avoid {
                    break;
                }
                x = (x + 1) % params.a;
            }
            if x != my_idx && x != avoid {
                let cand_out = params.local_port(my_idx, x);
                let cand_vc = crate::common::vc_for(PortKind::Local, &info, &self.plan);
                if self.congestion(router, cand_out, cand_vc) < self.threshold {
                    info.local_misrouted = true;
                    return (
                        make_decision(&self.topo, cand_out, info, &self.plan),
                        RouteDep::Volatile,
                    );
                }
            }
        }

        // A misroute was evaluated but rejected: RNG may have been
        // consumed and candidate congestion was read, so the rejection is
        // not reproducible from `min_out` alone.
        (make_decision(&self.topo, min_out, info, &self.plan), RouteDep::Volatile)
    }

    /// Sample a candidate intermediate group for a global misroute from
    /// router `me`, honouring the policy (and the PAR stage via
    /// `at_injection`).
    fn sample_group(&mut self, me: RouterId, at_injection: bool) -> GroupId {
        let params = *self.topo.params();
        let my_group = me.group(&params);
        let effective = match self.policy {
            GlobalMisrouting::Mm => {
                if at_injection {
                    GlobalMisrouting::Crg
                } else {
                    // NRG: a group behind a *different* router of my group.
                    let my_idx = me.local_index(&params);
                    let mut x = self.rng.gen_range(0..params.a - 1);
                    if x >= my_idx {
                        x += 1;
                    }
                    let other = RouterId::from_group_local(&params, my_group, x);
                    let j = self.rng.gen_range(0..params.h);
                    return self.topo.global_port_target_group(other, j);
                }
            }
            p => p,
        };
        match effective {
            GlobalMisrouting::Crg => {
                let j = self.rng.gen_range(0..params.h);
                self.topo.global_port_target_group(me, j)
            }
            GlobalMisrouting::Rrg => {
                let g = params.groups();
                let mut cand = self.rng.gen_range(0..g - 1);
                if cand >= my_group.0 {
                    cand += 1;
                }
                GroupId(cand)
            }
            GlobalMisrouting::Mm => unreachable!("resolved above"),
        }
    }
}

impl RoutingPolicy for InTransit {
    fn route(
        &mut self,
        router: &RouterState,
        in_port: Port,
        hdr: PacketHeader,
        info: RouteInfo,
    ) -> Decision {
        self.decide(router, in_port, hdr, info).0
    }

    fn route_with_deps(
        &mut self,
        router: &RouterState,
        in_port: Port,
        hdr: PacketHeader,
        info: RouteInfo,
    ) -> (Decision, RouteDep) {
        self.decide(router, in_port, hdr, info)
    }

    fn adaptive_reroute(&self) -> bool {
        self.reevaluate
    }

    fn name(&self) -> &'static str {
        if self.escape == EscapeSelect::Lru {
            return "In-Trns-LRU";
        }
        match self.policy {
            GlobalMisrouting::Rrg => "In-Trns-RRG",
            GlobalMisrouting::Crg => "In-Trns-CRG",
            GlobalMisrouting::Mm => "In-Trns-MM",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_engine::{ArbiterPolicy, DeliveredRecord, Network};
    use df_topology::{Arrangement, DragonflyParams, NodeId};

    fn topo_small() -> Topology {
        Topology::new(DragonflyParams::figure1(), Arrangement::Palmtree)
    }

    fn run_adv(policy: GlobalMisrouting, cycles: u64, prob: f64) -> Vec<DeliveredRecord> {
        let topo = topo_small();
        let cfg = EngineConfig::paper(ArbiterPolicy::RoundRobin, 3);
        let mechanism = InTransit::new(topo.clone(), &cfg, policy, 11);
        let recs = std::cell::RefCell::new(Vec::new());
        {
            let sink = |r: &DeliveredRecord| recs.borrow_mut().push(*r);
            let mut net = Network::new(topo, cfg, mechanism, sink);
            let params = *net.topology().params();
            let per_group = params.a * params.p;
            let mut rng = SmallRng::seed_from_u64(2);
            for _ in 0..cycles {
                for n in 0..params.nodes() {
                    if rng.gen_bool(prob) {
                        let g = n / per_group;
                        let dst =
                            ((g + 1) % params.groups()) * per_group + rng.gen_range(0..per_group);
                        net.offer(NodeId(n), NodeId(dst));
                    }
                }
                net.step();
            }
            assert!(net.drain(200_000), "in-transit network must drain");
        }
        recs.into_inner()
    }

    #[test]
    fn idle_packets_route_minimally() {
        let topo = topo_small();
        let cfg = EngineConfig::paper(ArbiterPolicy::RoundRobin, 3);
        let mechanism = InTransit::new(topo.clone(), &cfg, GlobalMisrouting::Mm, 1);
        let recs = std::cell::RefCell::new(Vec::new());
        {
            let sink = |r: &DeliveredRecord| recs.borrow_mut().push(*r);
            let mut net = Network::new(topo, cfg, mechanism, sink);
            net.offer(NodeId(0), NodeId(40));
            assert!(net.drain(5_000));
        }
        let r = recs.into_inner()[0];
        assert_eq!(r.misroute_latency(), 0);
        assert_eq!(r.waits.total(), 0);
    }

    #[test]
    fn adversarial_congestion_triggers_misrouting() {
        for policy in [GlobalMisrouting::Rrg, GlobalMisrouting::Crg, GlobalMisrouting::Mm] {
            let recs = run_adv(policy, 2_000, 0.04);
            let misrouted = recs.iter().filter(|r| r.misroute_latency() > 0).count();
            assert!(
                misrouted > recs.len() / 20,
                "{policy:?}: expected adaptive escapes, got {misrouted}/{}",
                recs.len()
            );
        }
    }

    #[test]
    fn hop_counts_stay_within_vc_budget_shapes() {
        // Global misrouting once + local misrouting once per group keeps
        // paths within l g l l g l plus one extra local.
        for policy in [GlobalMisrouting::Rrg, GlobalMisrouting::Crg, GlobalMisrouting::Mm] {
            for r in run_adv(policy, 1_000, 0.04) {
                assert!(r.global_hops <= 2, "{policy:?}: {r:?}");
                assert!(r.local_hops <= 5, "{policy:?}: {r:?}");
            }
        }
    }

    #[test]
    fn all_delivered_under_stress() {
        let recs = run_adv(GlobalMisrouting::Mm, 3_000, 0.08);
        assert!(!recs.is_empty());
        for r in &recs {
            assert_eq!(r.latency(), r.traversal + r.waits.total());
        }
    }
}
