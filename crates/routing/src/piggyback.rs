//! PiggyBack (PB) source-adaptive routing (Jiang et al., ISCA'09; §II-C).
//!
//! Each router estimates the saturation of its global links by comparing
//! every link's queue against twice the router-local mean plus a
//! threshold; the flags are shared with the whole group (an ECN-style
//! broadcast the real system piggybacks on packets — we model the shared
//! table directly and refresh it incrementally, re-evaluating only the
//! routers whose global-link queues changed since the previous cycle).
//!
//! At injection the source consults the flag of the minimal path's global
//! link (and, when the minimal path starts with a local hop, a local
//! saturation estimate with its own coarser threshold). Saturated ⇒ the
//! packet is sent on a Valiant path chosen per the RRG/CRG flavour;
//! otherwise it is sent minimally. The decision is final (source-based).
//!
//! Under ADVc every global link of the bottleneck router carries the same
//! load, so *none* exceeds twice the mean — PB mis-classifies them as
//! unsaturated and keeps routing minimally. This reproduces the paper's
//! observed PB failure (§V-A).

use crate::common::{current_target, make_decision, minimal_out, normalize_route_state, VcPlan};
use crate::oblivious::ObliviousFlavor;
use df_engine::{
    CycleCtx, Decision, EngineConfig, PacketHeader, Phase, RouteInfo, RouterState, RoutingPolicy,
};
use df_topology::{NodeId, Port, PortKind, PortLayout, RouterId, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// PiggyBack source-adaptive routing.
pub struct PiggyBack {
    topo: Topology,
    plan: VcPlan,
    flavor: ObliviousFlavor,
    rng: SmallRng,
    /// Saturation flag per global link, indexed `router_id * h + j`.
    /// Refreshed incrementally in [`RoutingPolicy::begin_cycle`] from the
    /// engine's dirty-router list; read by every router of the owning
    /// group (the ECN share).
    global_saturated: Vec<bool>,
    /// Scratch for one router's per-global-link queue lengths (length
    /// `h`), reused across `begin_cycle` iterations.
    queue_scratch: Vec<u32>,
    /// Threshold offsets in phits (Table I: T=5 local, T=3 global,
    /// converted from packets).
    t_global_phits: f64,
    t_local_phits: f64,
}

impl PiggyBack {
    /// Build for `topo` under `cfg` with deterministic `seed`.
    pub fn new(topo: Topology, cfg: &EngineConfig, flavor: ObliviousFlavor, seed: u64) -> Self {
        let links = (topo.params().routers() * topo.params().h) as usize;
        Self {
            plan: VcPlan::from_config(cfg),
            flavor,
            rng: SmallRng::seed_from_u64(seed),
            global_saturated: vec![false; links],
            queue_scratch: vec![0; topo.params().h as usize],
            t_global_phits: 3.0 * cfg.packet_size as f64,
            t_local_phits: 5.0 * cfg.packet_size as f64,
            topo,
        }
    }

    /// Is the local link from `router` through `port` saturated? Compared
    /// against twice the mean of the router's local queues plus the local
    /// threshold — evaluated on demand since the source router reads only
    /// its *own* local queues.
    fn local_saturated(&self, router: &RouterState, port: Port) -> bool {
        let params = self.topo.params();
        let p = params.p;
        let locals = params.a - 1;
        let mut sum = 0u32;
        for l in 0..locals {
            sum += router.output_queue_phits(Port(p + l));
        }
        let mean = sum as f64 / locals as f64;
        router.output_queue_phits(port) as f64 > 2.0 * mean + self.t_local_phits
    }

    /// Recompute the `h` saturation flags of one router from its current
    /// global-link queues (the per-router unit of the ECN share).
    fn refresh_router(&mut self, router: &RouterState, h: u32) {
        let params = self.topo.params();
        let base = (router.id().0 * h) as usize;
        let mut sum = 0u32;
        for j in 0..h {
            let q = router.output_queue_phits(params.global_port(j));
            self.queue_scratch[j as usize] = q;
            sum += q;
        }
        let mean = sum as f64 / h as f64;
        for j in 0..h {
            self.global_saturated[base + j as usize] =
                f64::from(self.queue_scratch[j as usize]) > 2.0 * mean + self.t_global_phits;
        }
    }

    /// Valiant intermediate for a nonminimal injection (same selection as
    /// the oblivious mechanisms).
    fn pick_intermediate(&mut self, src: NodeId) -> NodeId {
        let params = *self.topo.params();
        match self.flavor {
            ObliviousFlavor::Rrg => {
                // Redraw while the intermediate falls in the source group:
                // a same-group intermediate would reuse local VC stage 0
                // after the turnaround, which the deadlock-freedom argument
                // of `vc_for` forbids (and it is a useless detour anyway).
                let sg = src.group(&params);
                loop {
                    let n = NodeId(self.rng.gen_range(0..params.nodes()));
                    if n.group(&params) != sg {
                        break n;
                    }
                }
            }
            ObliviousFlavor::Crg => {
                let src_router = src.router(&params);
                let j = self.rng.gen_range(0..params.h);
                let group = self.topo.global_port_target_group(src_router, j);
                let per_group = params.a * params.p;
                NodeId(group.0 * per_group + self.rng.gen_range(0..per_group))
            }
        }
    }
}

impl RoutingPolicy for PiggyBack {
    /// Incremental saturation refresh: only routers whose global-link
    /// queues changed since the last cycle ([`CycleCtx::dirty_global`])
    /// are re-evaluated — O(changed links) per cycle instead of a full
    /// O(routers·h) rescan. Flags of untouched routers are unchanged by
    /// construction (their queue depths are bit-identical), so this is
    /// exactly equivalent to the full scan.
    fn begin_cycle(&mut self, ctx: &CycleCtx<'_>) {
        let params = self.topo.params();
        let h = params.h;
        for &r in ctx.dirty_global {
            self.refresh_router(&ctx.routers[r as usize], h);
        }
    }

    fn route(
        &mut self,
        router: &RouterState,
        in_port: Port,
        hdr: PacketHeader,
        info: RouteInfo,
    ) -> Decision {
        let params = *self.topo.params();
        let mut info = normalize_route_state(&self.topo, router.id(), info);
        if !info.source_decided {
            debug_assert_eq!(params.port_kind(in_port), PortKind::Injection);
            info.source_decided = true;
            let me: RouterId = router.id();
            let (sg, dg) = (hdr.src.group(&params), hdr.dst.group(&params));
            if sg != dg {
                // Saturation of the minimal route's global link (group-
                // shared flag) and, if the route starts locally, of the
                // local link towards the exit router.
                let (exit, j) = self.topo.exit_to_group(sg, dg);
                let g_sat = self.global_saturated[(exit.0 * params.h + j) as usize];
                let l_sat = if exit != me {
                    let port =
                        params.local_port(me.local_index(&params), exit.local_index(&params));
                    self.local_saturated(router, port)
                } else {
                    false
                };
                if g_sat || l_sat {
                    let inter = self.pick_intermediate(hdr.src);
                    if inter.router(&params) != me {
                        info.intermediate = Some(inter);
                        info.phase = Phase::ToIntermediate;
                    }
                }
            }
        }
        let target = current_target(hdr.dst, &info);
        let out = minimal_out(&self.topo, router.id(), target);
        make_decision(&self.topo, out, info, &self.plan)
    }

    fn name(&self) -> &'static str {
        match self.flavor {
            ObliviousFlavor::Rrg => "Src-RRG",
            ObliviousFlavor::Crg => "Src-CRG",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_engine::{ArbiterPolicy, DeliveredRecord, Network};
    use df_topology::{Arrangement, DragonflyParams};

    fn topo_small() -> Topology {
        Topology::new(DragonflyParams::figure1(), Arrangement::Palmtree)
    }

    #[test]
    fn idle_network_routes_minimally() {
        // With no congestion, PB must behave exactly like MIN.
        let topo = topo_small();
        let cfg = EngineConfig::paper(ArbiterPolicy::RoundRobin, 4);
        let policy = PiggyBack::new(topo.clone(), &cfg, ObliviousFlavor::Rrg, 5);
        let recs = std::cell::RefCell::new(Vec::new());
        {
            let sink = |r: &DeliveredRecord| recs.borrow_mut().push(*r);
            let mut net = Network::new(topo, cfg, policy, sink);
            net.offer(NodeId(0), NodeId(40));
            net.offer(NodeId(1), NodeId(55));
            assert!(net.drain(5_000));
        }
        for r in recs.into_inner() {
            assert_eq!(r.misroute_latency(), 0, "PB must stay minimal when idle");
        }
    }

    #[test]
    fn adversarial_load_triggers_valiant() {
        // Saturate one global link per group with ADV+1 traffic and check
        // that PB eventually diverts packets (misroute latency appears).
        // Needs h >= 3: with h = 2 the relative saturation test
        // `q > 2*mean + T` can never fire (q <= sum = 2*mean), which is an
        // inherent property of PB's formula, not a bug.
        let topo = Topology::new(DragonflyParams::small(), Arrangement::Palmtree);
        let cfg = EngineConfig::paper(ArbiterPolicy::RoundRobin, 4);
        let policy = PiggyBack::new(topo.clone(), &cfg, ObliviousFlavor::Rrg, 6);
        let recs = std::cell::RefCell::new(Vec::new());
        {
            let sink = |r: &DeliveredRecord| recs.borrow_mut().push(*r);
            let mut net = Network::new(topo, cfg, policy, sink);
            let params = *net.topology().params();
            let nodes = params.nodes();
            let per_group = params.a * params.p;
            let mut rng = SmallRng::seed_from_u64(1);
            for _cycle in 0..3000 {
                for n in 0..nodes {
                    if rng.gen_bool(0.05) {
                        // ADV+1: next group, random node.
                        let g = n / per_group;
                        let dst =
                            ((g + 1) % params.groups()) * per_group + rng.gen_range(0..per_group);
                        net.offer(NodeId(n), NodeId(dst));
                    }
                }
                net.step();
            }
            assert!(net.drain(100_000), "PB network must drain");
        }
        let recs = recs.into_inner();
        let misrouted = recs.iter().filter(|r| r.misroute_latency() > 0).count();
        assert!(
            misrouted > recs.len() / 10,
            "PB should divert a meaningful share under ADV+1: {misrouted}/{}",
            recs.len()
        );
    }

    #[test]
    fn saturation_flags_start_clear() {
        let topo = topo_small();
        let cfg = EngineConfig::paper(ArbiterPolicy::RoundRobin, 4);
        let params = *topo.params();
        let mut policy = PiggyBack::new(topo.clone(), &cfg, ObliviousFlavor::Crg, 7);
        let routers: Vec<RouterState> =
            topo.routers().map(|r| RouterState::new(r, &params, &cfg)).collect();
        // Even marking every router dirty keeps idle flags clear.
        let all: Vec<u32> = (0..routers.len() as u32).collect();
        policy.begin_cycle(&df_engine::CycleCtx {
            routers: &routers,
            cycle: 1,
            dirty_global: &all,
        });
        assert!(policy.global_saturated.iter().all(|&s| !s));
    }

    /// Wraps a PiggyBack that refreshes incrementally and a shadow copy
    /// that rescans every router each cycle; asserts their flags agree at
    /// the exact point the engine exposes them to routing.
    struct IncrementalVsFull {
        pb: PiggyBack,
        shadow: PiggyBack,
        checked_cycles: u64,
    }

    impl RoutingPolicy for IncrementalVsFull {
        fn begin_cycle(&mut self, ctx: &df_engine::CycleCtx<'_>) {
            self.pb.begin_cycle(ctx);
            let h = self.shadow.topo.params().h;
            for router in ctx.routers {
                self.shadow.refresh_router(router, h);
            }
            assert_eq!(
                self.pb.global_saturated, self.shadow.global_saturated,
                "incremental flags diverged at cycle {}",
                ctx.cycle
            );
            self.checked_cycles += 1;
        }

        fn route(
            &mut self,
            router: &RouterState,
            in_port: df_topology::Port,
            hdr: PacketHeader,
            info: RouteInfo,
        ) -> Decision {
            self.pb.route(router, in_port, hdr, info)
        }

        fn name(&self) -> &'static str {
            "pb-shadow-check"
        }
    }

    #[test]
    fn incremental_refresh_matches_full_rescan() {
        // Drive a PB network under ADV+1 pressure; every cycle the shadow
        // policy recomputes all saturation flags from scratch and compares
        // them against the incrementally maintained table.
        let topo = Topology::new(DragonflyParams::small(), Arrangement::Palmtree);
        let cfg = EngineConfig::paper(ArbiterPolicy::RoundRobin, 4);
        let params = *topo.params();
        let policy = IncrementalVsFull {
            pb: PiggyBack::new(topo.clone(), &cfg, ObliviousFlavor::Rrg, 9),
            shadow: PiggyBack::new(topo.clone(), &cfg, ObliviousFlavor::Rrg, 9),
            checked_cycles: 0,
        };
        let mut net = Network::new(topo, cfg, policy, df_engine::NullSink);
        let per_group = params.a * params.p;
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1200u32 {
            for n in 0..params.nodes() {
                if rng.gen_bool(0.04) {
                    let g = n / per_group;
                    let dst =
                        ((g + 1) % params.groups()) * per_group + rng.gen_range(0..per_group);
                    net.offer(NodeId(n), NodeId(dst));
                }
            }
            net.step();
        }
        assert!(net.policy().checked_cycles >= 1200);
        // The traffic must actually have produced saturation flips, or
        // the equivalence check proved nothing.
        assert!(
            net.policy().pb.global_saturated.iter().any(|&s| s),
            "test traffic never saturated a global link"
        );
    }
}
