//! Shared routing building blocks: minimal next-hop computation,
//! hop-indexed VC selection, and Valiant intermediate bookkeeping.

use df_engine::{Decision, EngineConfig, Phase, RouteInfo};
use df_topology::{NodeId, Port, PortKind, PortLayout, RouterId, Topology};

/// VC widths copied out of the engine config (policies keep this instead
/// of the whole config).
#[derive(Debug, Clone, Copy)]
pub struct VcPlan {
    /// VCs on local ports.
    pub local: u8,
    /// VCs on global ports.
    pub global: u8,
}

impl VcPlan {
    /// Extract from an engine configuration.
    pub fn from_config(cfg: &EngineConfig) -> Self {
        Self { local: cfg.vcs_local, global: cfg.vcs_global }
    }
}

/// The output port on the minimal path from router `me` towards `target`.
///
/// Minimal Dragonfly routing is at most `local → global → local`:
/// * same router → ejection port,
/// * same group → direct local port,
/// * otherwise → the group's exit router for the target group (global
///   port if `me` owns the link, else the local port towards the owner).
pub fn minimal_out(topo: &Topology, me: RouterId, target: NodeId) -> Port {
    let params = topo.params();
    let dst_router = target.router(params);
    if dst_router == me {
        return params.injection_port(target.slot(params));
    }
    let (mg, dg) = (me.group(params), dst_router.group(params));
    if mg == dg {
        return params.local_port(me.local_index(params), dst_router.local_index(params));
    }
    let (exit, j) = topo.exit_to_group(mg, dg);
    if exit == me {
        params.global_port(j)
    } else {
        params.local_port(me.local_index(params), exit.local_index(params))
    }
}

/// Deadlock-free VC for taking `out_port`, using a *path-stage* discipline
/// rather than a per-class hop count (a naive per-class count deadlocks:
/// the degenerate minimal path `g l` would map its destination-group local
/// hop to VC 0, closing an `l0 → g0 → l0` ring across consecutive groups
/// under ADV traffic).
///
/// * Global VC = number of global hops taken (0 or 1; capped).
/// * Local VC with a 4-VC plan (Valiant path shapes `lgl-lgl`):
///   source group → 0, intermediate group before turnaround → 1, after
///   turnaround (or any post-first-global hop of a minimal-mode packet)
///   → 2, destination group after the second global → 3.
/// * Local VC with a ≤3-VC plan (minimal / in-transit): the global-hop
///   count (0, 1, 2).
///
/// Every permitted path shape traverses these channel stages in a fixed
/// ascending order whose only repeated stages sit in the destination
/// group, where all wait chains terminate at the (always-draining)
/// ejection port — so the channel dependency graph is acyclic. The two
/// path restrictions this relies on (Valiant intermediates never in the
/// source group; in-transit local misrouting only in the destination
/// group) are enforced by the mechanisms in this crate.
pub fn vc_for(params_kind: PortKind, info: &RouteInfo, plan: &VcPlan) -> u8 {
    match params_kind {
        PortKind::Injection => 0, // ejection to the node, no VC pressure
        PortKind::Global => info.global_hops.min(plan.global - 1),
        PortKind::Local => {
            let stage = if plan.local >= 4 {
                match (info.global_hops, info.phase) {
                    (0, _) => 0,
                    (1, Phase::ToIntermediate) => 1,
                    (1, Phase::ToDestination) => 2,
                    _ => 3,
                }
            } else {
                info.global_hops
            };
            stage.min(plan.local - 1)
        }
    }
}

/// Assemble a [`Decision`]: pick the VC for `out_port`, advance the hop
/// counters in `info`, and return the pair the engine commits on grant.
pub fn make_decision(
    topo: &Topology,
    out_port: Port,
    mut info: RouteInfo,
    plan: &VcPlan,
) -> Decision {
    let kind = topo.params().port_kind(out_port);
    let out_vc = vc_for(kind, &info, plan);
    match kind {
        PortKind::Injection => {}
        PortKind::Local => info.local_hops = info.local_hops.saturating_add(1),
        PortKind::Global => info.global_hops = info.global_hops.saturating_add(1),
    }
    Decision { out_port, out_vc, info }
}

/// Per-hop book-keeping shared by all mechanisms, applied before any
/// decision logic:
/// * reset the per-group local-misroute flag when the packet enters a new
///   group,
/// * collapse `ToIntermediate` into `ToDestination` once the packet
///   reaches its intermediate router (Valiant turn-around).
pub fn normalize_route_state(
    topo: &Topology,
    me: RouterId,
    mut info: RouteInfo,
) -> RouteInfo {
    let params = topo.params();
    let here = me.group(params);
    if info.last_group != here {
        info.last_group = here;
        info.local_misrouted = false;
    }
    if info.phase == Phase::ToIntermediate {
        let inter = info
            .intermediate
            .expect("ToIntermediate phase requires an intermediate node");
        if inter.router(params) == me {
            info.phase = Phase::ToDestination;
            info.intermediate = None;
        }
    }
    info
}

/// The node the packet is currently steering towards (the intermediate
/// while in the `ToIntermediate` phase, else the final destination).
pub fn current_target(dst: NodeId, info: &RouteInfo) -> NodeId {
    match info.phase {
        Phase::ToIntermediate => {
            info.intermediate.expect("ToIntermediate phase requires an intermediate")
        }
        Phase::ToDestination => dst,
    }
}

/// A representative node on the *entry router* of `group` as seen from
/// `from_group`: the router at the far end of the single global link
/// between the two groups. Valiant paths that target this node flip to
/// the destination phase immediately on entering the group, producing
/// the canonical `(l) g | l g l` shape.
pub fn entry_node_of_group(
    topo: &Topology,
    from_group: df_topology::GroupId,
    group: df_topology::GroupId,
) -> NodeId {
    let (exit, j) = topo.exit_to_group(from_group, group);
    let (entry, _) = topo.global_peer(exit, j);
    NodeId::from_router_slot(topo.params(), entry, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_topology::{Arrangement, DragonflyParams, GroupId};

    fn topo() -> Topology {
        Topology::new(DragonflyParams::small(), Arrangement::Palmtree)
    }

    #[test]
    fn minimal_out_reaches_destination_everywhere() {
        // Walk the minimal path hop by hop from every router to assorted
        // destinations and check it terminates at the ejection port.
        let t = topo();
        let params = *t.params();
        for start in t.routers().step_by(5) {
            for dst in t.nodes().step_by(23) {
                let mut me = start;
                for _hop in 0..4 {
                    let out = minimal_out(&t, me, dst);
                    match params.port_kind(out) {
                        PortKind::Injection => {
                            assert_eq!(me, dst.router(&params));
                            assert_eq!(out, params.injection_port(dst.slot(&params)));
                            break;
                        }
                        _ => match t.port_target(me, out) {
                            df_topology::PortTarget::Router { router, .. } => me = router,
                            df_topology::PortTarget::Node(_) => unreachable!(),
                        },
                    }
                }
                assert_eq!(me, dst.router(&params), "minimal walk must converge");
            }
        }
    }

    #[test]
    fn minimal_path_length_within_three() {
        let t = topo();
        let params = *t.params();
        for start in t.routers().step_by(7) {
            for dst in t.nodes().step_by(31) {
                let mut me = start;
                let mut hops = 0;
                loop {
                    let out = minimal_out(&t, me, dst);
                    if params.port_kind(out) == PortKind::Injection {
                        break;
                    }
                    hops += 1;
                    assert!(hops <= 3, "minimal path exceeded diameter");
                    match t.port_target(me, out) {
                        df_topology::PortTarget::Router { router, .. } => me = router,
                        _ => unreachable!(),
                    }
                }
            }
        }
    }

    #[test]
    fn vc_stages_three_vc_plan() {
        let plan = VcPlan { local: 3, global: 2 };
        let mut info = RouteInfo::new(GroupId(0));
        // Source group: local stage 0.
        assert_eq!(vc_for(PortKind::Local, &info, &plan), 0);
        // After one global hop: local stage 1 — the degenerate `g l`
        // minimal path must NOT reuse stage 0 (ring-deadlock hazard).
        info.global_hops = 1;
        assert_eq!(vc_for(PortKind::Local, &info, &plan), 1);
        assert_eq!(vc_for(PortKind::Global, &info, &plan), 1);
        info.global_hops = 2;
        assert_eq!(vc_for(PortKind::Local, &info, &plan), 2);
        assert_eq!(vc_for(PortKind::Global, &info, &plan), 1); // capped
        info.global_hops = 7;
        assert_eq!(vc_for(PortKind::Local, &info, &plan), 2); // capped
    }

    #[test]
    fn vc_stages_four_vc_plan_follow_valiant_shape() {
        use df_engine::Phase;
        let plan = VcPlan { local: 4, global: 2 };
        let mut info = RouteInfo::new(GroupId(0));
        info.phase = Phase::ToIntermediate;
        // Source group local.
        assert_eq!(vc_for(PortKind::Local, &info, &plan), 0);
        // Intermediate group, before turnaround.
        info.global_hops = 1;
        assert_eq!(vc_for(PortKind::Local, &info, &plan), 1);
        // Intermediate group, after turnaround (and minimal-mode packets
        // in their destination group).
        info.phase = Phase::ToDestination;
        assert_eq!(vc_for(PortKind::Local, &info, &plan), 2);
        // Destination group after the second global hop.
        info.global_hops = 2;
        assert_eq!(vc_for(PortKind::Local, &info, &plan), 3);
    }

    #[test]
    fn decision_advances_hop_counters() {
        let t = topo();
        let plan = VcPlan { local: 3, global: 2 };
        let info = RouteInfo::new(GroupId(0));
        let params = t.params();
        let d = make_decision(&t, params.global_port(0), info, &plan);
        assert_eq!(d.info.global_hops, 1);
        assert_eq!(d.info.local_hops, 0);
        let d2 = make_decision(&t, params.local_port(0, 1), d.info, &plan);
        assert_eq!(d2.info.local_hops, 1);
        // Stage-based VC: a local hop after one global hop rides VC 1.
        assert_eq!(d2.out_vc, 1);
    }

    #[test]
    fn normalize_flips_phase_at_intermediate_router() {
        let t = topo();
        let params = t.params();
        let inter = NodeId(30);
        let mut info = RouteInfo::new(GroupId(0));
        info.phase = Phase::ToIntermediate;
        info.intermediate = Some(inter);
        // Not yet at the intermediate router: unchanged.
        let other = RouterId(0);
        assert_ne!(inter.router(params), other);
        let kept = normalize_route_state(&t, other, info);
        assert_eq!(kept.phase, Phase::ToIntermediate);
        // At the intermediate router: flips.
        let flipped = normalize_route_state(&t, inter.router(params), info);
        assert_eq!(flipped.phase, Phase::ToDestination);
        assert!(flipped.intermediate.is_none());
    }

    #[test]
    fn normalize_resets_local_misroute_on_group_change() {
        let t = topo();
        let mut info = RouteInfo::new(GroupId(0));
        info.local_misrouted = true;
        info.last_group = GroupId(0);
        // Same group: flag kept.
        let same = normalize_route_state(&t, RouterId(0), info);
        assert!(same.local_misrouted);
        // Router in group 1: flag cleared.
        let a = t.params().a;
        let moved = normalize_route_state(&t, RouterId(a), info);
        assert!(!moved.local_misrouted);
        assert_eq!(moved.last_group, GroupId(1));
    }

    #[test]
    fn entry_node_flips_immediately() {
        let t = topo();
        let params = t.params();
        let n = entry_node_of_group(&t, GroupId(0), GroupId(3));
        assert_eq!(n.group(params), GroupId(3));
        // The entry node's router owns the link back to group 0.
        let (exit, j) = t.exit_to_group(GroupId(0), GroupId(3));
        let (entry, _) = t.global_peer(exit, j);
        assert_eq!(n.router(params), entry);
    }
}
