//! Oblivious non-minimal (Valiant) routing with the RRG / CRG global
//! misrouting policies (§II-C).
//!
//! * **Obl-RRG** — classic Valiant: a uniformly random intermediate node
//!   anywhere in the network, giving paths up to `lgl-lgl` (six hops).
//! * **Obl-CRG** — the intermediate node is restricted to groups directly
//!   connected to the *source router*, saving the frequent first local
//!   hop: paths are `g l - l g l`.

use crate::common::{current_target, make_decision, minimal_out, normalize_route_state, VcPlan};
use df_engine::{
    Decision, EngineConfig, PacketHeader, Phase, RouteInfo, RouterState, RoutingPolicy,
};
use df_topology::{NodeId, Port, PortKind, PortLayout, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Intermediate-selection flavour for oblivious Valiant routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObliviousFlavor {
    /// Random intermediate node anywhere (Valiant / RRG).
    Rrg,
    /// Intermediate node in a group directly connected to the source
    /// router (CRG).
    Crg,
}

/// Oblivious Valiant routing.
pub struct Oblivious {
    topo: Topology,
    plan: VcPlan,
    flavor: ObliviousFlavor,
    rng: SmallRng,
}

impl Oblivious {
    /// Build for `topo` under `cfg`, with deterministic `seed`.
    pub fn new(topo: Topology, cfg: &EngineConfig, flavor: ObliviousFlavor, seed: u64) -> Self {
        Self { plan: VcPlan::from_config(cfg), topo, flavor, rng: SmallRng::seed_from_u64(seed) }
    }

    /// Pick the Valiant intermediate node for a packet injected at `src`.
    fn pick_intermediate(&mut self, src: NodeId) -> NodeId {
        let params = *self.topo.params();
        match self.flavor {
            ObliviousFlavor::Rrg => {
                // Redraw while the intermediate falls in the source group:
                // a same-group intermediate would reuse local VC stage 0
                // after the turnaround, which the deadlock-freedom argument
                // of `vc_for` forbids (and it is a useless detour anyway).
                let sg = src.group(&params);
                loop {
                    let n = NodeId(self.rng.gen_range(0..params.nodes()));
                    if n.group(&params) != sg {
                        break n;
                    }
                }
            }
            ObliviousFlavor::Crg => {
                let src_router = src.router(&params);
                let j = self.rng.gen_range(0..params.h);
                let group = self.topo.global_port_target_group(src_router, j);
                let per_group = params.a * params.p;
                NodeId(group.0 * per_group + self.rng.gen_range(0..per_group))
            }
        }
    }
}

impl RoutingPolicy for Oblivious {
    fn route(
        &mut self,
        router: &RouterState,
        in_port: Port,
        hdr: PacketHeader,
        info: RouteInfo,
    ) -> Decision {
        let params = *self.topo.params();
        let mut info = normalize_route_state(&self.topo, router.id(), info);
        // One-time Valiant decision at injection. Intra-group traffic is
        // sent minimally: its minimal path shares no global link.
        if !info.source_decided {
            debug_assert_eq!(params.port_kind(in_port), PortKind::Injection);
            info.source_decided = true;
            if hdr.dst.group(&params) != hdr.src.group(&params) {
                let inter = self.pick_intermediate(hdr.src);
                if inter.router(&params) != router.id() {
                    info.intermediate = Some(inter);
                    info.phase = Phase::ToIntermediate;
                }
            }
        }
        let target = current_target(hdr.dst, &info);
        let out = minimal_out(&self.topo, router.id(), target);
        make_decision(&self.topo, out, info, &self.plan)
    }

    fn name(&self) -> &'static str {
        match self.flavor {
            ObliviousFlavor::Rrg => "Obl-RRG",
            ObliviousFlavor::Crg => "Obl-CRG",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_engine::{ArbiterPolicy, DeliveredRecord, Network};
    use df_topology::{Arrangement, DragonflyParams};

    fn run(flavor: ObliviousFlavor) -> Vec<DeliveredRecord> {
        let topo = Topology::new(DragonflyParams::figure1(), Arrangement::Palmtree);
        let cfg = EngineConfig::paper(ArbiterPolicy::RoundRobin, 4);
        let policy = Oblivious::new(topo.clone(), &cfg, flavor, 7);
        let recs = std::cell::RefCell::new(Vec::new());
        {
            let sink = |r: &DeliveredRecord| recs.borrow_mut().push(*r);
            let mut net = Network::new(topo, cfg, policy, sink);
            let nodes = net.topology().params().nodes();
            for n in 0..nodes {
                net.offer(NodeId(n), NodeId((n + 8) % nodes)); // ADV+1-ish
            }
            assert!(net.drain(60_000), "oblivious network must drain");
        }
        recs.into_inner()
    }

    #[test]
    fn rrg_delivers_everything() {
        let recs = run(ObliviousFlavor::Rrg);
        assert_eq!(recs.len(), 72);
    }

    #[test]
    fn crg_delivers_everything() {
        let recs = run(ObliviousFlavor::Crg);
        assert_eq!(recs.len(), 72);
    }

    #[test]
    fn rrg_paths_bounded_by_valiant_shape() {
        for r in run(ObliviousFlavor::Rrg) {
            assert!(r.local_hops <= 4, "lgl-lgl allows at most 4 local hops: {r:?}");
            assert!(r.global_hops <= 2, "lgl-lgl allows at most 2 global hops: {r:?}");
        }
    }

    #[test]
    fn crg_saves_first_local_hop() {
        // CRG paths are g l - l g l: at most 3 local hops.
        for r in run(ObliviousFlavor::Crg) {
            assert!(r.local_hops <= 3, "CRG path shape violated: {r:?}");
            assert!(r.global_hops <= 2);
        }
    }

    #[test]
    fn misrouting_latency_present_for_cross_group() {
        // Valiant over cross-group traffic takes non-minimal paths for
        // nearly every packet (the intermediate rarely sits on the
        // minimal path).
        let recs = run(ObliviousFlavor::Rrg);
        let misrouted = recs.iter().filter(|r| r.misroute_latency() > 0).count();
        assert!(misrouted * 10 > recs.len() * 7, "only {misrouted} misrouted");
    }

    #[test]
    fn intra_group_traffic_stays_minimal() {
        let topo = Topology::new(DragonflyParams::figure1(), Arrangement::Palmtree);
        let cfg = EngineConfig::paper(ArbiterPolicy::RoundRobin, 4);
        let policy = Oblivious::new(topo.clone(), &cfg, ObliviousFlavor::Rrg, 3);
        let recs = std::cell::RefCell::new(Vec::new());
        {
            let sink = |r: &DeliveredRecord| recs.borrow_mut().push(*r);
            let mut net = Network::new(topo, cfg, policy, sink);
            net.offer(NodeId(0), NodeId(6)); // same group (p=2, a=4)
            assert!(net.drain(5_000));
        }
        let r = recs.into_inner()[0];
        assert_eq!(r.misroute_latency(), 0);
        assert_eq!(r.global_hops, 0);
    }
}
