//! Serializable mechanism specifications — the seven mechanism × policy
//! combinations evaluated in the paper, plus constructors.

use crate::in_transit::{GlobalMisrouting, InTransit};
use crate::min::MinRouting;
use crate::oblivious::{Oblivious, ObliviousFlavor};
use crate::piggyback::PiggyBack;
use df_engine::{EngineConfig, RoutingPolicy};
use df_topology::Topology;
use serde::{Deserialize, Serialize};

/// The routing mechanisms of the paper's evaluation (Figures 2/4-6,
/// Tables II/III). `Min` doubles as the `MIN/Obl-RRG` reference under UN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum MechanismSpec {
    /// Minimal routing.
    Min,
    /// Oblivious Valiant, random intermediate anywhere.
    ObliviousRrg,
    /// Oblivious Valiant, intermediate behind the source router.
    ObliviousCrg,
    /// PiggyBack source-adaptive, RRG nonminimal paths.
    SourceRrg,
    /// PiggyBack source-adaptive, CRG nonminimal paths.
    SourceCrg,
    /// In-transit adaptive, RRG global misrouting.
    InTransitRrg,
    /// In-transit adaptive, CRG global misrouting.
    InTransitCrg,
    /// In-transit adaptive, Mixed-mode global misrouting.
    InTransitMm,
    /// In-transit adaptive, CRG global misrouting with the deterministic
    /// least-recently-granted escape tie-break instead of random
    /// candidate sampling (not part of the paper's set).
    InTransitLru,
}

impl MechanismSpec {
    /// All seven mechanisms of the paper's figures, in plot order.
    pub const PAPER_SET: [MechanismSpec; 7] = [
        MechanismSpec::ObliviousRrg,
        MechanismSpec::ObliviousCrg,
        MechanismSpec::SourceRrg,
        MechanismSpec::SourceCrg,
        MechanismSpec::InTransitRrg,
        MechanismSpec::InTransitCrg,
        MechanismSpec::InTransitMm,
    ];

    /// Local VCs the mechanism's worst-case path shape needs (Table I:
    /// 4 for oblivious and source-adaptive Valiant `lgl-lgl` paths, 3
    /// otherwise).
    pub fn required_local_vcs(&self) -> u8 {
        match self {
            MechanismSpec::Min => 3,
            MechanismSpec::ObliviousRrg
            | MechanismSpec::ObliviousCrg
            | MechanismSpec::SourceRrg
            | MechanismSpec::SourceCrg => 4,
            MechanismSpec::InTransitRrg
            | MechanismSpec::InTransitCrg
            | MechanismSpec::InTransitMm
            | MechanismSpec::InTransitLru => 3,
        }
    }

    /// Instantiate the policy for `topo` under `cfg` with a deterministic
    /// seed.
    ///
    /// # Panics
    /// Panics if `cfg.vcs_local` is below
    /// [`MechanismSpec::required_local_vcs`].
    pub fn build(
        &self,
        topo: Topology,
        cfg: &EngineConfig,
        seed: u64,
    ) -> Box<dyn RoutingPolicy + Send> {
        assert!(
            cfg.vcs_local >= self.required_local_vcs(),
            "{} needs {} local VCs, config provides {}",
            self.label(),
            self.required_local_vcs(),
            cfg.vcs_local
        );
        match self {
            MechanismSpec::Min => Box::new(MinRouting::new(topo, cfg)),
            MechanismSpec::ObliviousRrg => {
                Box::new(Oblivious::new(topo, cfg, ObliviousFlavor::Rrg, seed))
            }
            MechanismSpec::ObliviousCrg => {
                Box::new(Oblivious::new(topo, cfg, ObliviousFlavor::Crg, seed))
            }
            MechanismSpec::SourceRrg => {
                Box::new(PiggyBack::new(topo, cfg, ObliviousFlavor::Rrg, seed))
            }
            MechanismSpec::SourceCrg => {
                Box::new(PiggyBack::new(topo, cfg, ObliviousFlavor::Crg, seed))
            }
            MechanismSpec::InTransitRrg => {
                Box::new(InTransit::new(topo, cfg, GlobalMisrouting::Rrg, seed))
            }
            MechanismSpec::InTransitCrg => {
                Box::new(InTransit::new(topo, cfg, GlobalMisrouting::Crg, seed))
            }
            MechanismSpec::InTransitMm => {
                Box::new(InTransit::new(topo, cfg, GlobalMisrouting::Mm, seed))
            }
            MechanismSpec::InTransitLru => Box::new(
                InTransit::new(topo, cfg, GlobalMisrouting::Crg, seed).with_lru_escape(),
            ),
        }
    }

    /// The paper's label for this mechanism.
    pub fn label(&self) -> &'static str {
        match self {
            MechanismSpec::Min => "MIN",
            MechanismSpec::ObliviousRrg => "Obl-RRG",
            MechanismSpec::ObliviousCrg => "Obl-CRG",
            MechanismSpec::SourceRrg => "Src-RRG",
            MechanismSpec::SourceCrg => "Src-CRG",
            MechanismSpec::InTransitRrg => "In-Trns-RRG",
            MechanismSpec::InTransitCrg => "In-Trns-CRG",
            MechanismSpec::InTransitMm => "In-Trns-MM",
            MechanismSpec::InTransitLru => "In-Trns-LRU",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_engine::{ArbiterPolicy, Network, NullSink};
    use df_topology::{Arrangement, DragonflyParams, NodeId};

    #[test]
    fn every_mechanism_builds_and_delivers() {
        let params = DragonflyParams::figure1();
        for spec in MechanismSpec::PAPER_SET
            .iter()
            .chain([&MechanismSpec::Min, &MechanismSpec::InTransitLru])
        {
            let topo = Topology::new(params, Arrangement::Palmtree);
            let cfg =
                EngineConfig::paper(ArbiterPolicy::RoundRobin, spec.required_local_vcs());
            let policy = spec.build(topo.clone(), &cfg, 3);
            assert_eq!(policy.name(), spec.label());
            let mut net = Network::new(topo, cfg, policy, NullSink);
            for n in 0..params.nodes() {
                net.offer(NodeId(n), NodeId((n + params.a * params.p) % params.nodes()));
            }
            assert!(net.drain(100_000), "{} must drain", spec.label());
            assert_eq!(net.counters().delivered_packets as u32, params.nodes());
        }
    }

    #[test]
    fn vc_requirements_enforced() {
        let params = DragonflyParams::figure1();
        let topo = Topology::new(params, Arrangement::Palmtree);
        let cfg = EngineConfig::paper(ArbiterPolicy::RoundRobin, 3);
        let result = std::panic::catch_unwind(|| {
            MechanismSpec::ObliviousRrg.build(topo, &cfg, 0)
        });
        assert!(result.is_err(), "oblivious with 3 local VCs must be rejected");
    }

    #[test]
    fn serde_roundtrip() {
        for spec in MechanismSpec::PAPER_SET {
            let json = serde_json::to_string(&spec).unwrap();
            let back: MechanismSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back);
        }
    }
}
