//! The sweep runner: expand a [`SweepSpec`]'s axes into cells, run every
//! cell × seed in parallel, and emit a *long-format* result table (one
//! row per cell × seed × scope) suitable for replotting the paper's
//! figures with any plotting tool.
//!
//! Determinism: cells are expanded in a fixed order, each cell runs an
//! independent `run_scenario_once` derived only from `(cell, seed)`, and
//! the work-claiming `par_iter` preserves result order — so the same
//! sweep under the same seeds serializes to a bit-identical table no
//! matter how cells were interleaved across threads.

use crate::ctl::RunCtl;
use crate::error::ScenarioError;
use crate::scenario::run_scenario_once_ctl;
use crate::sim::RunResult;
use df_workload::{SweepCell, SweepSpec};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One row of the long-format sweep table: the cell's axis coordinates,
/// the seed, and one measurement scope — `"network"` for the whole
/// machine or a job's name for its per-job slice.
///
/// Rows round-trip through JSON (`Deserialize`) so a service layer can
/// checkpoint them per `(cell, seed)` unit and replay verified rows
/// after a crash without rerunning the simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// Cell index in expansion order.
    pub cell: u32,
    /// Mechanism label (e.g. `In-Trns-MM`).
    pub mechanism: String,
    /// Load-axis coordinate, or the scenario's node-weighted configured
    /// load when the sweep has no load axis.
    pub load: f64,
    /// Placement-variant label (`base` without a placement axis).
    pub placement: String,
    /// Pattern-axis label (`base` without a pattern axis).
    pub pattern: String,
    /// Master seed of the run behind this row.
    pub seed: u64,
    /// `"network"` or the job name.
    pub scope: String,
    /// Nodes in the scope (whole machine or the job's allocation).
    pub nodes: u32,
    /// Offered load in phits/(node·cycle) over the scope's nodes.
    pub offered: f64,
    /// Accepted throughput in phits/(node·cycle) over the scope's nodes.
    pub throughput: f64,
    /// Mean end-to-end packet latency in cycles.
    pub avg_latency: f64,
    /// Median latency (histogram bucket upper bound; `None` for network
    /// rows and for jobs that delivered nothing).
    pub p50_latency: Option<u64>,
    /// 95th-percentile latency (same conventions).
    pub p95_latency: Option<u64>,
    /// 99th-percentile latency (same conventions).
    pub p99_latency: Option<u64>,
    /// Cycles of the window the scope was live (churn jobs may be live
    /// for only part of it).
    pub active_cycles: u64,
    /// Packets delivered for the scope during the window.
    pub delivered_packets: u64,
    /// Minimum per-unit injection count (per router for network rows,
    /// per node for job rows — the paper's Min inj).
    pub min_injections: f64,
    /// Injection max/min ratio over the same units; `None` when the
    /// minimum is zero (the ratio is unbounded). An `Option` rather
    /// than `f64::INFINITY` so a row survives a JSON round trip
    /// byte-identically — JSON has no non-finite literals, and the
    /// checkpoint/recovery path re-verifies rows by re-serializing
    /// them.
    pub max_min_ratio: Option<f64>,
    /// Injection coefficient of variation (Tables II/III).
    pub cov: f64,
    /// Jain fairness index over the same units.
    pub jain: f64,
}

/// A complete sweep result: every cell × seed × scope row, long format.
#[derive(Debug, Clone, Serialize)]
pub struct SweepTable {
    /// Sweep name from the spec.
    pub sweep: String,
    /// Seeds each cell was run under.
    pub seeds: Vec<u64>,
    /// Number of cells in the grid.
    pub cells: u32,
    /// The rows, ordered by (cell, seed, scope) with the network scope
    /// first and jobs in spec order.
    pub rows: Vec<SweepRow>,
}

impl SweepTable {
    /// The table as CSV (header + one line per row). Optional percentile
    /// cells are empty when absent; floats use Rust's shortest-roundtrip
    /// formatting, so the text is bit-stable for identical results.
    /// Label fields come from user-authored JSON (job names, variant
    /// labels), so they are RFC-4180-quoted when they contain a comma,
    /// quote, or newline.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "cell,mechanism,load,placement,pattern,seed,scope,nodes,offered,throughput,\
             avg_latency,p50_latency,p95_latency,p99_latency,active_cycles,\
             delivered_packets,min_injections,max_min_ratio,cov,jain\n",
        );
        let opt = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_default();
        let esc = |s: &str| {
            if s.contains([',', '"', '\n', '\r']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                r.cell,
                esc(&r.mechanism),
                r.load,
                esc(&r.placement),
                esc(&r.pattern),
                r.seed,
                esc(&r.scope),
                r.nodes,
                r.offered,
                r.throughput,
                r.avg_latency,
                opt(r.p50_latency),
                opt(r.p95_latency),
                opt(r.p99_latency),
                r.active_cycles,
                r.delivered_packets,
                r.min_injections,
                // An unbounded ratio keeps its historical CSV spelling.
                r.max_min_ratio.map(|x| x.to_string()).unwrap_or_else(|| "inf".into()),
                r.cov,
                r.jain,
            ));
        }
        out
    }
}

/// Flatten one cell × seed run into its long-format rows.
fn rows_of(cell: &SweepCell, seed: u64, run: &RunResult) -> Vec<SweepRow> {
    let finite = |x: f64| x.is_finite().then_some(x);
    let placement = cell.placement.clone().unwrap_or_else(|| "base".into());
    let pattern = cell.pattern.clone().unwrap_or_else(|| "base".into());
    let load = cell.load.unwrap_or(run.load);
    let mut rows = Vec::with_capacity(1 + run.per_job.len());
    rows.push(SweepRow {
        cell: cell.index,
        mechanism: run.mechanism.clone(),
        load,
        placement: placement.clone(),
        pattern: pattern.clone(),
        seed,
        scope: "network".into(),
        nodes: cell.scenario.params.nodes(),
        offered: run.offered,
        throughput: run.throughput,
        avg_latency: run.avg_latency,
        p50_latency: None,
        p95_latency: None,
        p99_latency: run.p99_latency,
        active_cycles: cell.scenario.measure_cycles,
        delivered_packets: run.delivered_packets,
        min_injections: run.fairness.min,
        max_min_ratio: finite(run.fairness.max_min_ratio),
        cov: run.fairness.cov,
        jain: run.fairness.jain,
    });
    for job in &run.per_job {
        rows.push(SweepRow {
            cell: cell.index,
            mechanism: run.mechanism.clone(),
            load,
            placement: placement.clone(),
            pattern: pattern.clone(),
            seed,
            scope: job.job.clone(),
            nodes: job.nodes,
            offered: job.offered,
            throughput: job.throughput,
            avg_latency: job.avg_latency,
            p50_latency: job.p50_latency,
            p95_latency: job.p95_latency,
            p99_latency: job.p99_latency,
            active_cycles: job.active_cycles,
            delivered_packets: job.delivered_packets,
            min_injections: job.fairness.min,
            max_min_ratio: finite(job.fairness.max_min_ratio),
            cov: job.fairness.cov,
            jain: job.fairness.jain,
        });
    }
    rows
}

/// Expand `spec` and run every cell under every seed (in parallel over
/// the whole cell × seed grid). Row order — and therefore the serialized
/// table — depends only on the spec and the seed list.
pub fn run_sweep(spec: &SweepSpec, seeds: &[u64]) -> Result<SweepTable, ScenarioError> {
    run_sweep_ctl(spec, seeds, &RunCtl::NONE)
}

/// [`run_sweep`] under external run control: every parallel cell × seed
/// unit observes the same [`RunCtl`] at cycle granularity, so one
/// cancellation or deadline stops the whole grid. Spec errors are
/// prefixed with the failing cell's coordinate; interrupts propagate
/// unchanged so a service layer can map them to structured events.
pub fn run_sweep_ctl(
    spec: &SweepSpec,
    seeds: &[u64],
    ctl: &RunCtl<'_>,
) -> Result<SweepTable, ScenarioError> {
    run_sweep_hooked(spec, seeds, ctl, &SweepHooks::NONE)
}

/// A [`SweepHooks::precomputed`] probe: given a `(cell, seed)` unit,
/// return its already-computed rows (skipping the simulation) or
/// `None` to compute it fresh.
pub type PrecomputedProbe<'a> = &'a (dyn Fn(u32, u64) -> Option<Vec<SweepRow>> + Sync);

/// A [`SweepHooks::on_rows`] observer: called with each freshly
/// computed `(cell, seed)` unit's rows as the unit completes.
pub type RowsObserver<'a> = &'a (dyn Fn(u32, u64, &[SweepRow]) + Sync);

/// Observation hooks threaded through [`run_sweep_hooked`]. Both hooks
/// see `(cell, seed)` units — one `run_scenario_once` per unit — keyed
/// by the cell's expansion-order index.
#[derive(Clone, Copy, Default)]
pub struct SweepHooks<'a> {
    /// Probe for rows of a unit computed by an earlier (interrupted)
    /// run. Probed once per unit, sequentially, before any simulation
    /// starts; returning `Some(rows)` skips the unit entirely and
    /// splices the given rows into the unit's slot of the final table.
    /// The caller is responsible for only returning rows it has
    /// verified (e.g. digest-checked checkpoint lines).
    pub precomputed: Option<PrecomputedProbe<'a>>,
    /// Called from the computing worker as each pending unit completes,
    /// with the unit's finished rows — before the whole table exists.
    /// Units recovered via `precomputed` do **not** fire this hook.
    /// Must be cheap and `Sync`: parallel workers call it inline.
    pub on_rows: Option<RowsObserver<'a>>,
}

impl SweepHooks<'_> {
    /// No hooks: every unit simulates, nothing is observed.
    pub const NONE: SweepHooks<'static> = SweepHooks { precomputed: None, on_rows: None };
}

/// [`run_sweep_ctl`] with per-unit observation hooks: previously
/// computed units are recovered through `hooks.precomputed` (skipping
/// their simulation), and each freshly computed unit's rows are handed
/// to `hooks.on_rows` as it completes. Row order — and therefore the
/// serialized table — is the same deterministic cell-major order as
/// [`run_sweep`], no matter which units were recovered: recovered and
/// computed rows are merged by unit slot, so a resumed sweep
/// serializes bit-identically to an uninterrupted one.
pub fn run_sweep_hooked(
    spec: &SweepSpec,
    seeds: &[u64],
    ctl: &RunCtl<'_>,
    hooks: &SweepHooks<'_>,
) -> Result<SweepTable, ScenarioError> {
    if seeds.is_empty() {
        return Err(ScenarioError::spec("need at least one seed"));
    }
    let cells = spec.expand()?;
    let units: Vec<(usize, u64)> = (0..cells.len())
        .flat_map(|c| seeds.iter().map(move |&s| (c, s)))
        .collect();
    // Recovered units fill their slots up front and never simulate.
    let mut slots: Vec<Option<Vec<SweepRow>>> = (0..units.len()).map(|_| None).collect();
    if let Some(probe) = hooks.precomputed {
        for (slot, &(c, seed)) in units.iter().enumerate() {
            slots[slot] = probe(c as u32, seed);
        }
    }
    let pending: Vec<(usize, usize, u64)> = units
        .iter()
        .enumerate()
        .filter(|(slot, _)| slots[*slot].is_none())
        .map(|(slot, &(c, seed))| (slot, c, seed))
        .collect();
    let on_rows = hooks.on_rows;
    let runs: Vec<(usize, Result<Vec<SweepRow>, ScenarioError>)> = pending
        .par_iter()
        .map(|&(slot, c, seed)| {
            let cell = &cells[c];
            let res = run_scenario_once_ctl(&cell.scenario, cell.mechanism, seed, ctl)
                .map(|run| rows_of(cell, seed, &run))
                .map_err(|e| e.context(&format!("cell {c} ({})", cell.mechanism.label())));
            if let (Ok(rows), Some(sink)) = (&res, on_rows) {
                sink(c as u32, seed, rows);
            }
            (slot, res)
        })
        .collect();
    for (slot, unit) in runs {
        slots[slot] = Some(unit?);
    }
    let mut rows = Vec::new();
    for slot in slots {
        rows.extend(slot.expect("every unit slot filled"));
    }
    Ok(SweepTable {
        sweep: spec.name.clone(),
        seeds: seeds.to_vec(),
        cells: cells.len() as u32,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_engine::ArbiterPolicy;
    use df_routing::MechanismSpec;
    use df_topology::{Arrangement, DragonflyParams};
    use df_traffic::PatternSpec;
    use df_workload::{InjectionSpec, JobSpec, PlacementSpec, ScenarioSpec};

    fn tiny_sweep() -> SweepSpec {
        SweepSpec {
            name: "tiny-grid".into(),
            base: ScenarioSpec {
                name: "base".into(),
                params: DragonflyParams::figure1(),
                arrangement: Arrangement::Palmtree,
                mechanisms: vec![MechanismSpec::InTransitMm],
                arbiter: ArbiterPolicy::TransitPriority,
                warmup_cycles: 300,
                measure_cycles: 600,
                telemetry: None,
                shards: None,
                jobs: vec![JobSpec {
                    name: "app".into(),
                    placement: PlacementSpec::ConsecutiveGroups {
                        first: 0,
                        count: 3,
                        slots: None,
                    },
                    pattern: PatternSpec::Uniform,
                    injection: InjectionSpec::Bernoulli,
                    load: 0.2,
                    start_cycle: None,
                    stop_cycle: None,
                }],
            },
            loads: Some(vec![0.15, 0.3]),
            load_jobs: None,
            placements: None,
            patterns: None,
            pattern_jobs: None,
            mechanisms: Some(vec![MechanismSpec::InTransitMm, MechanismSpec::Min]),
        }
    }

    #[test]
    fn long_format_rows_cover_every_cell_seed_and_scope() {
        let table = run_sweep(&tiny_sweep(), &[1, 2]).unwrap();
        assert_eq!(table.cells, 4);
        // 4 cells × 2 seeds × (network + 1 job).
        assert_eq!(table.rows.len(), 4 * 2 * 2);
        // Deterministic order: cell-major, seed, then scope.
        assert_eq!(table.rows[0].cell, 0);
        assert_eq!(table.rows[0].seed, 1);
        assert_eq!(table.rows[0].scope, "network");
        assert_eq!(table.rows[1].scope, "app");
        assert_eq!(table.rows[2].seed, 2);
        assert_eq!(table.rows[15].cell, 3);
        // Axis coordinates land in the rows.
        assert_eq!(table.rows[0].load, 0.15);
        assert_eq!(table.rows[15].load, 0.3);
        assert_eq!(table.rows[0].placement, "base");
        // The job actually ran.
        assert!(table.rows[1].throughput > 0.0);
    }

    #[test]
    fn same_seed_sweep_serializes_bit_identically() {
        let spec = tiny_sweep();
        let a = run_sweep(&spec, &[7]).unwrap();
        let b = run_sweep(&spec, &[7]).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        assert_eq!(a.to_csv(), b.to_csv());
    }

    #[test]
    fn csv_shape_matches_rows() {
        let table = run_sweep(&tiny_sweep(), &[3]).unwrap();
        let csv = table.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + table.rows.len());
        let header_cols = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), header_cols, "{line}");
        }
        assert!(lines[1].starts_with("0,In-Trns-MM,0.15,base,base,3,network,72,"));
    }

    #[test]
    fn hooked_run_streams_rows_and_recovery_is_bit_identical() {
        use std::collections::HashMap;
        use std::sync::Mutex;
        let spec = tiny_sweep();
        let seeds = [1u64, 2];

        // A hooked run streams every unit exactly once.
        let streamed: Mutex<HashMap<(u32, u64), Vec<SweepRow>>> = Mutex::new(HashMap::new());
        let on_rows = |cell: u32, seed: u64, rows: &[SweepRow]| {
            let prev = streamed.lock().unwrap().insert((cell, seed), rows.to_vec());
            assert!(prev.is_none(), "unit ({cell}, {seed}) streamed twice");
        };
        let hooks = SweepHooks { precomputed: None, on_rows: Some(&on_rows) };
        let full = run_sweep_hooked(&spec, &seeds, &RunCtl::NONE, &hooks).unwrap();
        let streamed = streamed.into_inner().unwrap();
        assert_eq!(streamed.len(), 4 * 2, "4 cells × 2 seeds");
        assert_eq!(
            serde_json::to_string(&full).unwrap(),
            serde_json::to_string(&run_sweep(&spec, &seeds).unwrap()).unwrap(),
            "hooks must not perturb the table"
        );

        // Recovering half the units from the streamed rows reproduces the
        // table bit-identically, simulating only the missing units.
        let recomputed = Mutex::new(0u32);
        let probe = |cell: u32, seed: u64| -> Option<Vec<SweepRow>> {
            cell.is_multiple_of(2).then(|| streamed[&(cell, seed)].clone())
        };
        let count = |_: u32, _: u64, _: &[SweepRow]| *recomputed.lock().unwrap() += 1;
        let hooks = SweepHooks { precomputed: Some(&probe), on_rows: Some(&count) };
        let resumed = run_sweep_hooked(&spec, &seeds, &RunCtl::NONE, &hooks).unwrap();
        assert_eq!(*recomputed.lock().unwrap(), 2 * 2, "only the odd cells recompute");
        assert_eq!(
            serde_json::to_string(&resumed).unwrap(),
            serde_json::to_string(&full).unwrap(),
            "recovered table must be byte-identical"
        );
    }

    #[test]
    fn sweep_rows_roundtrip_through_json() {
        let table = run_sweep(&tiny_sweep(), &[3]).unwrap();
        for row in &table.rows {
            let line = serde_json::to_string(row).unwrap();
            let back: SweepRow = serde_json::from_str(&line).unwrap();
            assert_eq!(&back, row);
        }
    }

    #[test]
    fn bad_cells_surface_their_index() {
        let mut spec = tiny_sweep();
        // An in-job hot index beyond the job's 24 nodes fails at run time
        // (virtual geometry is only known once the placement resolves).
        spec.base.jobs[0].pattern = PatternSpec::HotSpot { hot: 900, fraction: 0.5 };
        let err = run_sweep(&spec, &[1]).unwrap_err();
        assert!(err.to_string().contains("cell 0"), "{err}");
        assert!(!err.is_interrupt());
    }
}
