//! Structured errors for the scenario/sweep runners.
//!
//! The runners used to report every failure as a bare `String`; callers
//! (CLIs, and above all the `df-service` job server) need to distinguish
//! *bad input* from *interrupted work*: an invalid spec is the
//! submitter's fault and must never be retried, while a cancellation or
//! a missed deadline says nothing about the spec and maps to its own
//! structured job event.

use std::fmt;

/// Why a scenario or sweep run did not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The spec failed validation, or generation derived from it was
    /// impossible (out-of-range nodes, unresolvable placement, …). The
    /// message is human-readable and stable enough to print verbatim.
    InvalidSpec(String),
    /// A [`crate::CancelToken`] was triggered; the run stopped at the
    /// given driver cycle without producing any output.
    Cancelled {
        /// Driver cycle at which the cancellation was observed.
        at_cycle: u64,
    },
    /// The run crossed its [`crate::RunCtl::deadline`] at the given
    /// driver cycle and stopped without producing any output.
    DeadlineExceeded {
        /// Driver cycle at which the deadline check fired.
        at_cycle: u64,
    },
}

impl ScenarioError {
    /// Wrap a validation/generation message.
    pub fn spec(msg: impl Into<String>) -> Self {
        ScenarioError::InvalidSpec(msg.into())
    }

    /// Prefix spec errors with `ctx` (e.g. a sweep-cell coordinate).
    /// Interrupts ([`ScenarioError::Cancelled`] /
    /// [`ScenarioError::DeadlineExceeded`]) pass through unchanged so a
    /// service layer can still map them to their own events.
    pub fn context(self, ctx: &str) -> Self {
        match self {
            ScenarioError::InvalidSpec(msg) => {
                ScenarioError::InvalidSpec(format!("{ctx}: {msg}"))
            }
            other => other,
        }
    }

    /// True for cancellations and deadline misses — failures of the
    /// *run*, not of the spec.
    pub fn is_interrupt(&self) -> bool {
        matches!(
            self,
            ScenarioError::Cancelled { .. } | ScenarioError::DeadlineExceeded { .. }
        )
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::InvalidSpec(msg) => write!(f, "{msg}"),
            ScenarioError::Cancelled { at_cycle } => {
                write!(f, "cancelled at cycle {at_cycle}")
            }
            ScenarioError::DeadlineExceeded { at_cycle } => {
                write!(f, "deadline exceeded at cycle {at_cycle}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<String> for ScenarioError {
    fn from(msg: String) -> Self {
        ScenarioError::InvalidSpec(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_wraps_only_spec_errors() {
        let e = ScenarioError::spec("bad load").context("cell 3");
        assert_eq!(e.to_string(), "cell 3: bad load");
        let c = ScenarioError::Cancelled { at_cycle: 7 }.context("cell 3");
        assert_eq!(c, ScenarioError::Cancelled { at_cycle: 7 });
        assert!(c.is_interrupt());
        assert!(!e.is_interrupt());
    }

    #[test]
    fn string_conversion_is_invalid_spec() {
        let e: ScenarioError = String::from("nope").into();
        assert_eq!(e, ScenarioError::InvalidSpec("nope".into()));
        assert_eq!(
            ScenarioError::DeadlineExceeded { at_cycle: 10 }.to_string(),
            "deadline exceeded at cycle 10"
        );
    }
}
