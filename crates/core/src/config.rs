//! Top-level simulation configuration.

use df_engine::{ArbiterPolicy, EngineConfig, TelemetrySpec};
use df_routing::MechanismSpec;
use df_topology::{Arrangement, DragonflyParams};
use df_traffic::PatternSpec;
use serde::{Deserialize, Serialize};

/// Everything needed to run one simulation: topology, mechanism, arbiter,
/// traffic, load, and the measurement protocol (§IV-A).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Dragonfly sizing.
    pub params: DragonflyParams,
    /// Global-link arrangement (the paper uses palmtree).
    pub arrangement: Arrangement,
    /// Routing mechanism under test.
    pub mechanism: MechanismSpec,
    /// Output-arbiter policy (transit priority on/off, or age-based).
    pub arbiter: ArbiterPolicy,
    /// Traffic pattern.
    pub pattern: PatternSpec,
    /// Offered load in phits/(node·cycle).
    pub load: f64,
    /// Warm-up cycles before statistics are tracked.
    pub warmup_cycles: u64,
    /// Measurement window in cycles (the paper uses 15,000).
    pub measure_cycles: u64,
    /// Master seed; traffic, injection, and routing RNGs are derived
    /// deterministically from it.
    pub seed: u64,
    /// Opt-in windowed telemetry (see [`TelemetrySpec`]). `None` — the
    /// default, and what an omitted JSON field deserializes to — keeps
    /// the run instrumentation-free.
    pub telemetry: Option<TelemetrySpec>,
    /// Group-shard count for parallel execution (clamped to the group
    /// count; `None` or an omitted JSON field defers to the
    /// `DF_TEST_SHARDS` environment variable, then to 1 — the serial
    /// engine). Same-seed output is bit-identical for every value, so
    /// this is a purely operational knob and never enters result-cache
    /// keys.
    pub shards: Option<u32>,
}

impl SimConfig {
    /// The paper's setup: full-scale network (h=6, 5,256 nodes), palmtree,
    /// 15,000-cycle measurement window after a 10,000-cycle warm-up.
    pub fn paper(
        mechanism: MechanismSpec,
        arbiter: ArbiterPolicy,
        pattern: PatternSpec,
        load: f64,
    ) -> Self {
        Self {
            params: DragonflyParams::paper(),
            arrangement: Arrangement::Palmtree,
            mechanism,
            arbiter,
            pattern,
            load,
            warmup_cycles: 10_000,
            measure_cycles: 15_000,
            seed: 1,
            telemetry: None,
            shards: None,
        }
    }

    /// Reduced-scale setup (h=3, 342 nodes) with the same protocol —
    /// the default for examples and CI-speed experiment runs.
    pub fn small(
        mechanism: MechanismSpec,
        arbiter: ArbiterPolicy,
        pattern: PatternSpec,
        load: f64,
    ) -> Self {
        Self {
            params: DragonflyParams::small(),
            arrangement: Arrangement::Palmtree,
            mechanism,
            arbiter,
            pattern,
            load,
            warmup_cycles: 8_000,
            measure_cycles: 15_000,
            seed: 1,
            telemetry: None,
            shards: None,
        }
    }

    /// The engine configuration implied by mechanism and arbiter: Table I
    /// parameters with the mechanism's required local-VC count (and this
    /// config's telemetry settings, if any).
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            telemetry: self.telemetry,
            ..EngineConfig::paper(self.arbiter, self.mechanism.required_local_vcs())
        }
    }

    /// The effective shard count before topology clamping: the explicit
    /// `shards` field if set, else the `DF_TEST_SHARDS` environment
    /// variable (how CI re-runs the whole suite sharded), else 1.
    /// Always at least 1. The simulator additionally clamps to the
    /// topology's group count.
    pub fn resolved_shards(&self) -> u32 {
        match self.shards {
            Some(n) => n.max(1),
            None => std::env::var("DF_TEST_SHARDS")
                .ok()
                .and_then(|v| v.parse::<u32>().ok())
                .map_or(1, |n| n.max(1)),
        }
    }

    /// With a different master seed (multi-run averaging).
    pub fn with_seed(&self, seed: u64) -> Self {
        Self { seed, ..self.clone() }
    }

    /// With a different offered load (sweeps).
    pub fn with_load(&self, load: f64) -> Self {
        Self { load, ..self.clone() }
    }

    /// Validate ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=self.engine_config().packet_size as f64).contains(&self.load) {
            return Err(format!("load {} out of range", self.load));
        }
        if self.measure_cycles == 0 {
            return Err("measurement window must be nonzero".into());
        }
        self.engine_config().validate()
    }
}

// Sub-seed derivation now lives in `df-traffic` so the traffic and
// workload crates can share the same per-node stream discipline.
pub(crate) use df_traffic::derive_seed;

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig::small(
            MechanismSpec::InTransitMm,
            ArbiterPolicy::TransitPriority,
            PatternSpec::AdvConsecutive { spread: None },
            0.4,
        )
    }

    #[test]
    fn paper_config_matches_table1() {
        let c = SimConfig::paper(
            MechanismSpec::ObliviousRrg,
            ArbiterPolicy::TransitPriority,
            PatternSpec::Uniform,
            0.5,
        );
        assert_eq!(c.params.nodes(), 5256);
        assert_eq!(c.measure_cycles, 15_000);
        let ec = c.engine_config();
        assert_eq!(ec.vcs_local, 4); // oblivious Valiant needs 4
        assert_eq!(ec.packet_size, 8);
        assert_eq!(ec.global_link_latency, 100);
    }

    #[test]
    fn in_transit_uses_three_local_vcs() {
        assert_eq!(cfg().engine_config().vcs_local, 3);
    }

    #[test]
    fn validation_rejects_absurd_load() {
        let mut c = cfg();
        c.load = 9.5;
        assert!(c.validate().is_err());
        c.load = 0.4;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn seed_derivation_distinct_streams() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(1, 0));
    }

    #[test]
    fn resolved_shards_clamps_and_defaults() {
        let mut c = cfg();
        assert_eq!(c.shards, None);
        c.shards = Some(0);
        assert_eq!(c.resolved_shards(), 1, "explicit zero clamps to serial");
        c.shards = Some(5);
        assert_eq!(c.resolved_shards(), 5);
        // `None` falls through to DF_TEST_SHARDS (exercised by ci.sh's
        // sharded tier-1 leg), then to 1; either way it is at least 1.
        c.shards = None;
        assert!(c.resolved_shards() >= 1);
    }

    #[test]
    fn serde_roundtrip() {
        let c = cfg();
        let json = serde_json::to_string(&c).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.load, c.load);
        assert_eq!(back.mechanism, c.mechanism);
    }
}
