//! The scenario runner: drive the simulator's per-node injection path
//! from a [`ScenarioSpec`]'s jobs and report per-job and per-router
//! results under every requested mechanism.

use crate::config::{derive_seed, SimConfig};
use crate::ctl::RunCtl;
use crate::error::ScenarioError;
use crate::sim::{JobResult, JobSchedule, RunResult, Simulator};
use crate::timeline::TimelineSink;
use df_engine::TelemetrySpec;
use df_routing::MechanismSpec;
use df_traffic::{PatternSpec, Traffic};
use df_workload::{
    Arrival, InjectionProcess, InjectionSpec, JobTraffic, JobTrafficAdapter, ScenarioSpec,
    TraceRecorder,
};
use rayon::prelude::*;
use serde::Serialize;

/// Seed-averaged per-job summary (fairness metrics averaged per seed,
/// like the paper's three-simulation averages).
#[derive(Debug, Clone, Serialize)]
pub struct JobSummary {
    /// Job name.
    pub job: String,
    /// Nodes the job occupies.
    pub nodes: u32,
    /// Mean offered load in phits/(job node·cycle).
    pub offered: f64,
    /// Mean accepted throughput in phits/(job node·cycle).
    pub throughput: f64,
    /// Mean packet latency in cycles.
    pub avg_latency: f64,
    /// Mean per-seed median latency (cycles; `None` if no seed delivered).
    pub p50_latency: Option<f64>,
    /// Mean per-seed 95th-percentile latency (cycles).
    pub p95_latency: Option<f64>,
    /// Mean per-seed 99th-percentile latency (cycles).
    pub p99_latency: Option<f64>,
    /// Mean of the per-seed minimum per-node injection counts.
    pub min_injections: f64,
    /// Mean per-node injection max/min ratio.
    pub max_min_ratio: f64,
    /// Mean per-node injection coefficient of variation.
    pub cov: f64,
    /// Mean Jain index over per-node injections.
    pub jain: f64,
}

impl JobSummary {
    fn average(per_seed: &[&JobResult]) -> Self {
        let n = per_seed.len() as f64;
        let mean = |f: &dyn Fn(&JobResult) -> f64| per_seed.iter().map(|r| f(r)).sum::<f64>() / n;
        // Mean over the seeds that delivered anything (percentiles are
        // `None` for an idle job).
        let mean_opt = |f: &dyn Fn(&JobResult) -> Option<u64>| {
            let vals: Vec<u64> = per_seed.iter().filter_map(|r| f(r)).collect();
            if vals.is_empty() {
                None
            } else {
                Some(vals.iter().sum::<u64>() as f64 / vals.len() as f64)
            }
        };
        Self {
            job: per_seed[0].job.clone(),
            nodes: per_seed[0].nodes,
            offered: mean(&|r| r.offered),
            throughput: mean(&|r| r.throughput),
            avg_latency: mean(&|r| r.avg_latency),
            p50_latency: mean_opt(&|r| r.p50_latency),
            p95_latency: mean_opt(&|r| r.p95_latency),
            p99_latency: mean_opt(&|r| r.p99_latency),
            min_injections: mean(&|r| r.fairness.min),
            max_min_ratio: mean(&|r| r.fairness.max_min_ratio),
            cov: mean(&|r| r.fairness.cov),
            jain: mean(&|r| r.fairness.jain),
        }
    }
}

/// One mechanism's view of the scenario: per-seed runs plus seed-averaged
/// per-job and per-router summaries.
#[derive(Debug, Clone, Serialize)]
pub struct MechanismScenarioResult {
    /// Mechanism label.
    pub mechanism: String,
    /// Mean network-wide accepted throughput in phits/(node·cycle).
    pub throughput: f64,
    /// Mean network-wide packet latency in cycles.
    pub avg_latency: f64,
    /// Mean per-router injection CoV (Table II/III metric).
    pub router_cov: f64,
    /// Seed-averaged per-job summaries.
    pub per_job: Vec<JobSummary>,
    /// The raw per-seed runs (each with its own `per_job` breakdown).
    pub runs: Vec<RunResult>,
}

/// Full scenario outcome across mechanisms.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioResult {
    /// Scenario name.
    pub scenario: String,
    /// Seeds simulated per mechanism.
    pub seeds: Vec<u64>,
    /// One entry per requested mechanism, in spec order.
    pub mechanisms: Vec<MechanismScenarioResult>,
}

/// Compact mechanism summary (no raw runs) for stdout JSON.
#[derive(Debug, Clone, Serialize)]
pub struct MechanismSummary {
    /// Mechanism label.
    pub mechanism: String,
    /// Mean network-wide accepted throughput.
    pub throughput: f64,
    /// Mean network-wide latency.
    pub avg_latency: f64,
    /// Mean per-router injection CoV.
    pub router_cov: f64,
    /// Seed-averaged per-job summaries.
    pub per_job: Vec<JobSummary>,
}

/// Compact scenario summary (no raw runs).
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioSummary {
    /// Scenario name.
    pub scenario: String,
    /// Seeds simulated per mechanism.
    pub seeds: Vec<u64>,
    /// Per-mechanism summaries.
    pub mechanisms: Vec<MechanismSummary>,
}

impl ScenarioResult {
    /// Strip the raw runs, keeping the seed-averaged summaries.
    pub fn summary(&self) -> ScenarioSummary {
        ScenarioSummary {
            scenario: self.scenario.clone(),
            seeds: self.seeds.clone(),
            mechanisms: self
                .mechanisms
                .iter()
                .map(|m| MechanismSummary {
                    mechanism: m.mechanism.clone(),
                    throughput: m.throughput,
                    avg_latency: m.avg_latency,
                    router_cov: m.router_cov,
                    per_job: m.per_job.clone(),
                })
                .collect(),
        }
    }
}

/// Per-job live state inside the driver loop.
struct JobDriver {
    process: Box<dyn InjectionProcess>,
    /// `None` for trace jobs (destinations come with the events).
    traffic: Option<JobTrafficAdapter>,
}

/// Run one scenario under one mechanism and one seed, optionally
/// recording every generation event into `recorders` (one recorder per
/// job, so each job's stream replays independently through
/// `InjectionSpec::Trace`).
///
/// # Panics
/// Panics if `recorders` is provided with a length other than the
/// scenario's job count.
pub fn run_scenario_once(
    spec: &ScenarioSpec,
    mechanism: MechanismSpec,
    seed: u64,
    recorders: Option<&mut [TraceRecorder]>,
) -> Result<RunResult, ScenarioError> {
    drive_scenario(spec, mechanism, seed, recorders, spec.telemetry, None, &RunCtl::NONE)
}

/// [`run_scenario_once`] under external run control: the driver loop
/// calls [`RunCtl::checkpoint`] once per cycle, so cancellations,
/// deadlines, and injected faults land at cycle granularity and an
/// interrupted run returns an error instead of a partial result.
pub fn run_scenario_once_ctl(
    spec: &ScenarioSpec,
    mechanism: MechanismSpec,
    seed: u64,
    ctl: &RunCtl<'_>,
) -> Result<RunResult, ScenarioError> {
    drive_scenario(spec, mechanism, seed, None, spec.telemetry, None, ctl)
}

/// Run one scenario cell with windowed telemetry forced on, streaming
/// each [`crate::WindowRow`] through `on_row` as its window closes (the
/// `--timeline out.jsonl` surface). Uses the spec's [`TelemetrySpec`]
/// when present, else the default (1000-cycle windows, full sampling).
/// The returned [`RunResult`] also carries the full timeline.
pub fn run_scenario_timeline(
    spec: &ScenarioSpec,
    mechanism: MechanismSpec,
    seed: u64,
    on_row: TimelineSink,
) -> Result<RunResult, ScenarioError> {
    let telemetry = Some(spec.telemetry.unwrap_or_default());
    drive_scenario(spec, mechanism, seed, None, telemetry, Some(on_row), &RunCtl::NONE)
}

/// The shared scenario driver loop behind [`run_scenario_once`] and
/// [`run_scenario_timeline`]: identical generation order regardless of
/// instrumentation, so telemetry cannot perturb same-seed results.
fn drive_scenario(
    spec: &ScenarioSpec,
    mechanism: MechanismSpec,
    seed: u64,
    mut recorders: Option<&mut [TraceRecorder]>,
    telemetry: Option<TelemetrySpec>,
    timeline_sink: Option<TimelineSink>,
    ctl: &RunCtl<'_>,
) -> Result<RunResult, ScenarioError> {
    spec.validate(seed).map_err(ScenarioError::spec)?;
    if let Some(recs) = recorders.as_deref() {
        assert_eq!(recs.len(), spec.jobs.len(), "one trace recorder per job");
    }
    let cfg = SimConfig {
        params: spec.params,
        arrangement: spec.arrangement,
        mechanism,
        arbiter: spec.arbiter,
        // Placeholder; generation is driven by the jobs below.
        pattern: PatternSpec::Uniform,
        load: 0.0,
        warmup_cycles: spec.warmup_cycles,
        measure_cycles: spec.measure_cycles,
        seed,
        telemetry,
        shards: spec.shards,
    };
    // Surface config problems as errors, not the `Simulator::new` panic:
    // the job service must reject a bad submission and keep serving.
    cfg.validate().map_err(ScenarioError::spec)?;
    let packet_size = cfg.engine_config().packet_size;
    let mut sim = Simulator::new(&cfg);
    if let Some(sink) = timeline_sink {
        sim.set_timeline_sink(sink);
    }

    let placements = spec.resolve_placements(seed)?;
    let mut drivers = Vec::with_capacity(spec.jobs.len());
    let mut job_nodes = Vec::with_capacity(spec.jobs.len());
    for (j, (job, placement)) in spec.jobs.iter().zip(placements).enumerate() {
        let traffic = match job.injection {
            InjectionSpec::Trace { .. } => None,
            _ => Some(JobTrafficAdapter::new(
                JobTraffic::new(
                    &job.pattern,
                    &placement,
                    &spec.params,
                    derive_seed(seed, 0x100 + j as u64),
                )
                .map_err(|e| format!("job `{}`: {e}", job.name))?,
                &spec.params,
            )),
        };
        let process = job
            .injection
            .build(
                placement.nodes.clone(),
                job.load,
                packet_size,
                derive_seed(seed, 0x200 + j as u64),
            )
            .map_err(|e| format!("job `{}`: {e}", job.name))?;
        drivers.push(JobDriver { process, traffic });
        job_nodes.push(JobSchedule {
            label: job.name.clone(),
            nodes: placement.nodes,
            start_cycle: job.start_cycle,
            stop_cycle: job.stop_cycle,
        });
    }
    sim.set_job_schedule(job_nodes);

    let total_cycles = spec.warmup_cycles + spec.measure_cycles;
    let n_nodes = spec.params.nodes();
    let mut arrivals: Vec<Arrival> = Vec::new();
    for t in 0..total_cycles {
        // Cooperative cancellation/deadline/fault checkpoint at cycle
        // granularity: an interrupted run aborts here, before any result
        // is extracted, so it leaves no partial output behind.
        ctl.checkpoint(t)?;
        if t == spec.warmup_cycles {
            sim.begin_measurement();
        }
        for (j, driver) in drivers.iter_mut().enumerate() {
            if !spec.jobs[j].active(t) {
                continue;
            }
            arrivals.clear();
            driver.process.arrivals(t, &mut arrivals);
            for arr in &arrivals {
                let dst = match (arr.dst, driver.traffic.as_mut()) {
                    (Some(dst), _) => dst,
                    (None, Some(traffic)) => traffic.dest(arr.src),
                    (None, None) => unreachable!("rate process without a pattern"),
                };
                if arr.src.0 >= n_nodes || dst.0 >= n_nodes {
                    return Err(ScenarioError::spec(format!(
                        "job `{}` generated out-of-range packet {} -> {}",
                        spec.jobs[j].name, arr.src.0, dst.0
                    )));
                }
                if let Some(recs) = recorders.as_deref_mut() {
                    recs[j].record(t, arr.src, dst);
                }
                sim.offer_for_job(j, arr.src, dst);
            }
        }
        sim.step_network();
    }

    let mut result = sim.finish();
    result.pattern = format!("scenario:{}", spec.name);
    // Network-equivalent configured load: job loads weighted by node share.
    result.load = spec
        .jobs
        .iter()
        .map(|j| j.load)
        .zip(result.per_job.iter().map(|j| j.nodes as f64))
        .map(|(load, nodes)| load * nodes)
        .sum::<f64>()
        / n_nodes as f64;
    Ok(result)
}

/// Run the scenario under every mechanism × seed (in parallel) and
/// aggregate.
pub fn run_scenario(spec: &ScenarioSpec, seeds: &[u64]) -> Result<ScenarioResult, ScenarioError> {
    run_scenario_ctl(spec, seeds, &RunCtl::NONE)
}

/// [`run_scenario`] under external run control: every parallel mechanism
/// × seed cell observes the same [`RunCtl`], so one cancellation or
/// deadline stops the whole aggregate within a cycle per cell.
pub fn run_scenario_ctl(
    spec: &ScenarioSpec,
    seeds: &[u64],
    ctl: &RunCtl<'_>,
) -> Result<ScenarioResult, ScenarioError> {
    if seeds.is_empty() {
        return Err(ScenarioError::spec("need at least one seed"));
    }
    let cells: Vec<(MechanismSpec, u64)> = spec
        .mechanisms
        .iter()
        .flat_map(|&m| seeds.iter().map(move |&s| (m, s)))
        .collect();
    let runs: Vec<Result<RunResult, ScenarioError>> = cells
        .par_iter()
        .map(|&(m, s)| drive_scenario(spec, m, s, None, spec.telemetry, None, ctl))
        .collect();
    let mut by_mechanism = Vec::new();
    let mut it = runs.into_iter();
    for &m in &spec.mechanisms {
        let mech_runs: Vec<RunResult> =
            seeds.iter().map(|_| it.next().expect("cell per seed")).collect::<Result<_, _>>()?;
        let n = mech_runs.len() as f64;
        let per_job = (0..spec.jobs.len())
            .map(|j| {
                let per_seed: Vec<&JobResult> =
                    mech_runs.iter().map(|r| &r.per_job[j]).collect();
                JobSummary::average(&per_seed)
            })
            .collect();
        by_mechanism.push(MechanismScenarioResult {
            mechanism: m.label().to_string(),
            throughput: mech_runs.iter().map(|r| r.throughput).sum::<f64>() / n,
            avg_latency: mech_runs.iter().map(|r| r.avg_latency).sum::<f64>() / n,
            router_cov: mech_runs.iter().map(|r| r.fairness.cov).sum::<f64>() / n,
            per_job,
            runs: mech_runs,
        });
    }
    Ok(ScenarioResult {
        scenario: spec.name.clone(),
        seeds: seeds.to_vec(),
        mechanisms: by_mechanism,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_engine::ArbiterPolicy;
    use df_topology::{Arrangement, DragonflyParams};
    use df_workload::{JobSpec, PlacementSpec};

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "tiny".into(),
            params: DragonflyParams::figure1(),
            arrangement: Arrangement::Palmtree,
            mechanisms: vec![MechanismSpec::InTransitMm],
            arbiter: ArbiterPolicy::TransitPriority,
            warmup_cycles: 1_000,
            measure_cycles: 2_000,
            telemetry: None,
            shards: None,
            jobs: vec![
                JobSpec {
                    name: "anatomy".into(),
                    placement: PlacementSpec::ConsecutiveGroups {
                        first: 0,
                        count: 3,
                        slots: None,
                    },
                    pattern: PatternSpec::Uniform,
                    injection: InjectionSpec::Bernoulli,
                    load: 0.3,
                    start_cycle: None,
                    stop_cycle: None,
                },
                JobSpec {
                    name: "late".into(),
                    placement: PlacementSpec::ConsecutiveGroups {
                        first: 5,
                        count: 2,
                        slots: None,
                    },
                    pattern: PatternSpec::GroupLocal,
                    injection: InjectionSpec::OnOff { mean_burst: 30.0, mean_idle: 30.0 },
                    load: 0.2,
                    start_cycle: Some(1_500),
                    stop_cycle: None,
                },
            ],
        }
    }

    #[test]
    fn scenario_produces_per_job_breakdown() {
        let r = run_scenario_once(&tiny_spec(), MechanismSpec::InTransitMm, 1, None).unwrap();
        assert_eq!(r.per_job.len(), 2);
        assert_eq!(r.per_job[0].job, "anatomy");
        assert!(r.per_job[0].throughput > 0.1, "{}", r.per_job[0].throughput);
        assert!(r.per_job[1].throughput > 0.0);
        assert!(r.per_job[0].avg_latency > 100.0);
        // Only the two jobs inject; network totals must bound job totals.
        assert!(r.throughput <= r.per_job[0].throughput + r.per_job[1].throughput);
        assert!(r.pattern.contains("tiny"));
    }

    #[test]
    fn same_seed_is_deterministic() {
        let spec = tiny_spec();
        let a = run_scenario_once(&spec, MechanismSpec::InTransitMm, 7, None).unwrap();
        let b = run_scenario_once(&spec, MechanismSpec::InTransitMm, 7, None).unwrap();
        assert_eq!(a.delivered_packets, b.delivered_packets);
        assert_eq!(a.injected_per_router, b.injected_per_router);
        for (x, y) in a.per_job.iter().zip(&b.per_job) {
            assert_eq!(x.throughput, y.throughput);
            assert_eq!(x.avg_latency, y.avg_latency);
            assert_eq!(x.delivered_packets, y.delivered_packets);
        }
    }

    #[test]
    fn job_lifetimes_gate_generation() {
        let mut spec = tiny_spec();
        // Stop the first job before the window; it must deliver ~nothing
        // during measurement.
        spec.jobs[0].stop_cycle = Some(200);
        spec.jobs[1].start_cycle = None;
        let r = run_scenario_once(&spec, MechanismSpec::InTransitMm, 1, None).unwrap();
        assert_eq!(r.per_job[0].offered, 0.0);
        assert!(r.per_job[0].delivered_packets < 5);
        assert!(r.per_job[1].delivered_packets > 100);
    }

    #[test]
    fn aggregation_averages_across_seeds() {
        let mut spec = tiny_spec();
        spec.jobs.truncate(1);
        let out = run_scenario(&spec, &[1, 2]).unwrap();
        assert_eq!(out.mechanisms.len(), 1);
        let m = &out.mechanisms[0];
        assert_eq!(m.runs.len(), 2);
        assert_eq!(m.per_job.len(), 1);
        let mean = (m.runs[0].per_job[0].throughput + m.runs[1].per_job[0].throughput) / 2.0;
        assert!((m.per_job[0].throughput - mean).abs() < 1e-12);
        let summary = out.summary();
        assert_eq!(summary.mechanisms[0].per_job.len(), 1);
    }
}
