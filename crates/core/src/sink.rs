//! The stats sink wired into the engine: aggregates delivered packets
//! into the `df-stats` accumulators, with a warm-up gate.

use df_engine::{DeliveredRecord, StatsSink};
use df_stats::{Histogram, LatencyAccumulator};

/// Aggregating sink. Inactive during warm-up; activated at the start of
/// the measurement window.
#[derive(Debug)]
pub struct MeasurementSink {
    /// Whether records are being accumulated.
    pub active: bool,
    /// Latency breakdown accumulator.
    pub latency: LatencyAccumulator,
    /// End-to-end latency histogram (50-cycle bins up to 10,000 cycles).
    pub histogram: Histogram,
}

impl MeasurementSink {
    /// Inactive sink with empty accumulators.
    pub fn new() -> Self {
        Self {
            active: false,
            latency: LatencyAccumulator::new(),
            histogram: Histogram::new(50, 200),
        }
    }

    /// Clear accumulators and start measuring.
    pub fn start_measurement(&mut self) {
        self.latency = LatencyAccumulator::new();
        self.histogram = Histogram::new(50, 200);
        self.active = true;
    }
}

impl Default for MeasurementSink {
    fn default() -> Self {
        Self::new()
    }
}

impl StatsSink for MeasurementSink {
    fn on_delivered(&mut self, rec: &DeliveredRecord) {
        if !self.active {
            return;
        }
        self.latency.add(
            rec.min_traversal,
            rec.misroute_latency(),
            rec.waits.injection,
            rec.waits.local,
            rec.waits.global,
        );
        self.histogram.add(rec.latency());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_engine::{PacketHeader, WaitBreakdown};
    use df_topology::NodeId;

    fn rec(latency_parts: (u64, u64, u64, u64, u64)) -> DeliveredRecord {
        let (base, mis, inj, loc, glob) = latency_parts;
        DeliveredRecord {
            header: PacketHeader { id: 0, src: NodeId(0), dst: NodeId(1), size: 8, gen_cycle: 0 },
            delivered_cycle: base + mis + inj + loc + glob,
            traversal: base + mis,
            min_traversal: base,
            waits: WaitBreakdown { injection: inj, local: loc, global: glob },
            local_hops: 2,
            global_hops: 1,
        }
    }

    #[test]
    fn inactive_sink_ignores_records() {
        let mut s = MeasurementSink::new();
        s.on_delivered(&rec((100, 0, 0, 0, 0)));
        assert_eq!(s.latency.count(), 0);
    }

    #[test]
    fn active_sink_accumulates_breakdown() {
        let mut s = MeasurementSink::new();
        s.start_measurement();
        s.on_delivered(&rec((100, 50, 10, 5, 2)));
        assert_eq!(s.latency.count(), 1);
        let [base, mis, lq, gq, inj] = s.latency.component_means();
        assert_eq!((base, mis, lq, gq, inj), (100.0, 50.0, 5.0, 2.0, 10.0));
        assert_eq!(s.histogram.total(), 1);
    }

    #[test]
    fn start_measurement_resets() {
        let mut s = MeasurementSink::new();
        s.start_measurement();
        s.on_delivered(&rec((100, 0, 0, 0, 0)));
        s.start_measurement();
        assert_eq!(s.latency.count(), 0);
        assert_eq!(s.histogram.total(), 0);
    }
}
