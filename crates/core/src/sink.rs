//! The stats sink wired into the engine: aggregates delivered packets
//! into the `df-stats` accumulators, with a warm-up gate and an optional
//! node→job attribution for multi-job scenarios.

use df_engine::{DeliveredRecord, StatsSink};
use df_stats::{Histogram, LatencyAccumulator};

/// Job index meaning "not attributed to any job".
const NO_JOB: u32 = u32::MAX;

/// Per-job measurement slice of the sink.
#[derive(Debug, Clone)]
pub struct JobAccumulator {
    /// Latency breakdown of packets sourced by this job's nodes.
    pub latency: LatencyAccumulator,
    /// End-to-end latency histogram (p50/p95/p99 per job).
    pub histogram: Histogram,
    /// Packets delivered for this job during the window.
    pub delivered_packets: u64,
    /// Phits delivered for this job during the window.
    pub delivered_phits: u64,
}

impl JobAccumulator {
    fn new() -> Self {
        Self {
            latency: LatencyAccumulator::new(),
            histogram: Histogram::new(50, 200),
            delivered_packets: 0,
            delivered_phits: 0,
        }
    }
}

/// Aggregating sink. Inactive during warm-up; activated at the start of
/// the measurement window.
#[derive(Debug)]
pub struct MeasurementSink {
    /// Whether records are being accumulated.
    pub active: bool,
    /// Latency breakdown accumulator.
    pub latency: LatencyAccumulator,
    /// End-to-end latency histogram (50-cycle bins up to 10,000 cycles).
    pub histogram: Histogram,
    /// `node → job index` attribution map (empty when no jobs are set).
    node_job: Vec<u32>,
    /// Per-job accumulators.
    jobs: Vec<JobAccumulator>,
}

impl MeasurementSink {
    /// Inactive sink with empty accumulators and no job attribution.
    pub fn new() -> Self {
        Self {
            active: false,
            latency: LatencyAccumulator::new(),
            histogram: Histogram::new(50, 200),
            node_job: Vec::new(),
            jobs: Vec::new(),
        }
    }

    /// Inactive sink attributing each node to a job via `node_job`
    /// (use [`MeasurementSink::NO_JOB`] — `u32::MAX` — for unowned nodes).
    ///
    /// # Panics
    /// Panics if an entry names a job `>= n_jobs`.
    pub fn with_jobs(node_job: Vec<u32>, n_jobs: usize) -> Self {
        assert!(
            node_job.iter().all(|&j| j == NO_JOB || (j as usize) < n_jobs),
            "node_job entry out of range"
        );
        Self {
            node_job,
            jobs: (0..n_jobs).map(|_| JobAccumulator::new()).collect(),
            ..Self::new()
        }
    }

    /// The sentinel marking a node that belongs to no job.
    pub const NO_JOB: u32 = NO_JOB;

    /// Clear accumulators and start measuring.
    pub fn start_measurement(&mut self) {
        self.latency = LatencyAccumulator::new();
        self.histogram = Histogram::new(50, 200);
        for j in &mut self.jobs {
            *j = JobAccumulator::new();
        }
        self.active = true;
    }

    /// Per-job accumulators (one per job passed to `with_jobs`).
    pub fn jobs(&self) -> &[JobAccumulator] {
        &self.jobs
    }

    /// The job owning `node`, if any.
    pub fn job_of(&self, node: usize) -> Option<u32> {
        match self.node_job.get(node) {
            Some(&j) if j != NO_JOB => Some(j),
            _ => None,
        }
    }
}

impl Default for MeasurementSink {
    fn default() -> Self {
        Self::new()
    }
}

impl StatsSink for MeasurementSink {
    fn on_delivered(&mut self, rec: &DeliveredRecord) {
        if !self.active {
            return;
        }
        self.latency.add(
            rec.min_traversal,
            rec.misroute_latency(),
            rec.waits.injection,
            rec.waits.local,
            rec.waits.global,
        );
        self.histogram.add(rec.latency());
        if let Some(j) = self.job_of(rec.header.src.idx()) {
            let job = &mut self.jobs[j as usize];
            job.latency.add(
                rec.min_traversal,
                rec.misroute_latency(),
                rec.waits.injection,
                rec.waits.local,
                rec.waits.global,
            );
            job.histogram.add(rec.latency());
            job.delivered_packets += 1;
            job.delivered_phits += rec.header.size as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_engine::{PacketHeader, WaitBreakdown};
    use df_topology::NodeId;

    fn rec(latency_parts: (u64, u64, u64, u64, u64)) -> DeliveredRecord {
        rec_from(0, latency_parts)
    }

    fn rec_from(src: u32, latency_parts: (u64, u64, u64, u64, u64)) -> DeliveredRecord {
        let (base, mis, inj, loc, glob) = latency_parts;
        DeliveredRecord {
            header: PacketHeader {
                id: 0,
                src: NodeId(src),
                dst: NodeId(1),
                size: 8,
                gen_cycle: 0,
            },
            delivered_cycle: base + mis + inj + loc + glob,
            traversal: base + mis,
            min_traversal: base,
            waits: WaitBreakdown { injection: inj, local: loc, global: glob },
            local_hops: 2,
            global_hops: 1,
        }
    }

    #[test]
    fn inactive_sink_ignores_records() {
        let mut s = MeasurementSink::new();
        s.on_delivered(&rec((100, 0, 0, 0, 0)));
        assert_eq!(s.latency.count(), 0);
    }

    #[test]
    fn active_sink_accumulates_breakdown() {
        let mut s = MeasurementSink::new();
        s.start_measurement();
        s.on_delivered(&rec((100, 50, 10, 5, 2)));
        assert_eq!(s.latency.count(), 1);
        let [base, mis, lq, gq, inj] = s.latency.component_means();
        assert_eq!((base, mis, lq, gq, inj), (100.0, 50.0, 5.0, 2.0, 10.0));
        assert_eq!(s.histogram.total(), 1);
    }

    #[test]
    fn start_measurement_resets() {
        let mut s = MeasurementSink::new();
        s.start_measurement();
        s.on_delivered(&rec((100, 0, 0, 0, 0)));
        s.start_measurement();
        assert_eq!(s.latency.count(), 0);
        assert_eq!(s.histogram.total(), 0);
    }

    #[test]
    fn job_histogram_yields_percentiles() {
        let mut s = MeasurementSink::with_jobs(vec![0], 1);
        s.start_measurement();
        for i in 0..100u64 {
            s.on_delivered(&rec_from(0, (100 + i * 10, 0, 0, 0, 0)));
        }
        let h = &s.jobs()[0].histogram;
        assert_eq!(h.total(), 100);
        let (p50, p99) = (h.quantile(0.5).unwrap(), h.quantile(0.99).unwrap());
        assert!(p50 < p99, "p50 {p50} must sit below p99 {p99}");
        assert!(p99 >= 1050, "p99 {p99} must cover the distribution tail");
    }

    #[test]
    fn job_attribution_splits_records_by_source() {
        // Nodes 0,1 → job 0; node 2 → job 1; node 3 unowned.
        let mut s = MeasurementSink::with_jobs(vec![0, 0, 1, MeasurementSink::NO_JOB], 2);
        s.start_measurement();
        s.on_delivered(&rec_from(0, (100, 0, 0, 0, 0)));
        s.on_delivered(&rec_from(1, (200, 0, 0, 0, 0)));
        s.on_delivered(&rec_from(2, (300, 0, 0, 0, 0)));
        s.on_delivered(&rec_from(3, (400, 0, 0, 0, 0)));
        assert_eq!(s.latency.count(), 4);
        assert_eq!(s.jobs()[0].delivered_packets, 2);
        assert_eq!(s.jobs()[0].delivered_phits, 16);
        assert_eq!(s.jobs()[0].latency.mean_latency(), 150.0);
        assert_eq!(s.jobs()[1].delivered_packets, 1);
        assert_eq!(s.jobs()[1].latency.mean_latency(), 300.0);
    }

    #[test]
    fn job_reset_with_measurement() {
        let mut s = MeasurementSink::with_jobs(vec![0], 1);
        s.start_measurement();
        s.on_delivered(&rec_from(0, (100, 0, 0, 0, 0)));
        s.start_measurement();
        assert_eq!(s.jobs()[0].delivered_packets, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_job_map_rejected() {
        MeasurementSink::with_jobs(vec![5], 2);
    }
}
