//! The stats sink wired into the engine: aggregates delivered packets
//! into the `df-stats` accumulators, with a warm-up gate and an optional
//! node→job attribution for multi-job scenarios.
//!
//! Attribution is *cycle-aware*: each node keeps a small ownership
//! history of `(from_cycle, job)` changes, so in a churning workload a
//! packet is credited to the job that owned its source node **when the
//! packet was generated** — a straggler delivered after its job departed
//! (and after the node was reassigned to a later arrival) still counts
//! toward the departed job, not the new tenant.

use df_engine::{DeliveredRecord, StatsSink};
use df_stats::{Histogram, LatencyAccumulator};

/// Job index meaning "not attributed to any job".
const NO_JOB: u32 = u32::MAX;

/// Per-job measurement slice of the sink.
#[derive(Debug, Clone)]
pub struct JobAccumulator {
    /// Latency breakdown of packets sourced by this job's nodes.
    pub latency: LatencyAccumulator,
    /// End-to-end latency histogram (p50/p95/p99 per job).
    pub histogram: Histogram,
    /// Packets delivered for this job during the window.
    pub delivered_packets: u64,
    /// Phits delivered for this job during the window.
    pub delivered_phits: u64,
}

impl JobAccumulator {
    fn new() -> Self {
        Self {
            latency: LatencyAccumulator::new(),
            histogram: Histogram::new(50, 200),
            delivered_packets: 0,
            delivered_phits: 0,
        }
    }

    /// Merge another accumulator covering a disjoint slice of the same
    /// job's deliveries (partitioned or sharded aggregation). Histograms
    /// merge bucket-wise — the derived quantiles are overflow-clamped and
    /// therefore not themselves mergeable — so the result equals
    /// accumulating the union stream directly.
    pub fn merge(&mut self, other: &Self) {
        self.latency.merge(&other.latency);
        self.histogram.merge(&other.histogram);
        self.delivered_packets += other.delivered_packets;
        self.delivered_phits += other.delivered_phits;
    }
}

/// Aggregating sink. Inactive during warm-up; activated at the start of
/// the measurement window.
#[derive(Debug)]
pub struct MeasurementSink {
    /// Whether records are being accumulated.
    pub active: bool,
    /// Latency breakdown accumulator.
    pub latency: LatencyAccumulator,
    /// End-to-end latency histogram (50-cycle bins up to 10,000 cycles).
    pub histogram: Histogram,
    /// `node → job index` attribution map (empty when no jobs are set).
    /// Holds the *current* owner; [`MeasurementSink::node_history`] keeps
    /// the cycle-stamped record used for attribution.
    node_job: Vec<u32>,
    /// Per-node ownership history: `(from_cycle, owner)` entries in
    /// ascending cycle order. Static scenarios have at most one entry per
    /// node; churn appends one entry per claim/release.
    node_history: Vec<Vec<(u64, u32)>>,
    /// Per-job accumulators.
    jobs: Vec<JobAccumulator>,
}

impl MeasurementSink {
    /// Inactive sink with empty accumulators and no job attribution.
    pub fn new() -> Self {
        Self {
            active: false,
            latency: LatencyAccumulator::new(),
            histogram: Histogram::new(50, 200),
            node_job: Vec::new(),
            node_history: Vec::new(),
            jobs: Vec::new(),
        }
    }

    /// Inactive sink attributing each node to a job via `node_job`
    /// (use [`MeasurementSink::NO_JOB`] — `u32::MAX` — for unowned nodes).
    /// Ownership is static: every owned node is owned from cycle 0.
    ///
    /// # Panics
    /// Panics if an entry names a job `>= n_jobs`.
    pub fn with_jobs(node_job: Vec<u32>, n_jobs: usize) -> Self {
        assert!(
            node_job.iter().all(|&j| j == NO_JOB || (j as usize) < n_jobs),
            "node_job entry out of range"
        );
        let node_history = node_job
            .iter()
            .map(|&j| if j == NO_JOB { Vec::new() } else { vec![(0, j)] })
            .collect();
        Self {
            node_job,
            node_history,
            jobs: (0..n_jobs).map(|_| JobAccumulator::new()).collect(),
            ..Self::new()
        }
    }

    /// Inactive sink for a *scheduled* (churning) workload: `n_jobs`
    /// accumulators over `n_nodes` initially unowned nodes. Ownership is
    /// installed over time via [`MeasurementSink::claim_node`] /
    /// [`MeasurementSink::release_node`].
    pub fn with_job_count(n_nodes: usize, n_jobs: usize) -> Self {
        Self {
            node_job: vec![NO_JOB; n_nodes],
            node_history: vec![Vec::new(); n_nodes],
            jobs: (0..n_jobs).map(|_| JobAccumulator::new()).collect(),
            ..Self::new()
        }
    }

    /// Record that `job` owns `node` from `cycle` on.
    ///
    /// # Panics
    /// Panics if the node is currently owned (lifetimes of jobs sharing a
    /// node must be disjoint) or `job` is out of range.
    pub fn claim_node(&mut self, node: usize, job: u32, cycle: u64) {
        assert!((job as usize) < self.jobs.len(), "job {job} out of range");
        assert_eq!(
            self.node_job[node], NO_JOB,
            "node {node} claimed by two jobs"
        );
        self.node_job[node] = job;
        debug_assert!(
            self.node_history[node].last().is_none_or(|&(c, _)| c <= cycle),
            "ownership history must be appended in cycle order"
        );
        self.node_history[node].push((cycle, job));
    }

    /// Record that `node`'s owner departs at `cycle`: packets generated
    /// at `cycle` or later are no longer attributed to it.
    ///
    /// # Panics
    /// Panics if the node is not currently owned.
    pub fn release_node(&mut self, node: usize, cycle: u64) {
        assert_ne!(self.node_job[node], NO_JOB, "released node {node} is unowned");
        self.node_job[node] = NO_JOB;
        self.node_history[node].push((cycle, NO_JOB));
    }

    /// The sentinel marking a node that belongs to no job.
    pub const NO_JOB: u32 = NO_JOB;

    /// Clear accumulators and start measuring.
    pub fn start_measurement(&mut self) {
        self.latency = LatencyAccumulator::new();
        self.histogram = Histogram::new(50, 200);
        for j in &mut self.jobs {
            *j = JobAccumulator::new();
        }
        self.active = true;
    }

    /// Per-job accumulators (one per job passed to `with_jobs`).
    pub fn jobs(&self) -> &[JobAccumulator] {
        &self.jobs
    }

    /// The job owning `node`, if any.
    pub fn job_of(&self, node: usize) -> Option<u32> {
        match self.node_job.get(node) {
            Some(&j) if j != NO_JOB => Some(j),
            _ => None,
        }
    }

    /// The job that owned `node` at `cycle` (attribution for a packet
    /// generated then). A reverse scan of the node's ownership history —
    /// one entry for static jobs, a handful under churn.
    pub fn job_of_at(&self, node: usize, cycle: u64) -> Option<u32> {
        let history = self.node_history.get(node)?;
        history
            .iter()
            .rev()
            .find(|&&(from, _)| from <= cycle)
            .map(|&(_, j)| j)
            .filter(|&j| j != NO_JOB)
    }
}

impl Default for MeasurementSink {
    fn default() -> Self {
        Self::new()
    }
}

impl StatsSink for MeasurementSink {
    fn on_delivered(&mut self, rec: &DeliveredRecord) {
        if !self.active {
            return;
        }
        self.latency.add(
            rec.min_traversal,
            rec.misroute_latency(),
            rec.waits.injection,
            rec.waits.local,
            rec.waits.global,
        );
        self.histogram.add(rec.latency());
        if let Some(j) = self.job_of_at(rec.header.src.idx(), rec.header.gen_cycle) {
            let job = &mut self.jobs[j as usize];
            job.latency.add(
                rec.min_traversal,
                rec.misroute_latency(),
                rec.waits.injection,
                rec.waits.local,
                rec.waits.global,
            );
            job.histogram.add(rec.latency());
            job.delivered_packets += 1;
            job.delivered_phits += rec.header.size as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_engine::{PacketHeader, WaitBreakdown};
    use df_topology::NodeId;

    fn rec(latency_parts: (u64, u64, u64, u64, u64)) -> DeliveredRecord {
        rec_from(0, latency_parts)
    }

    fn rec_from(src: u32, latency_parts: (u64, u64, u64, u64, u64)) -> DeliveredRecord {
        let (base, mis, inj, loc, glob) = latency_parts;
        DeliveredRecord {
            header: PacketHeader {
                id: 0,
                src: NodeId(src),
                dst: NodeId(1),
                size: 8,
                gen_cycle: 0,
            },
            delivered_cycle: base + mis + inj + loc + glob,
            traversal: base + mis,
            min_traversal: base,
            waits: WaitBreakdown { injection: inj, local: loc, global: glob },
            local_hops: 2,
            global_hops: 1,
        }
    }

    #[test]
    fn inactive_sink_ignores_records() {
        let mut s = MeasurementSink::new();
        s.on_delivered(&rec((100, 0, 0, 0, 0)));
        assert_eq!(s.latency.count(), 0);
    }

    #[test]
    fn active_sink_accumulates_breakdown() {
        let mut s = MeasurementSink::new();
        s.start_measurement();
        s.on_delivered(&rec((100, 50, 10, 5, 2)));
        assert_eq!(s.latency.count(), 1);
        let [base, mis, lq, gq, inj] = s.latency.component_means();
        assert_eq!((base, mis, lq, gq, inj), (100.0, 50.0, 5.0, 2.0, 10.0));
        assert_eq!(s.histogram.total(), 1);
    }

    #[test]
    fn start_measurement_resets() {
        let mut s = MeasurementSink::new();
        s.start_measurement();
        s.on_delivered(&rec((100, 0, 0, 0, 0)));
        s.start_measurement();
        assert_eq!(s.latency.count(), 0);
        assert_eq!(s.histogram.total(), 0);
    }

    #[test]
    fn job_histogram_yields_percentiles() {
        let mut s = MeasurementSink::with_jobs(vec![0], 1);
        s.start_measurement();
        for i in 0..100u64 {
            s.on_delivered(&rec_from(0, (100 + i * 10, 0, 0, 0, 0)));
        }
        let h = &s.jobs()[0].histogram;
        assert_eq!(h.total(), 100);
        let (p50, p99) = (h.quantile(0.5).unwrap(), h.quantile(0.99).unwrap());
        assert!(p50 < p99, "p50 {p50} must sit below p99 {p99}");
        assert!(p99 >= 1050, "p99 {p99} must cover the distribution tail");
    }

    #[test]
    fn job_attribution_splits_records_by_source() {
        // Nodes 0,1 → job 0; node 2 → job 1; node 3 unowned.
        let mut s = MeasurementSink::with_jobs(vec![0, 0, 1, MeasurementSink::NO_JOB], 2);
        s.start_measurement();
        s.on_delivered(&rec_from(0, (100, 0, 0, 0, 0)));
        s.on_delivered(&rec_from(1, (200, 0, 0, 0, 0)));
        s.on_delivered(&rec_from(2, (300, 0, 0, 0, 0)));
        s.on_delivered(&rec_from(3, (400, 0, 0, 0, 0)));
        assert_eq!(s.latency.count(), 4);
        assert_eq!(s.jobs()[0].delivered_packets, 2);
        assert_eq!(s.jobs()[0].delivered_phits, 16);
        assert_eq!(s.jobs()[0].latency.mean_latency(), 150.0);
        assert_eq!(s.jobs()[1].delivered_packets, 1);
        assert_eq!(s.jobs()[1].latency.mean_latency(), 300.0);
    }

    #[test]
    fn job_reset_with_measurement() {
        let mut s = MeasurementSink::with_jobs(vec![0], 1);
        s.start_measurement();
        s.on_delivered(&rec_from(0, (100, 0, 0, 0, 0)));
        s.start_measurement();
        assert_eq!(s.jobs()[0].delivered_packets, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_job_map_rejected() {
        MeasurementSink::with_jobs(vec![5], 2);
    }

    /// Sharded-merge regression: merging two accumulators fed disjoint
    /// halves of a delivery stream must equal one accumulator fed the
    /// whole stream — specifically for the overflow-clamped quantiles,
    /// where merging per-half *summaries* instead of buckets would give
    /// a different (wrong) answer.
    #[test]
    fn merging_accumulators_equals_accumulating_the_union_stream() {
        let mut a = MeasurementSink::with_jobs(vec![0], 1);
        let mut b = MeasurementSink::with_jobs(vec![0], 1);
        let mut whole = MeasurementSink::with_jobs(vec![0], 1);
        a.start_measurement();
        b.start_measurement();
        whole.start_measurement();
        // Half a: moderate latencies. Half b: a heavy tail beyond the
        // 10,000-cycle histogram range (overflow bucket).
        for i in 0..60u64 {
            let r = rec_from(0, (100 + i * 10, 0, 0, 0, 0));
            a.on_delivered(&r);
            whole.on_delivered(&r);
        }
        for i in 0..40u64 {
            let r = rec_from(0, (20_000 + i * 100, 0, 0, 0, 0));
            b.on_delivered(&r);
            whole.on_delivered(&r);
        }
        let mut merged = a.jobs()[0].clone();
        merged.merge(&b.jobs()[0]);
        let direct = &whole.jobs()[0];
        assert_eq!(merged.delivered_packets, direct.delivered_packets);
        assert_eq!(merged.delivered_phits, direct.delivered_phits);
        assert_eq!(merged.latency.count(), direct.latency.count());
        assert!((merged.latency.mean_latency() - direct.latency.mean_latency()).abs() < 1e-9);
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(merged.histogram.quantile(q), direct.histogram.quantile(q), "q={q}");
        }
        // The half-b summary alone is clamped to the range cap — proof
        // that summaries are not mergeable where buckets are.
        assert_eq!(b.jobs()[0].histogram.quantile(0.5), Some(10_000));
        assert_ne!(
            b.jobs()[0].histogram.quantile(0.5),
            direct.histogram.quantile(0.5)
        );
    }
}
