//! Windowed timeline telemetry: per-window snapshots of the counters the
//! engine already maintains.
//!
//! When a [`crate::SimConfig`] carries a [`df_engine::TelemetrySpec`],
//! the simulator attaches a [`TimelineRecorder`] to the measurement
//! window. After every cycle the recorder checks a
//! [`df_stats::WindowSeries`] boundary; when a window closes it diffs
//! the engine's cumulative counters against the previous boundary and
//! emits one [`WindowRow`]. The instrumentation is read-only: it never
//! feeds back into routing, allocation, or RNG consumption, so same-seed
//! summary output is bit-identical with telemetry on or off (the golden
//! digests enforce this).
//!
//! Rows accumulate into [`crate::RunResult::timeline`] and can
//! additionally be streamed as they close through a sink installed with
//! [`crate::Simulator::set_timeline_sink`] (the `--timeline out.jsonl`
//! CLI surface).

use crate::sim::{Engine, JobRuntime};
use df_engine::TelemetrySpec;
use df_stats::WindowSeries;
use serde::{Deserialize, Serialize};

/// The network type the recorder samples from: the simulator's engine
/// (serial or sharded — the counters it reads are merged identically
/// either way).
type Net = Engine;

/// One job's slice of a timeline window. All rates are normalized over
/// the *full* window span and the job's node count; a job that is dormant
/// (not yet arrived, or departed) simply reports zeros.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobWindow {
    /// Job label.
    pub job: String,
    /// Packets the driver offered for this job during the window.
    pub offered_packets: u64,
    /// Packets injected from the job's nodes during the window (the
    /// paper's fairness signal, windowed).
    pub injected_packets: u64,
    /// Packets delivered for this job during the window.
    pub delivered_packets: u64,
    /// Phits delivered for this job during the window.
    pub delivered_phits: u64,
    /// Offered load during the window, in phits/(job node·cycle).
    pub offered: f64,
    /// Delivered throughput during the window, in phits/(job node·cycle).
    pub throughput: f64,
    /// Mean end-to-end latency of packets *delivered in this window*, in
    /// cycles; `None` when nothing was delivered (kept out of the JSON
    /// as `null` rather than a NaN).
    pub avg_latency: Option<f64>,
}

/// One closed telemetry window: network-scope gauges plus per-job rows.
///
/// Windows tile the measurement phase gap-free: the first window starts
/// at the `begin_measurement` cycle, `end_cycle` is exclusive and equals
/// the next row's `start_cycle`. The final row may be a partial window
/// (shorter than `window_cycles`) so that sums over rows equal the
/// end-of-run totals exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowRow {
    /// Window index within the run, starting at 0.
    pub window: u64,
    /// First cycle covered by the window.
    pub start_cycle: u64,
    /// One past the last cycle covered (exclusive; start of next window).
    pub end_cycle: u64,
    /// Generation attempts network-wide during the window.
    pub offered_packets: u64,
    /// Packets granted out of injection ports during the window.
    pub injected_packets: u64,
    /// Packets delivered network-wide during the window.
    pub delivered_packets: u64,
    /// Phits delivered network-wide during the window.
    pub delivered_phits: u64,
    /// Delivered throughput during the window, phits/(node·cycle).
    pub throughput: f64,
    /// Fraction of aggregate global-link capacity (one phit per link per
    /// cycle, `routers × h` links) carrying traffic during the window.
    pub link_utilization: f64,
    /// Escape-path grants (first misrouting commitment of a packet)
    /// during the window.
    pub escape_grants: u64,
    /// Escape-path grants per cycle during the window.
    pub escape_grant_rate: f64,
    /// Ready, unparked input-VC heads at window close (allocator-load
    /// gauge; 0 when network sampling is disabled).
    pub probe_ready_heads: u64,
    /// Output-port epoch bumps (route-cache invalidation churn) during
    /// the window (0 when network sampling is disabled).
    pub port_epoch_bumps: u64,
    /// Per-job rows (empty when job sampling is disabled or the run has
    /// no job attribution).
    pub jobs: Vec<JobWindow>,
}

/// Cumulative network counters at the last closed window boundary.
#[derive(Debug, Clone, Copy, Default)]
struct NetMark {
    offered_packets: u64,
    injected_packets: u64,
    delivered_packets: u64,
    delivered_phits: u64,
    escape_grants: u64,
    global_phits: u64,
    port_epoch_sum: u64,
}

/// Cumulative per-job counters at the last closed window boundary.
#[derive(Debug, Clone, Copy, Default)]
struct JobMark {
    offered_packets: u64,
    injected_packets: u64,
    delivered_packets: u64,
    delivered_phits: u64,
    latency_count: u64,
    latency_sum: f64,
}

fn net_mark(net: &Net, spec: &TelemetrySpec) -> NetMark {
    let c = net.counters();
    NetMark {
        offered_packets: c.offered_packets,
        injected_packets: c.injected_per_router.iter().sum(),
        delivered_packets: c.delivered_packets,
        delivered_phits: c.delivered_phits,
        escape_grants: c.escape_grants,
        global_phits: c.global_phits,
        port_epoch_sum: if spec.sample_network { net.port_epoch_sum() } else { 0 },
    }
}

fn job_marks(net: &Net, jobs: &[JobRuntime]) -> Vec<JobMark> {
    let per_node = &net.counters().injected_per_node;
    jobs.iter()
        .zip(net.sink().jobs())
        .map(|(job, acc)| JobMark {
            offered_packets: job.offered_packets,
            injected_packets: job.nodes.iter().map(|n| per_node[n.idx()]).sum(),
            delivered_packets: acc.delivered_packets,
            delivered_phits: acc.delivered_phits,
            latency_count: acc.latency.count(),
            latency_sum: acc.latency.mean_latency() * acc.latency.count() as f64,
        })
        .collect()
}

/// A streaming consumer of closed windows: called once per window, in
/// order, while the run executes (the partial tail row is flushed at
/// run teardown and reaches the sink too).
pub type TimelineSink = Box<dyn FnMut(&WindowRow)>;

/// Per-run recorder: window boundaries, boundary marks, closed rows, and
/// an optional streaming sink. Owned by [`crate::Simulator`]; one branch
/// per cycle when idle, O(routers + job nodes) work only at window close.
pub(crate) struct TimelineRecorder {
    spec: TelemetrySpec,
    series: WindowSeries<WindowRow>,
    net_mark: NetMark,
    job_marks: Vec<JobMark>,
    sink: Option<TimelineSink>,
}

impl TimelineRecorder {
    /// A recorder whose first window starts at `base` (the
    /// `begin_measurement` cycle), with boundary marks snapshotted from
    /// the network's current — just reset — counters.
    pub(crate) fn new(
        spec: TelemetrySpec,
        base: u64,
        net: &Net,
        jobs: &[JobRuntime],
        sink: Option<TimelineSink>,
    ) -> Self {
        TimelineRecorder {
            spec,
            series: WindowSeries::new(spec.window_cycles, base),
            net_mark: net_mark(net, &spec),
            job_marks: if spec.sample_jobs { job_marks(net, jobs) } else { Vec::new() },
            sink,
        }
    }

    /// Check the window boundary after a cycle; close and emit the
    /// window if `now` reached it.
    pub(crate) fn tick(&mut self, now: u64, net: &Net, jobs: &[JobRuntime]) {
        while let Some((window, start, end)) = self.series.due(now) {
            self.close(window, start, end, net, jobs);
        }
    }

    /// Flush the partially filled tail window (end of run), so sums over
    /// all rows equal the end-of-run totals exactly.
    pub(crate) fn flush(&mut self, now: u64, net: &Net, jobs: &[JobRuntime]) {
        self.tick(now, net, jobs);
        if let Some((window, start, end)) = self.series.partial(now) {
            self.close(window, start, end, net, jobs);
        }
    }

    /// Diff the cumulative counters against the boundary marks, emit the
    /// row, and advance the marks.
    fn close(&mut self, window: u64, start: u64, end: u64, net: &Net, jobs: &[JobRuntime]) {
        let span = (end - start) as f64;
        let params = *net.topology().params();
        let now_net = net_mark(net, &self.spec);
        let prev = self.net_mark;
        let jobs_now = if self.spec.sample_jobs { job_marks(net, jobs) } else { Vec::new() };
        let job_rows = jobs
            .iter()
            .zip(jobs_now.iter())
            .zip(self.job_marks.iter())
            .map(|((job, now), prev)| {
                let delivered_phits = now.delivered_phits - prev.delivered_phits;
                let offered_packets = now.offered_packets - prev.offered_packets;
                let count = now.latency_count - prev.latency_count;
                let nodes = job.nodes.len() as f64;
                JobWindow {
                    job: job.label.clone(),
                    offered_packets,
                    injected_packets: now.injected_packets - prev.injected_packets,
                    delivered_packets: now.delivered_packets - prev.delivered_packets,
                    delivered_phits,
                    offered: offered_packets as f64 * net.config().packet_size as f64
                        / (nodes * span),
                    throughput: delivered_phits as f64 / (nodes * span),
                    avg_latency: (count > 0)
                        .then(|| (now.latency_sum - prev.latency_sum) / count as f64),
                }
            })
            .collect();
        let delivered_phits = now_net.delivered_phits - prev.delivered_phits;
        let escape_grants = now_net.escape_grants - prev.escape_grants;
        let global_links = (params.routers() * params.h) as f64;
        let row = WindowRow {
            window,
            start_cycle: start,
            end_cycle: end,
            offered_packets: now_net.offered_packets - prev.offered_packets,
            injected_packets: now_net.injected_packets - prev.injected_packets,
            delivered_packets: now_net.delivered_packets - prev.delivered_packets,
            delivered_phits,
            throughput: delivered_phits as f64 / (params.nodes() as f64 * span),
            link_utilization: (now_net.global_phits - prev.global_phits) as f64
                / (global_links * span),
            escape_grants,
            escape_grant_rate: escape_grants as f64 / span,
            probe_ready_heads: if self.spec.sample_network {
                net.probe_ready_total()
            } else {
                0
            },
            port_epoch_bumps: now_net.port_epoch_sum - prev.port_epoch_sum,
            jobs: job_rows,
        };
        self.net_mark = now_net;
        self.job_marks = jobs_now;
        if let Some(sink) = &mut self.sink {
            sink(&row);
        }
        self.series.push(row);
    }

    /// Consume the recorder, yielding its closed rows.
    pub(crate) fn into_rows(self) -> Vec<WindowRow> {
        self.series.into_rows()
    }
}
