//! Multi-seed averaging and parallel load sweeps — the building blocks of
//! every figure and table harness.

use crate::config::SimConfig;
use crate::sim::{run_single, RunResult};
use df_stats::FairnessReport;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Seed set mirroring the paper's "average of 3 different simulations".
pub const DEFAULT_SEEDS: [u64; 3] = [11, 23, 47];

/// Averaged result across seeds for one (mechanism, pattern, load) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AveragedResult {
    /// Mechanism label.
    pub mechanism: String,
    /// Pattern label.
    pub pattern: String,
    /// Configured offered load in phits/(node·cycle).
    pub load: f64,
    /// Number of seeds averaged.
    pub runs: usize,
    /// Mean accepted throughput.
    pub throughput: f64,
    /// Mean end-to-end latency (cycles).
    pub avg_latency: f64,
    /// Mean latency components `[base, misroute, local_q, global_q,
    /// injection_q]`.
    pub components: [f64; 5],
    /// Per-router injections, averaged element-wise across seeds — this is
    /// exactly how the paper obtains fractional "Min inj" values like
    /// 69.33 in Table II.
    pub injected_per_router: Vec<f64>,
    /// Fairness metrics over the averaged counts.
    pub fairness: FairnessReport,
}

impl AveragedResult {
    /// Average individual runs (all must share mechanism/pattern/load).
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn from_runs(runs: &[RunResult]) -> Self {
        assert!(!runs.is_empty(), "cannot average zero runs");
        let n = runs.len() as f64;
        let routers = runs[0].injected_per_router.len();
        let mut injected = vec![0.0; routers];
        let mut components = [0.0; 5];
        let mut throughput = 0.0;
        let mut latency = 0.0;
        for r in runs {
            debug_assert_eq!(r.injected_per_router.len(), routers);
            throughput += r.throughput;
            latency += r.avg_latency;
            for (acc, c) in components.iter_mut().zip(r.components) {
                *acc += c;
            }
            for (acc, &c) in injected.iter_mut().zip(&r.injected_per_router) {
                *acc += c as f64;
            }
        }
        throughput /= n;
        latency /= n;
        components.iter_mut().for_each(|c| *c /= n);
        injected.iter_mut().for_each(|c| *c /= n);
        let fairness = FairnessReport::from_counts(&injected);
        Self {
            mechanism: runs[0].mechanism.clone(),
            pattern: runs[0].pattern.clone(),
            load: runs[0].load,
            runs: runs.len(),
            throughput,
            avg_latency: latency,
            components,
            injected_per_router: injected,
            fairness,
        }
    }
}

/// Run `cfg` under each seed (in parallel) and average.
pub fn run_averaged(cfg: &SimConfig, seeds: &[u64]) -> AveragedResult {
    let runs: Vec<RunResult> =
        seeds.par_iter().map(|&s| run_single(&cfg.with_seed(s))).collect();
    AveragedResult::from_runs(&runs)
}

/// Sweep offered loads (each load × seed simulated in parallel).
pub fn sweep_loads(base: &SimConfig, loads: &[f64], seeds: &[u64]) -> Vec<AveragedResult> {
    let cells: Vec<(usize, u64)> = loads
        .iter()
        .enumerate()
        .flat_map(|(i, _)| seeds.iter().map(move |&s| (i, s)))
        .collect();
    let runs: Vec<(usize, RunResult)> = cells
        .par_iter()
        .map(|&(i, s)| (i, run_single(&base.with_load(loads[i]).with_seed(s))))
        .collect();
    loads
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let cell: Vec<RunResult> =
                runs.iter().filter(|(j, _)| *j == i).map(|(_, r)| r.clone()).collect();
            AveragedResult::from_runs(&cell)
        })
        .collect()
}

/// The standard load grid used by the figure harnesses (0.05 … 1.0).
pub fn standard_load_grid() -> Vec<f64> {
    (1..=20).map(|i| i as f64 * 0.05).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_engine::ArbiterPolicy;
    use df_routing::MechanismSpec;
    use df_topology::DragonflyParams;
    use df_traffic::PatternSpec;

    fn tiny() -> SimConfig {
        let mut cfg = SimConfig::small(
            MechanismSpec::Min,
            ArbiterPolicy::RoundRobin,
            PatternSpec::Uniform,
            0.2,
        );
        cfg.params = DragonflyParams::figure1();
        cfg.warmup_cycles = 1_000;
        cfg.measure_cycles = 2_000;
        cfg
    }

    #[test]
    fn averaging_reduces_to_identity_for_one_run() {
        let r = run_single(&tiny());
        let avg = AveragedResult::from_runs(std::slice::from_ref(&r));
        assert_eq!(avg.throughput, r.throughput);
        assert_eq!(avg.runs, 1);
    }

    #[test]
    fn averaged_result_over_three_seeds() {
        let avg = run_averaged(&tiny(), &[1, 2, 3]);
        assert_eq!(avg.runs, 3);
        assert!(avg.throughput > 0.1);
        // Averaged counts can be fractional, like the paper's Table II.
        assert!(avg.injected_per_router.iter().any(|c| c.fract() != 0.0));
    }

    #[test]
    fn sweep_produces_point_per_load() {
        let loads = [0.1, 0.2];
        let pts = sweep_loads(&tiny(), &loads, &[1, 2]);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].load, 0.1);
        assert_eq!(pts[1].load, 0.2);
        assert!(pts[1].throughput > pts[0].throughput);
    }

    #[test]
    fn standard_grid_spans_unit_interval() {
        let g = standard_load_grid();
        assert_eq!(g.len(), 20);
        assert!((g[0] - 0.05).abs() < 1e-12);
        assert!((g[19] - 1.0).abs() < 1e-12);
    }
}
