//! Cooperative run control: cancellation tokens, deadlines, and a
//! per-cycle hook, checked by the scenario/sweep drivers at cycle
//! granularity.
//!
//! A long simulation must be interruptible without leaving partial
//! output behind: the driver loop calls [`RunCtl::checkpoint`] once per
//! driver cycle and aborts with a structured [`ScenarioError`] the
//! moment a token fires or the wall-clock deadline passes. Because
//! results only materialize when a run completes, an interrupted run
//! produces *nothing* — no partial tables, no cache entries.
//!
//! The hook exists for observers that need cycle-granular access to a
//! running job from outside the engine: progress accounting in
//! `df-service`, and its fault-injection harness (a hook that panics or
//! stalls at a chosen cycle exercises the service's panic isolation and
//! deadline paths deterministically).

use crate::error::ScenarioError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shareable cancellation flag. Clones observe the same flag, so a
/// controller thread can cancel a run executing on a worker thread.
///
/// ```
/// use dragonfly_core::CancelToken;
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trigger the token. Every clone observes the cancellation at its
    /// next checkpoint. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has [`CancelToken::cancel`] been called (on any clone)?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Per-run control block handed to the `*_ctl` runner entry points
/// ([`crate::run_scenario_ctl`], [`crate::run_scenario_once_ctl`],
/// [`crate::run_sweep_ctl`]). All fields are optional; the empty
/// [`RunCtl::NONE`] makes every checkpoint a no-op.
#[derive(Clone, Copy, Default)]
pub struct RunCtl<'a> {
    /// Cooperative cancellation; checked every driver cycle.
    pub cancel: Option<&'a CancelToken>,
    /// Wall-clock deadline; checked every driver cycle. Exceeding it
    /// aborts the run with [`ScenarioError::DeadlineExceeded`].
    pub deadline: Option<Instant>,
    /// Called once per driver cycle with the cycle number, before the
    /// cancellation and deadline checks. May panic or block: the service
    /// layer's fault-injection harness relies on exactly that.
    pub on_cycle: Option<&'a (dyn Fn(u64) + Sync)>,
}

impl RunCtl<'_> {
    /// The empty control block: no cancellation, no deadline, no hook.
    pub const NONE: RunCtl<'static> =
        RunCtl { cancel: None, deadline: None, on_cycle: None };

    /// One per-cycle checkpoint: run the hook, then fail fast on
    /// cancellation or a passed deadline. The driver loops call this at
    /// the top of every cycle, so an interrupted run stops within one
    /// cycle of the trigger.
    #[inline]
    pub fn checkpoint(&self, cycle: u64) -> Result<(), ScenarioError> {
        if let Some(hook) = self.on_cycle {
            hook(cycle);
        }
        if let Some(token) = self.cancel {
            if token.is_cancelled() {
                return Err(ScenarioError::Cancelled { at_cycle: cycle });
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(ScenarioError::DeadlineExceeded { at_cycle: cycle });
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for RunCtl<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunCtl")
            .field("cancel", &self.cancel)
            .field("deadline", &self.deadline)
            .field("on_cycle", &self.on_cycle.map(|_| "Fn(u64)"))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn empty_ctl_always_passes() {
        for cycle in 0..10 {
            RunCtl::NONE.checkpoint(cycle).unwrap();
        }
    }

    #[test]
    fn cancellation_fires_at_the_reporting_cycle() {
        let token = CancelToken::new();
        let ctl = RunCtl { cancel: Some(&token), ..RunCtl::NONE };
        ctl.checkpoint(5).unwrap();
        token.cancel();
        assert_eq!(
            ctl.checkpoint(6).unwrap_err(),
            ScenarioError::Cancelled { at_cycle: 6 }
        );
    }

    #[test]
    fn past_deadline_fails_future_deadline_passes() {
        let past = RunCtl {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..RunCtl::NONE
        };
        assert_eq!(
            past.checkpoint(3).unwrap_err(),
            ScenarioError::DeadlineExceeded { at_cycle: 3 }
        );
        let future = RunCtl {
            deadline: Some(Instant::now() + Duration::from_secs(3600)),
            ..RunCtl::NONE
        };
        future.checkpoint(3).unwrap();
    }

    #[test]
    fn hook_runs_before_the_checks() {
        let count = AtomicU64::new(0);
        let hook = |cycle: u64| {
            count.fetch_add(cycle, Ordering::Relaxed);
        };
        let token = CancelToken::new();
        token.cancel();
        let ctl = RunCtl { cancel: Some(&token), on_cycle: Some(&hook), ..RunCtl::NONE };
        // The hook observes the cycle even though the checkpoint fails.
        assert!(ctl.checkpoint(4).is_err());
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }
}
