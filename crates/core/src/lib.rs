//! # dragonfly-core
//!
//! A from-scratch, cycle-level Dragonfly network simulator reproducing
//! *"Throughput Unfairness in Dragonfly Networks under Realistic Traffic
//! Patterns"* (Fuentes, Vallejo, Camarero, Beivide, Valero — CLUSTER
//! 2015).
//!
//! The crate ties the substrates together:
//! * [`df_topology`] — canonical Dragonfly topology and arrangements,
//! * [`df_engine`] — routers, VCs, credits, links, allocators,
//! * [`df_routing`] — MIN / Valiant / PiggyBack / in-transit adaptive,
//! * [`df_traffic`] — UN, ADV+k, **ADVc** and extension patterns,
//! * [`df_stats`] — latency breakdown and fairness metrics,
//!
//! and exposes the experiment workflow of the paper's §IV: build a
//! [`SimConfig`], run warm-up + a 15,000-cycle measurement window, and
//! collect throughput, the five-component latency breakdown, per-router
//! injection counts, and the fairness metrics (Min inj, Max/Min, CoV).
//!
//! ```
//! use dragonfly_core::prelude::*;
//!
//! let mut cfg = SimConfig::small(
//!     MechanismSpec::InTransitMm,
//!     ArbiterPolicy::TransitPriority,
//!     PatternSpec::AdvConsecutive { spread: None },
//!     0.4,
//! );
//! cfg.params = DragonflyParams::figure1(); // 72 nodes for a fast doctest
//! cfg.warmup_cycles = 500;
//! cfg.measure_cycles = 1000;
//! let result = run_single(&cfg);
//! assert!(result.throughput > 0.0);
//! assert_eq!(result.mechanism, "In-Trns-MM");
//! ```

#![warn(missing_docs)]

mod config;
mod ctl;
mod error;
mod experiment;
mod scenario;
mod sim;
mod sink;
mod sweep;
mod timeline;

pub use config::SimConfig;
pub use ctl::{CancelToken, RunCtl};
pub use error::ScenarioError;
pub use experiment::{
    run_averaged, standard_load_grid, sweep_loads, AveragedResult, DEFAULT_SEEDS,
};
pub use scenario::{
    run_scenario, run_scenario_ctl, run_scenario_once, run_scenario_once_ctl,
    run_scenario_timeline, JobSummary, MechanismScenarioResult, MechanismSummary,
    ScenarioResult, ScenarioSummary,
};
pub use sim::{run_single, JobResult, JobSchedule, RunResult, Simulator};
pub use sink::{JobAccumulator, MeasurementSink};
pub use sweep::{run_sweep, run_sweep_ctl, run_sweep_hooked, SweepHooks, SweepRow, SweepTable};
pub use timeline::{JobWindow, TimelineSink, WindowRow};

/// Engine-version tag baked into `df-service` cache keys. Bump whenever
/// an engine change alters same-seed outputs (the same trigger that
/// re-records the golden digests — see `docs/DETERMINISM.md`): a stale
/// cache entry from an older engine must miss, not serve old bytes.
pub const ENGINE_VERSION: &str = concat!("v", env!("CARGO_PKG_VERSION"), "+pb8");

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use df_engine;
pub use df_routing;
pub use df_stats;
pub use df_topology;
pub use df_traffic;
pub use df_workload;

/// Everything needed for typical experiment scripts.
pub mod prelude {
    pub use crate::{
        run_averaged, run_scenario, run_scenario_ctl, run_scenario_once,
        run_scenario_once_ctl, run_scenario_timeline, run_single, run_sweep, run_sweep_ctl,
        run_sweep_hooked, standard_load_grid, sweep_loads, AveragedResult, CancelToken,
        JobResult, JobSchedule, JobWindow, MeasurementSink, RunCtl, RunResult, ScenarioError,
        ScenarioResult, SimConfig, Simulator, SweepHooks, SweepRow, SweepTable, TimelineSink,
        WindowRow, DEFAULT_SEEDS, ENGINE_VERSION,
    };
    pub use df_engine::{ArbiterPolicy, EngineConfig, TelemetrySpec};
    pub use df_routing::MechanismSpec;
    pub use df_stats::{FairnessReport, Histogram, LatencyAccumulator, OnlineStats};
    pub use df_topology::{
        Arrangement, DragonflyParams, GroupId, NodeId, Port, RouterId, Topology,
    };
    pub use df_traffic::PatternSpec;
    pub use df_workload::{
        InjectionSpec, JobSpec, PlacementSpec, PlacementVariant, ScenarioSpec, SweepSpec,
        TraceRecorder,
    };
}
