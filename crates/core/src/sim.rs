//! The simulator façade: build a network from a [`SimConfig`], run the
//! warm-up / measurement protocol, and extract a [`RunResult`].

use crate::config::{derive_seed, SimConfig};
use crate::sink::MeasurementSink;
use df_engine::{Network, RoutingPolicy};
use df_stats::FairnessReport;
use df_topology::{NodeId, Topology};
use df_traffic::{BernoulliInjector, Traffic};
use serde::{Deserialize, Serialize};

/// Everything measured by one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Mechanism label (e.g. `In-Trns-MM`).
    pub mechanism: String,
    /// Pattern label (e.g. `ADVc`).
    pub pattern: String,
    /// Configured offered load in phits/(node·cycle).
    pub load: f64,
    /// Master seed of this run.
    pub seed: u64,
    /// Offered load actually generated during the window (sanity echo).
    pub offered: f64,
    /// Accepted throughput in phits/(node·cycle) ("Accepted load").
    pub throughput: f64,
    /// Mean end-to-end packet latency in cycles.
    pub avg_latency: f64,
    /// Mean latency components `[base, misroute, local_q, global_q,
    /// injection_q]` (Figure 3 stacking).
    pub components: [f64; 5],
    /// Packets injected per router during the window (Figures 4/6).
    pub injected_per_router: Vec<u64>,
    /// Fairness metrics over the injection counts (Tables II/III).
    pub fairness: FairnessReport,
    /// Packets delivered during the window.
    pub delivered_packets: u64,
    /// 99th-percentile latency (cycles, histogram upper bound).
    pub p99_latency: Option<u64>,
}

/// A configured, steppable simulation.
pub struct Simulator {
    net: Network<Box<dyn RoutingPolicy>, MeasurementSink>,
    traffic: Box<dyn Traffic>,
    injector: BernoulliInjector,
    cfg: SimConfig,
}

impl Simulator {
    /// Build the network, traffic generator, and routing policy.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(cfg: &SimConfig) -> Self {
        cfg.validate().expect("invalid simulation config");
        let topo = Topology::new(cfg.params, cfg.arrangement);
        let engine_cfg = cfg.engine_config();
        let policy =
            cfg.mechanism
                .build(topo.clone(), &engine_cfg, derive_seed(cfg.seed, 0));
        let traffic = cfg.pattern.build(cfg.params, derive_seed(cfg.seed, 1));
        let injector =
            BernoulliInjector::new(cfg.load, engine_cfg.packet_size, derive_seed(cfg.seed, 2));
        let net = Network::new(topo, engine_cfg, policy, MeasurementSink::new());
        Self { net, traffic, injector, cfg: cfg.clone() }
    }

    /// Advance one cycle: Bernoulli generation at every node, then the
    /// network cycle.
    pub fn step(&mut self) {
        let nodes = self.net.topology().params().nodes();
        for n in 0..nodes {
            if self.injector.fire() {
                let src = NodeId(n);
                let dst = self.traffic.dest(src);
                self.net.offer(src, dst);
            }
        }
        self.net.step();
    }

    /// Read-only access to the underlying network (examples, tests).
    pub fn network(&self) -> &Network<Box<dyn RoutingPolicy>, MeasurementSink> {
        &self.net
    }

    /// Run the full warm-up + measurement protocol and report.
    pub fn run(mut self) -> RunResult {
        for _ in 0..self.cfg.warmup_cycles {
            self.step();
        }
        self.net.reset_counters();
        self.net.sink_mut().start_measurement();
        for _ in 0..self.cfg.measure_cycles {
            self.step();
        }
        self.into_result()
    }

    /// Extract the result from the current measurement window.
    fn into_result(self) -> RunResult {
        let params = *self.net.topology().params();
        let counters = self.net.counters();
        let sink = self.net.sink();
        let nodes = params.nodes() as f64;
        let cycles = counters.cycles as f64;
        let packet_size = self.net.config().packet_size as f64;
        let offered = counters.offered_packets as f64 * packet_size / (nodes * cycles);
        RunResult {
            mechanism: self.cfg.mechanism.label().to_string(),
            pattern: self.cfg.pattern.label(),
            load: self.cfg.load,
            seed: self.cfg.seed,
            offered,
            throughput: counters.throughput(params.nodes()),
            avg_latency: sink.latency.mean_latency(),
            components: sink.latency.component_means(),
            injected_per_router: counters.injected_per_router.clone(),
            fairness: FairnessReport::from_u64(&counters.injected_per_router),
            delivered_packets: counters.delivered_packets,
            p99_latency: sink.histogram.quantile(0.99),
        }
    }
}

/// Run one configuration to completion.
pub fn run_single(cfg: &SimConfig) -> RunResult {
    Simulator::new(cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_engine::ArbiterPolicy;
    use df_routing::MechanismSpec;
    use df_topology::DragonflyParams;
    use df_traffic::PatternSpec;

    fn tiny(mechanism: MechanismSpec, pattern: PatternSpec, load: f64) -> SimConfig {
        let mut cfg =
            SimConfig::small(mechanism, ArbiterPolicy::TransitPriority, pattern, load);
        cfg.params = DragonflyParams::figure1();
        cfg.warmup_cycles = 2_000;
        cfg.measure_cycles = 4_000;
        cfg
    }

    #[test]
    fn uniform_low_load_accepts_offered() {
        let cfg = tiny(MechanismSpec::Min, PatternSpec::Uniform, 0.2);
        let r = run_single(&cfg);
        // Below saturation, accepted ≈ offered.
        assert!((r.throughput - 0.2).abs() < 0.03, "throughput {}", r.throughput);
        assert!(r.avg_latency > 100.0, "latency {}", r.avg_latency);
        assert!(r.delivered_packets > 0);
    }

    #[test]
    fn components_sum_to_mean_latency() {
        let cfg = tiny(MechanismSpec::InTransitMm, PatternSpec::Uniform, 0.3);
        let r = run_single(&cfg);
        let sum: f64 = r.components.iter().sum();
        assert!(
            (sum - r.avg_latency).abs() < 1e-6,
            "breakdown must be exhaustive: {} vs {}",
            sum,
            r.avg_latency
        );
    }

    #[test]
    fn adv_min_capped_at_reciprocal_ap() {
        // MIN under ADV+1 cannot exceed 1/(a*p) = 1/8 phits/node/cycle.
        let cfg = tiny(MechanismSpec::Min, PatternSpec::Adversarial { offset: 1 }, 0.5);
        let r = run_single(&cfg);
        assert!(r.throughput < 0.16, "ADV+1 MIN capped: {}", r.throughput);
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let cfg = tiny(MechanismSpec::InTransitCrg, PatternSpec::AdvConsecutive { spread: None }, 0.3);
        let a = run_single(&cfg);
        let b = run_single(&cfg);
        assert_eq!(a.throughput, b.throughput);
        assert_eq!(a.injected_per_router, b.injected_per_router);
        assert_eq!(a.avg_latency, b.avg_latency);
    }

    #[test]
    fn different_seed_differs() {
        let cfg = tiny(MechanismSpec::ObliviousRrg, PatternSpec::Uniform, 0.3);
        let a = run_single(&cfg);
        let b = run_single(&cfg.with_seed(99));
        assert_ne!(a.injected_per_router, b.injected_per_router);
    }
}
