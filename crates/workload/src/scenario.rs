//! Serializable scenario specifications: a machine, a measurement
//! protocol, a mechanism set, and the jobs that share the network.

use crate::job::JobSpec;
use crate::placement::ResolvedPlacement;
use df_engine::{ArbiterPolicy, TelemetrySpec};
use df_routing::MechanismSpec;
use df_topology::{Arrangement, DragonflyParams};
use df_traffic::derive_seed;
use serde::{Deserialize, Serialize};

/// A complete multi-job experiment, loadable from JSON (`scenarios/`).
///
/// The mechanism axis is a *list* so one scenario file can contrast how
/// different routing mechanisms treat the same workload (e.g. which one
/// lets an ADVc aggressor starve a uniform victim).
///
/// See `docs/SCENARIOS.md` for the complete JSON schema reference.
///
/// # Examples
///
/// Parse and validate a minimal one-job scenario from JSON (only
/// `Option` fields — here the telemetry spec, the job's lifetime, and
/// placement slots — may be omitted):
///
/// ```
/// use df_workload::ScenarioSpec;
///
/// let spec = ScenarioSpec::from_json(r#"{
///   "name": "minimal",
///   "params": { "p": 2, "a": 4, "h": 2 },
///   "arrangement": "Palmtree",
///   "mechanisms": ["in-transit-mm"],
///   "arbiter": "TransitPriority",
///   "warmup_cycles": 500,
///   "measure_cycles": 1000,
///   "jobs": [{
///     "name": "app",
///     "placement": { "placement": "consecutive_groups", "first": 0, "count": 3 },
///     "pattern": { "pattern": "uniform" },
///     "injection": { "process": "bernoulli" },
///     "load": 0.3
///   }]
/// }"#).unwrap();
/// spec.validate(1).unwrap();
/// assert_eq!(spec.resolve_placements(1).unwrap()[0].nodes.len(), 24);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (used in result files).
    pub name: String,
    /// Machine sizing.
    pub params: DragonflyParams,
    /// Global-link arrangement.
    pub arrangement: Arrangement,
    /// Routing mechanisms to run the workload under.
    pub mechanisms: Vec<MechanismSpec>,
    /// Output-arbiter policy.
    pub arbiter: ArbiterPolicy,
    /// Warm-up cycles before statistics are tracked.
    pub warmup_cycles: u64,
    /// Measurement window in cycles.
    pub measure_cycles: u64,
    /// Opt-in windowed telemetry (window width + what to sample). An
    /// omitted JSON field deserializes to `None`: no timeline, no
    /// instrumentation cost.
    pub telemetry: Option<TelemetrySpec>,
    /// The jobs sharing the network. Node sets must be disjoint.
    pub jobs: Vec<JobSpec>,
    /// Group-shard count for parallel execution. `None` (an omitted JSON
    /// field) defers to the `DF_TEST_SHARDS` environment variable, then
    /// to the serial engine. Purely operational: same-seed results are
    /// bit-identical for every value, which is why the service layer
    /// strips it from cache keys.
    pub shards: Option<u32>,
}

impl ScenarioSpec {
    /// Resolve every job's placement for the given master `seed`, with a
    /// distinct sub-seed per job so two random placements in one scenario
    /// land on different node sets. This is *the* placement derivation —
    /// [`ScenarioSpec::validate`] and the scenario runner both use it.
    pub fn resolve_placements(&self, seed: u64) -> Result<Vec<ResolvedPlacement>, String> {
        self.jobs
            .iter()
            .enumerate()
            .map(|(j, job)| {
                job.placement
                    .resolve(&self.params, derive_seed(seed, 0x10 + j as u64))
                    .map_err(|e| format!("job `{}`: {e}", job.name))
            })
            .collect()
    }

    /// Validate the spec against its own machine: non-empty axes, sane
    /// loads, resolvable and pairwise-disjoint placements.
    ///
    /// `seed` must match the master seed later used to run the scenario
    /// (random placements are seed-dependent).
    pub fn validate(&self, seed: u64) -> Result<(), String> {
        if self.jobs.is_empty() {
            return Err("scenario has no jobs".into());
        }
        if self.mechanisms.is_empty() {
            return Err("scenario has no mechanisms".into());
        }
        if self.measure_cycles == 0 {
            return Err("measurement window must be nonzero".into());
        }
        if let Some(telemetry) = &self.telemetry {
            telemetry.validate()?;
        }
        let placements = self.resolve_placements(seed)?;
        // Jobs may time-share nodes: a node claim is only a conflict when
        // the two claimants' lifetimes overlap (a departed job's slots are
        // reusable by a later arrival).
        let mut claims: Vec<Vec<usize>> = vec![Vec::new(); self.params.nodes() as usize];
        for (j, (job, placement)) in self.jobs.iter().zip(&placements).enumerate() {
            if !(0.0..=8.0).contains(&job.load) {
                return Err(format!("job `{}` load {} out of range", job.name, job.load));
            }
            let (start, stop) = job.lifetime();
            if stop <= start {
                return Err(format!("job `{}` stops before it starts", job.name));
            }
            for n in &placement.nodes {
                for &other in &claims[n.idx()] {
                    if crate::lifetimes_overlap((start, stop), self.jobs[other].lifetime()) {
                        return Err(format!(
                            "jobs `{}` and `{}` both claim node {} with overlapping \
                             lifetimes",
                            self.jobs[other].name, job.name, n.0
                        ));
                    }
                }
                claims[n.idx()].push(j);
            }
        }
        Ok(())
    }

    /// Parse a scenario from JSON text.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("malformed scenario: {e}"))
    }

    /// Load a scenario from a JSON file.
    pub fn load(path: &str) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read scenario {path}: {e}"))?;
        Self::from_json(&text)
    }

    /// Serialize as pretty JSON (the `scenarios/*.json` format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("serialize scenario")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::injection::InjectionSpec;
    use crate::placement::PlacementSpec;
    use df_traffic::PatternSpec;

    fn job(name: &str, first: u32, count: u32) -> JobSpec {
        JobSpec {
            name: name.into(),
            placement: PlacementSpec::ConsecutiveGroups { first, count, slots: None },
            pattern: PatternSpec::Uniform,
            injection: InjectionSpec::Bernoulli,
            load: 0.3,
            start_cycle: None,
            stop_cycle: None,
        }
    }

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "two-jobs".into(),
            params: DragonflyParams::small(),
            arrangement: Arrangement::Palmtree,
            mechanisms: vec![MechanismSpec::InTransitMm, MechanismSpec::ObliviousCrg],
            arbiter: ArbiterPolicy::TransitPriority,
            warmup_cycles: 1000,
            measure_cycles: 2000,
            telemetry: None,
            jobs: vec![job("a", 0, 4), job("b", 4, 4)],
            shards: None,
        }
    }

    #[test]
    fn valid_spec_passes() {
        spec().validate(1).unwrap();
    }

    #[test]
    fn overlapping_jobs_rejected() {
        let mut s = spec();
        s.jobs[1] = job("b", 3, 4);
        let err = s.validate(1).unwrap_err();
        assert!(err.contains("both claim"), "{err}");
    }

    #[test]
    fn two_random_placements_get_distinct_group_sets() {
        // Regression: each job's placement must draw from its own
        // sub-seed, or two RandomGroups jobs always collide.
        let mut s = spec();
        for job in &mut s.jobs {
            job.placement = PlacementSpec::RandomGroups { count: 3, slots: None };
        }
        for seed in 0..20u64 {
            let placements = s.resolve_placements(seed).unwrap();
            assert_ne!(placements[0].nodes, placements[1].nodes, "seed {seed}");
        }
    }

    #[test]
    fn json_roundtrip() {
        let s = spec();
        let back = ScenarioSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn degenerate_axes_rejected() {
        let mut s = spec();
        s.mechanisms.clear();
        assert!(s.validate(1).is_err());
        let mut s = spec();
        s.jobs.clear();
        assert!(s.validate(1).is_err());
        let mut s = spec();
        s.jobs[0].load = 9.0;
        assert!(s.validate(1).is_err());
    }
}
