//! Job placements: which nodes of the machine a job occupies, and the
//! *virtual geometry* its traffic pattern is remapped onto.

use df_topology::{DragonflyParams, NodeId};
use df_traffic::derive_seed;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Declarative placement of a job onto the machine.
///
/// Group-granular placements (`ConsecutiveGroups`, `Groups`,
/// `RandomGroups`) optionally restrict the job to a subset of the `p`
/// node slots on every router — this is how two jobs share every router
/// of the machine while staying node-disjoint (interference studies).
///
/// # Examples
///
/// Resolve a two-group allocation on the figure1 machine (`p=2, a=4`:
/// 8 nodes per group) and inspect its virtual geometry:
///
/// ```
/// use df_topology::DragonflyParams;
/// use df_workload::PlacementSpec;
///
/// let params = DragonflyParams::figure1();
/// let spec = PlacementSpec::ConsecutiveGroups { first: 1, count: 2, slots: None };
/// let placement = spec.resolve(&params, 0).unwrap();
/// assert_eq!(placement.nodes.len(), 16);
/// // One allocated machine group per virtual group.
/// assert_eq!(placement.group_size, 8);
/// assert_eq!(placement.virtual_groups(), 2);
///
/// // The same spec round-trips through the scenario JSON format.
/// let json = serde_json::to_string(&spec).unwrap();
/// assert!(json.contains("\"placement\":\"consecutive_groups\""));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "placement", rename_all = "snake_case")]
pub enum PlacementSpec {
    /// `count` consecutive groups starting at `first` — the scheduler's
    /// simplest choice and the paper's §III hazard.
    ConsecutiveGroups {
        /// First group of the allocation.
        first: u32,
        /// Number of consecutive groups.
        count: u32,
        /// Node slots used on every router (`None` = all `p`).
        slots: Option<Vec<u32>>,
    },
    /// An explicit group list (e.g. a scattered allocation).
    Groups {
        /// The groups, in job order.
        groups: Vec<u32>,
        /// Node slots used on every router (`None` = all `p`).
        slots: Option<Vec<u32>>,
    },
    /// `count` groups drawn without replacement from a seeded shuffle.
    RandomGroups {
        /// Number of groups.
        count: u32,
        /// Node slots used on every router (`None` = all `p`).
        slots: Option<Vec<u32>>,
    },
    /// `count` nodes dealt round-robin over all routers of the machine
    /// (slot-major: one node per router, then a second slot, …),
    /// starting `offset` deals in.
    RoundRobinRouters {
        /// Number of nodes.
        count: u32,
        /// Deals skipped before the first node (`None` = 0).
        offset: Option<u32>,
    },
    /// An explicit node list, in job order.
    Nodes {
        /// Raw node ids.
        nodes: Vec<u32>,
    },
}

/// A placement resolved against a concrete machine.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedPlacement {
    /// The job's nodes, in virtual-index order.
    pub nodes: Vec<NodeId>,
    /// Virtual-group size for pattern remapping: group-granular
    /// placements put one allocated group's nodes in each virtual group;
    /// round-robin placements put one *machine group's routers* (at one
    /// slot) in each.
    pub group_size: u32,
}

impl ResolvedPlacement {
    /// Number of virtual groups (the last one may be partial).
    pub fn virtual_groups(&self) -> u32 {
        (self.nodes.len() as u32).div_ceil(self.group_size)
    }
}

fn resolve_slots(slots: &Option<Vec<u32>>, params: &DragonflyParams) -> Result<Vec<u32>, String> {
    match slots {
        None => Ok((0..params.p).collect()),
        Some(s) => {
            if s.is_empty() {
                return Err("slots list must not be empty".into());
            }
            let mut seen = vec![false; params.p as usize];
            for &slot in s {
                if slot >= params.p {
                    return Err(format!("slot {slot} out of range (p = {})", params.p));
                }
                if std::mem::replace(&mut seen[slot as usize], true) {
                    return Err(format!("slot {slot} listed twice"));
                }
            }
            Ok(s.clone())
        }
    }
}

fn group_nodes(params: &DragonflyParams, group: u32, slots: &[u32], out: &mut Vec<NodeId>) {
    for local in 0..params.a {
        let router = group * params.a + local;
        for &slot in slots {
            out.push(NodeId(router * params.p + slot));
        }
    }
}

impl PlacementSpec {
    /// Resolve to a concrete node set on `params`. `seed` only affects
    /// [`PlacementSpec::RandomGroups`].
    pub fn resolve(
        &self,
        params: &DragonflyParams,
        seed: u64,
    ) -> Result<ResolvedPlacement, String> {
        match self {
            PlacementSpec::ConsecutiveGroups { first, count, slots } => {
                if *count == 0 || first + count > params.groups() {
                    return Err(format!(
                        "groups {first}..{} out of range (machine has {})",
                        first + count,
                        params.groups()
                    ));
                }
                let groups: Vec<u32> = (*first..first + count).collect();
                Self::resolve_group_list(params, &groups, slots)
            }
            PlacementSpec::Groups { groups, slots } => {
                let mut seen = vec![false; params.groups() as usize];
                for &g in groups {
                    if g >= params.groups() {
                        return Err(format!("group {g} out of range"));
                    }
                    if std::mem::replace(&mut seen[g as usize], true) {
                        return Err(format!("group {g} listed twice"));
                    }
                }
                if groups.is_empty() {
                    return Err("group list must not be empty".into());
                }
                Self::resolve_group_list(params, groups, slots)
            }
            PlacementSpec::RandomGroups { count, slots } => {
                if *count == 0 || *count > params.groups() {
                    return Err(format!("cannot pick {count} of {} groups", params.groups()));
                }
                let mut all: Vec<u32> = (0..params.groups()).collect();
                let mut rng = SmallRng::seed_from_u64(derive_seed(seed, 0xD15C));
                for i in (1..all.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    all.swap(i, j);
                }
                all.truncate(*count as usize);
                Self::resolve_group_list(params, &all, slots)
            }
            PlacementSpec::RoundRobinRouters { count, offset } => {
                let routers = params.routers();
                let offset = offset.unwrap_or(0);
                if *count == 0 || offset + count > routers * params.p {
                    return Err(format!(
                        "round-robin range {offset}..{} exceeds {} node deals",
                        offset + count,
                        routers * params.p
                    ));
                }
                let nodes = (offset..offset + count)
                    .map(|k| {
                        let router = k % routers;
                        let slot = k / routers;
                        NodeId(router * params.p + slot)
                    })
                    .collect();
                // One deal covers a group's `a` routers consecutively, so
                // chunks of `a` nodes are group-aligned.
                Ok(ResolvedPlacement { nodes, group_size: params.a })
            }
            PlacementSpec::Nodes { nodes } => {
                let mut seen = vec![false; params.nodes() as usize];
                for &n in nodes {
                    if n >= params.nodes() {
                        return Err(format!("node {n} out of range"));
                    }
                    if std::mem::replace(&mut seen[n as usize], true) {
                        return Err(format!("node {n} listed twice"));
                    }
                }
                if nodes.is_empty() {
                    return Err("node list must not be empty".into());
                }
                let m = nodes.len() as u32;
                Ok(ResolvedPlacement {
                    nodes: nodes.iter().map(|&n| NodeId(n)).collect(),
                    group_size: (params.a * params.p).min(m),
                })
            }
        }
    }

    fn resolve_group_list(
        params: &DragonflyParams,
        groups: &[u32],
        slots: &Option<Vec<u32>>,
    ) -> Result<ResolvedPlacement, String> {
        let slots = resolve_slots(slots, params)?;
        let mut nodes = Vec::with_capacity(groups.len() * (params.a * slots.len() as u32) as usize);
        for &g in groups {
            group_nodes(params, g, &slots, &mut nodes);
        }
        Ok(ResolvedPlacement { nodes, group_size: params.a * slots.len() as u32 })
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            PlacementSpec::ConsecutiveGroups { first, count, .. } => {
                format!("groups[{first}..{}]", first + count)
            }
            PlacementSpec::Groups { groups, .. } => format!("groups{groups:?}"),
            PlacementSpec::RandomGroups { count, .. } => format!("random-{count}-groups"),
            PlacementSpec::RoundRobinRouters { count, .. } => format!("rr-{count}-nodes"),
            PlacementSpec::Nodes { nodes } => format!("{}-explicit-nodes", nodes.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DragonflyParams {
        DragonflyParams::small() // p=3, a=6, h=3, 19 groups, 342 nodes
    }

    #[test]
    fn consecutive_groups_cover_their_nodes_in_group_major_order() {
        let p = params();
        let r = PlacementSpec::ConsecutiveGroups { first: 1, count: 2, slots: None }
            .resolve(&p, 0)
            .unwrap();
        assert_eq!(r.nodes.len(), (2 * p.a * p.p) as usize);
        assert_eq!(r.group_size, p.a * p.p);
        assert_eq!(r.virtual_groups(), 2);
        // First virtual group is exactly machine group 1.
        for (i, n) in r.nodes.iter().take(r.group_size as usize).enumerate() {
            assert_eq!(n.group(&p).0, 1, "entry {i}");
        }
        assert!(r.nodes[r.group_size as usize..].iter().all(|n| n.group(&p).0 == 2));
    }

    #[test]
    fn slot_subsets_share_routers_disjointly() {
        let p = params();
        let a = PlacementSpec::ConsecutiveGroups { first: 0, count: 19, slots: Some(vec![0, 1]) }
            .resolve(&p, 0)
            .unwrap();
        let b = PlacementSpec::ConsecutiveGroups { first: 0, count: 19, slots: Some(vec![2]) }
            .resolve(&p, 0)
            .unwrap();
        assert_eq!(a.nodes.len() + b.nodes.len(), p.nodes() as usize);
        let mut seen = vec![false; p.nodes() as usize];
        for n in a.nodes.iter().chain(&b.nodes) {
            assert!(!std::mem::replace(&mut seen[n.idx()], true), "overlap at {n:?}");
        }
        assert_eq!(a.group_size, p.a * 2);
        assert_eq!(b.group_size, p.a);
    }

    #[test]
    fn random_groups_deterministic_per_seed_and_distinct() {
        let p = params();
        let spec = PlacementSpec::RandomGroups { count: 4, slots: None };
        let a = spec.resolve(&p, 7).unwrap();
        let b = spec.resolve(&p, 7).unwrap();
        let c = spec.resolve(&p, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a.nodes, c.nodes);
        assert_eq!(a.virtual_groups(), 4);
    }

    #[test]
    fn round_robin_deals_one_node_per_router() {
        let p = params();
        let routers = p.routers();
        let r = PlacementSpec::RoundRobinRouters { count: routers, offset: None }
            .resolve(&p, 0)
            .unwrap();
        assert_eq!(r.nodes.len(), routers as usize);
        for (k, n) in r.nodes.iter().enumerate() {
            assert_eq!(n.router(&p).0, k as u32);
            assert_eq!(n.slot(&p), 0);
        }
        // Offset by one full deal lands on slot 1.
        let r2 = PlacementSpec::RoundRobinRouters { count: routers, offset: Some(routers) }
            .resolve(&p, 0)
            .unwrap();
        assert!(r2.nodes.iter().all(|n| n.slot(&p) == 1));
    }

    #[test]
    fn invalid_specs_rejected() {
        let p = params();
        assert!(PlacementSpec::ConsecutiveGroups { first: 18, count: 2, slots: None }
            .resolve(&p, 0)
            .is_err());
        assert!(PlacementSpec::Groups { groups: vec![1, 1], slots: None }
            .resolve(&p, 0)
            .is_err());
        assert!(PlacementSpec::ConsecutiveGroups { first: 0, count: 1, slots: Some(vec![3]) }
            .resolve(&p, 0)
            .is_err());
        assert!(PlacementSpec::Nodes { nodes: vec![999] }.resolve(&p, 0).is_err());
        assert!(PlacementSpec::RoundRobinRouters { count: 0, offset: None }
            .resolve(&p, 0)
            .is_err());
    }
}
