//! Injection processes: *when* (and, for traces, *where to*) each node of
//! a job generates packets.
//!
//! This generalizes the single global Bernoulli process of the seed
//! simulator. Every process owns the node set it drives and keeps one RNG
//! substream per node (`derive_seed(seed, node)`), so a node's arrival
//! sequence is a pure function of `(seed, node)` — stable under placement
//! changes and under the presence of other jobs.

use crate::trace::{TraceEvent, TraceReplay};
use df_topology::NodeId;
use df_traffic::derive_seed;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One generation request emitted by an injection process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// The generating node.
    pub src: NodeId,
    /// Fixed destination (trace replay); `None` lets the job's traffic
    /// pattern choose.
    pub dst: Option<NodeId>,
}

/// A packet-arrival process over a fixed node set.
///
/// # Examples
///
/// Build a process from its declarative [`InjectionSpec`] and drain the
/// arrivals it emits over a few cycles:
///
/// ```
/// use df_topology::NodeId;
/// use df_workload::{Arrival, InjectionProcess, InjectionSpec};
///
/// let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
/// // 0.4 phits/(node·cycle) at 8-phit packets = one packet per node
/// // every ~20 cycles, from per-node substreams of master seed 1.
/// let mut process = InjectionSpec::Bernoulli.build(nodes, 0.4, 8, 1).unwrap();
/// let mut out: Vec<Arrival> = Vec::new();
/// for cycle in 0..200 {
///     process.arrivals(cycle, &mut out);
/// }
/// assert!(!out.is_empty());
/// // Rate processes leave the destination to the job's pattern.
/// assert!(out.iter().all(|a| a.src.0 < 4 && a.dst.is_none()));
/// ```
pub trait InjectionProcess: Send {
    /// Append every arrival this process emits at `cycle` to `out`.
    ///
    /// Called once per simulated cycle with strictly increasing `cycle`
    /// values; processes may keep per-node state (burst phases, trace
    /// cursors) between calls.
    fn arrivals(&mut self, cycle: u64, out: &mut Vec<Arrival>);

    /// Human-readable process name.
    fn label(&self) -> &'static str;
}

/// Per-node RNG substreams for the rate-based processes.
fn node_rngs(nodes: &[NodeId], seed: u64) -> Vec<SmallRng> {
    nodes
        .iter()
        .map(|n| SmallRng::seed_from_u64(derive_seed(seed, n.0 as u64)))
        .collect()
}

fn packet_probability(load: f64, packet_size: u32) -> Result<f64, String> {
    if load.is_nan() || load < 0.0 {
        return Err(format!("load {load} must be non-negative"));
    }
    let prob = load / packet_size as f64;
    if prob > 1.0 {
        return Err(format!(
            "load {load} phits/node/cycle exceeds one packet per cycle"
        ));
    }
    Ok(prob)
}

/// Independent Bernoulli draws per node per cycle (§IV-A), the seed
/// simulator's process reformulated over an explicit node set.
pub struct BernoulliProcess {
    nodes: Vec<NodeId>,
    prob: f64,
    rngs: Vec<SmallRng>,
}

impl BernoulliProcess {
    /// `load` in phits/(node·cycle) over `nodes`.
    pub fn new(nodes: Vec<NodeId>, load: f64, packet_size: u32, seed: u64) -> Result<Self, String> {
        let prob = packet_probability(load, packet_size)?;
        let rngs = node_rngs(&nodes, seed);
        Ok(Self { nodes, prob, rngs })
    }
}

impl InjectionProcess for BernoulliProcess {
    fn arrivals(&mut self, _cycle: u64, out: &mut Vec<Arrival>) {
        if self.prob <= 0.0 {
            return;
        }
        for (i, &src) in self.nodes.iter().enumerate() {
            if self.rngs[i].gen_bool(self.prob) {
                out.push(Arrival { src, dst: None });
            }
        }
    }

    fn label(&self) -> &'static str {
        "bernoulli"
    }
}

/// Markov-modulated on/off bursts: each node alternates between an *on*
/// phase (geometric length, mean `mean_burst` cycles) where it injects as
/// a Bernoulli process at the peak rate, and an *off* phase (mean
/// `mean_idle` cycles) where it is silent. The peak rate is scaled so the
/// long-run offered load equals the configured `load`.
pub struct OnOffProcess {
    nodes: Vec<NodeId>,
    /// Bernoulli probability while a node is on.
    peak_prob: f64,
    /// Per-cycle on→off transition probability (`1/mean_burst`).
    p_on_off: f64,
    /// Per-cycle off→on transition probability (`1/mean_idle`).
    p_off_on: f64,
    on: Vec<bool>,
    rngs: Vec<SmallRng>,
}

impl OnOffProcess {
    /// `load` in phits/(node·cycle) averaged over bursts and idles;
    /// `mean_burst`/`mean_idle` are the mean phase lengths in cycles.
    pub fn new(
        nodes: Vec<NodeId>,
        load: f64,
        packet_size: u32,
        mean_burst: f64,
        mean_idle: f64,
        seed: u64,
    ) -> Result<Self, String> {
        if !(mean_burst >= 1.0 && mean_idle >= 0.0) {
            return Err(format!(
                "on/off phases need mean_burst >= 1 and mean_idle >= 0 \
                 (got {mean_burst}, {mean_idle})"
            ));
        }
        let duty = mean_burst / (mean_burst + mean_idle);
        let mean_prob = packet_probability(load, packet_size)?;
        let peak_prob = mean_prob / duty;
        if peak_prob > 1.0 {
            return Err(format!(
                "on/off burst peak rate {peak_prob:.3} exceeds one packet per \
                 cycle; raise the duty cycle or lower the load"
            ));
        }
        let mut rngs = node_rngs(&nodes, seed);
        // Start each node in a phase drawn from the stationary distribution
        // so the process needs no extra warm-up.
        let on = rngs.iter_mut().map(|r| r.gen_bool(duty)).collect();
        Ok(Self {
            nodes,
            peak_prob,
            p_on_off: 1.0 / mean_burst,
            p_off_on: if mean_idle > 0.0 { 1.0 / mean_idle } else { 1.0 },
            on,
            rngs,
        })
    }
}

impl InjectionProcess for OnOffProcess {
    fn arrivals(&mut self, _cycle: u64, out: &mut Vec<Arrival>) {
        for (i, &src) in self.nodes.iter().enumerate() {
            let rng = &mut self.rngs[i];
            if self.on[i] {
                if self.peak_prob > 0.0 && rng.gen_bool(self.peak_prob) {
                    out.push(Arrival { src, dst: None });
                }
                if rng.gen_bool(self.p_on_off) {
                    self.on[i] = false;
                }
            } else if rng.gen_bool(self.p_off_on) {
                self.on[i] = true;
            }
        }
    }

    fn label(&self) -> &'static str {
        "on_off"
    }
}

/// Poisson-batched arrivals: each node sources `k ~ Poisson(load /
/// packet_size)` packets per cycle, modelling bursty DMA-style offered
/// traffic where several packets hit the source queue in the same cycle.
pub struct PoissonProcess {
    nodes: Vec<NodeId>,
    lambda: f64,
    rngs: Vec<SmallRng>,
}

impl PoissonProcess {
    /// `load` in phits/(node·cycle); per-cycle batch mean is
    /// `load / packet_size` packets.
    pub fn new(nodes: Vec<NodeId>, load: f64, packet_size: u32, seed: u64) -> Result<Self, String> {
        if load.is_nan() || load < 0.0 {
            return Err(format!("load {load} must be non-negative"));
        }
        let lambda = load / packet_size as f64;
        if lambda > 20.0 {
            return Err(format!("poisson batch mean {lambda} is absurd"));
        }
        let rngs = node_rngs(&nodes, seed);
        Ok(Self { nodes, lambda, rngs })
    }
}

/// Knuth's product-of-uniforms Poisson sampler (fine for small λ).
fn poisson_draw(rng: &mut SmallRng, lambda: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let limit = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen_range(0u64..1 << 53) as f64 / (1u64 << 53) as f64;
        if p <= limit {
            return k;
        }
        k += 1;
    }
}

impl InjectionProcess for PoissonProcess {
    fn arrivals(&mut self, _cycle: u64, out: &mut Vec<Arrival>) {
        for (i, &src) in self.nodes.iter().enumerate() {
            for _ in 0..poisson_draw(&mut self.rngs[i], self.lambda) {
                out.push(Arrival { src, dst: None });
            }
        }
    }

    fn label(&self) -> &'static str {
        "poisson"
    }
}

/// Declarative injection-process description carried by a job spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "process", rename_all = "snake_case")]
pub enum InjectionSpec {
    /// Independent per-node Bernoulli draws (the paper's process).
    Bernoulli,
    /// Markov-modulated on/off bursts.
    OnOff {
        /// Mean burst length in cycles.
        mean_burst: f64,
        /// Mean idle length in cycles.
        mean_idle: f64,
    },
    /// Poisson-batched arrivals.
    Poisson,
    /// Replay a recorded `(cycle, src, dst)` event stream from a JSON
    /// file (see [`TraceRecorder`](crate::TraceRecorder)); the job's
    /// pattern and load are ignored.
    Trace {
        /// Path of the trace file, relative to the working directory.
        path: String,
    },
}

impl InjectionSpec {
    /// Instantiate the process over `nodes` with a deterministic `seed`.
    pub fn build(
        &self,
        nodes: Vec<NodeId>,
        load: f64,
        packet_size: u32,
        seed: u64,
    ) -> Result<Box<dyn InjectionProcess>, String> {
        Ok(match self {
            InjectionSpec::Bernoulli => {
                Box::new(BernoulliProcess::new(nodes, load, packet_size, seed)?)
            }
            InjectionSpec::OnOff { mean_burst, mean_idle } => Box::new(OnOffProcess::new(
                nodes,
                load,
                packet_size,
                *mean_burst,
                *mean_idle,
                seed,
            )?),
            InjectionSpec::Poisson => {
                Box::new(PoissonProcess::new(nodes, load, packet_size, seed)?)
            }
            InjectionSpec::Trace { path } => {
                let events = crate::trace::load_trace(path)?;
                Box::new(TraceReplay::from_events(events))
            }
        })
    }

    /// Instantiate with the trace, if any, supplied directly instead of
    /// read from disk (tests, programmatic use).
    pub fn build_with_trace(
        &self,
        nodes: Vec<NodeId>,
        load: f64,
        packet_size: u32,
        seed: u64,
        trace: Option<Vec<TraceEvent>>,
    ) -> Result<Box<dyn InjectionProcess>, String> {
        match (self, trace) {
            (InjectionSpec::Trace { .. }, Some(events)) => {
                Ok(Box::new(TraceReplay::from_events(events)))
            }
            (spec, _) => spec.build(nodes, load, packet_size, seed),
        }
    }

    /// Short label for tables and filenames.
    pub fn label(&self) -> String {
        match self {
            InjectionSpec::Bernoulli => "bernoulli".into(),
            InjectionSpec::OnOff { mean_burst, mean_idle } => {
                format!("onoff({mean_burst:.0}/{mean_idle:.0})")
            }
            InjectionSpec::Poisson => "poisson".into(),
            InjectionSpec::Trace { path } => format!("trace({path})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn rate_of(proc_: &mut dyn InjectionProcess, n_nodes: u32, cycles: u64) -> f64 {
        let mut out = Vec::new();
        let mut total = 0usize;
        for t in 0..cycles {
            out.clear();
            proc_.arrivals(t, &mut out);
            total += out.len();
        }
        total as f64 / (n_nodes as f64 * cycles as f64)
    }

    #[test]
    fn bernoulli_rate_matches_load() {
        let mut p = BernoulliProcess::new(nodes(16), 0.4, 8, 7).unwrap();
        let rate = rate_of(&mut p, 16, 20_000);
        assert!((rate - 0.05).abs() < 0.004, "rate {rate}");
    }

    #[test]
    fn on_off_long_run_rate_matches_load_and_bursts_exist() {
        let mut p = OnOffProcess::new(nodes(16), 0.4, 8, 50.0, 150.0, 7).unwrap();
        // Peak rate is 4x the mean: bursts must be visibly denser than
        // the long-run average.
        let mut out = Vec::new();
        let mut per_cycle = Vec::new();
        for t in 0..40_000u64 {
            out.clear();
            p.arrivals(t, &mut out);
            per_cycle.push(out.len());
        }
        let total: usize = per_cycle.iter().sum();
        let rate = total as f64 / (16.0 * 40_000.0);
        assert!((rate - 0.05).abs() < 0.006, "long-run rate {rate}");
        // Some cycles see multiple simultaneous arrivals (bursts), many
        // see none (idle phases) — far spikier than Bernoulli at 0.05.
        let idle = per_cycle.iter().filter(|&&c| c == 0).count();
        assert!(idle > 10_000, "idle cycles {idle}");
        assert!(per_cycle.iter().any(|&c| c >= 3), "no burst cycles seen");
    }

    #[test]
    fn on_off_overload_rejected() {
        // Duty cycle 1/100 would need a peak probability of 5 > 1.
        assert!(OnOffProcess::new(nodes(4), 0.4, 8, 1.0, 99.0, 1).is_err());
    }

    #[test]
    fn poisson_rate_and_batches() {
        let mut p = PoissonProcess::new(nodes(8), 1.6, 8, 3).unwrap();
        let mut out = Vec::new();
        let mut total = 0usize;
        let mut batched = false;
        for t in 0..20_000u64 {
            out.clear();
            p.arrivals(t, &mut out);
            // A batch: the same src appearing twice in one cycle.
            for w in 0..out.len() {
                for v in 0..w {
                    if out[v].src == out[w].src {
                        batched = true;
                    }
                }
            }
            total += out.len();
        }
        let rate = total as f64 / (8.0 * 20_000.0);
        assert!((rate - 0.2).abs() < 0.01, "rate {rate}");
        assert!(batched, "poisson batches never produced >1 packet");
    }

    #[test]
    fn processes_are_placement_stable() {
        // The same node draws the same sequence no matter which other
        // nodes share the process.
        let mut a = BernoulliProcess::new(vec![NodeId(9)], 0.8, 8, 5).unwrap();
        let mut b =
            BernoulliProcess::new(vec![NodeId(3), NodeId(9), NodeId(21)], 0.8, 8, 5).unwrap();
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for t in 0..2_000u64 {
            out_a.clear();
            out_b.clear();
            a.arrivals(t, &mut out_a);
            b.arrivals(t, &mut out_b);
            let hit_a = !out_a.is_empty();
            let hit_b = out_b.iter().any(|arr| arr.src == NodeId(9));
            assert_eq!(hit_a, hit_b, "node 9 diverged at cycle {t}");
        }
    }

    #[test]
    fn spec_builds_every_rate_variant() {
        for spec in [
            InjectionSpec::Bernoulli,
            InjectionSpec::OnOff { mean_burst: 20.0, mean_idle: 20.0 },
            InjectionSpec::Poisson,
        ] {
            let mut p = spec.build(nodes(4), 0.4, 8, 1).unwrap();
            let mut out = Vec::new();
            for t in 0..500 {
                p.arrivals(t, &mut out);
            }
            assert!(!out.is_empty(), "{} produced nothing", spec.label());
        }
    }
}
