//! Jobs: a placement, a traffic pattern remapped into the job's node
//! set, an injection process, a load, and a lifetime.

use crate::injection::InjectionSpec;
use crate::placement::{PlacementSpec, ResolvedPlacement};
use df_topology::{DragonflyParams, NodeId};
use df_traffic::{derive_seed, PatternSpec, Traffic};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Declarative description of one job in a scenario.
///
/// # Examples
///
/// A job with a bounded lifetime generates only inside its
/// `[start_cycle, stop_cycle)` window — the scenario runner gates
/// generation with [`JobSpec::active`] and frees the job's node slots
/// at departure for reuse by later arrivals:
///
/// ```
/// use df_traffic::PatternSpec;
/// use df_workload::{InjectionSpec, JobSpec, PlacementSpec};
///
/// let job = JobSpec {
///     name: "burst".into(),
///     placement: PlacementSpec::ConsecutiveGroups { first: 0, count: 2, slots: None },
///     pattern: PatternSpec::Uniform,
///     injection: InjectionSpec::Bernoulli,
///     load: 0.3,
///     start_cycle: Some(1_000),
///     stop_cycle: Some(5_000),
/// };
/// assert!(!job.active(999));
/// assert!(job.active(1_000) && job.active(4_999));
/// assert!(!job.active(5_000));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Job name (used in result tables).
    pub name: String,
    /// Where the job's processes run.
    pub placement: PlacementSpec,
    /// Communication pattern *within* the job (remapped onto its nodes).
    pub pattern: PatternSpec,
    /// When packets are generated.
    pub injection: InjectionSpec,
    /// Offered load in phits/(job node·cycle).
    pub load: f64,
    /// First driver cycle (warm-up included) the job generates at
    /// (`None` = 0).
    pub start_cycle: Option<u64>,
    /// Driver cycle the job stops generating at (`None` = never).
    pub stop_cycle: Option<u64>,
}

impl JobSpec {
    /// Whether the job generates traffic at driver cycle `cycle`.
    #[inline]
    pub fn active(&self, cycle: u64) -> bool {
        cycle >= self.start_cycle.unwrap_or(0)
            && self.stop_cycle.is_none_or(|stop| cycle < stop)
    }

    /// The job's half-open lifetime `[start, stop)` with defaults
    /// resolved (`0` / `u64::MAX`).
    #[inline]
    pub fn lifetime(&self) -> (u64, u64) {
        (self.start_cycle.unwrap_or(0), self.stop_cycle.unwrap_or(u64::MAX))
    }
}

/// Whether two half-open `[start, stop)` lifetimes overlap. *The*
/// predicate deciding when two jobs may share nodes (they may iff their
/// lifetimes do **not** overlap) — `ScenarioSpec::validate` and the
/// driven-mode simulator's schedule check both use it, so the `Err` path
/// and the panic path can never drift apart.
#[inline]
pub fn lifetimes_overlap(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 < b.1 && b.0 < a.1
}

/// A [`PatternSpec`] remapped into a job's node set.
///
/// The job's nodes form a *virtual machine*: virtual index = position in
/// the placement's node order, virtual group = chunk of
/// `placement.group_size` consecutive indices (one allocated machine
/// group per chunk for group-granular placements). Patterns then act on
/// the virtual geometry: a job running `Uniform` on consecutive groups
/// produces exactly the paper's §III network-level ADVc hazard, and a job
/// running `AdvConsecutive` attacks the groups *it* occupies.
///
/// # Examples
///
/// Remap a uniform pattern onto a two-group placement; destinations
/// stay inside the job:
///
/// ```
/// use df_topology::DragonflyParams;
/// use df_traffic::PatternSpec;
/// use df_workload::{JobTraffic, PlacementSpec};
///
/// let params = DragonflyParams::figure1();
/// let placement = PlacementSpec::ConsecutiveGroups { first: 1, count: 2, slots: None }
///     .resolve(&params, 0)
///     .unwrap();
/// let mut traffic = JobTraffic::new(&PatternSpec::Uniform, &placement, &params, 7).unwrap();
/// for vsrc in 0..16 {
///     let dst = traffic.dest_of_virtual(vsrc);
///     assert!(placement.nodes.contains(&dst));
/// }
/// ```
pub struct JobTraffic {
    nodes: Vec<NodeId>,
    group_size: u32,
    /// Virtual group count.
    k: u32,
    gen: PatternGen,
}

enum PatternGen {
    Uniform(SmallRng),
    Adversarial { offset: u32, rng: SmallRng },
    AdvConsecutive { spread: u32, rng: SmallRng },
    GroupLocal(SmallRng),
    Permutation(Vec<u32>),
    HotSpot { hot: u32, fraction: f64, rng: SmallRng },
    Mix { first: Box<PatternGen>, second: Box<PatternGen>, first_fraction: f64, rng: SmallRng },
}

impl JobTraffic {
    /// Remap `spec` onto `placement` with a deterministic `seed`.
    /// `params.h` supplies the default ADVc spread.
    pub fn new(
        spec: &PatternSpec,
        placement: &ResolvedPlacement,
        params: &DragonflyParams,
        seed: u64,
    ) -> Result<Self, String> {
        let m = placement.nodes.len() as u32;
        if m < 2 {
            return Err("a job needs at least two nodes".into());
        }
        let k = placement.virtual_groups();
        let gen = Self::compile(spec, m, k, params.h, seed)?;
        Ok(Self {
            nodes: placement.nodes.clone(),
            group_size: placement.group_size,
            k,
            gen,
        })
    }

    fn compile(
        spec: &PatternSpec,
        m: u32,
        k: u32,
        h: u32,
        seed: u64,
    ) -> Result<PatternGen, String> {
        Ok(match spec {
            PatternSpec::Uniform => PatternGen::Uniform(SmallRng::seed_from_u64(seed)),
            PatternSpec::Adversarial { offset } => {
                if k < 2 {
                    return Err("adversarial pattern needs >= 2 virtual groups".into());
                }
                if *offset == 0 || *offset >= k {
                    return Err(format!("ADV offset {offset} out of range for {k} groups"));
                }
                PatternGen::Adversarial { offset: *offset, rng: SmallRng::seed_from_u64(seed) }
            }
            PatternSpec::AdvConsecutive { spread } => {
                if k < 2 {
                    return Err("ADVc pattern needs >= 2 virtual groups".into());
                }
                let spread = spread.unwrap_or(h).clamp(1, k - 1);
                PatternGen::AdvConsecutive { spread, rng: SmallRng::seed_from_u64(seed) }
            }
            PatternSpec::GroupLocal => PatternGen::GroupLocal(SmallRng::seed_from_u64(seed)),
            PatternSpec::Permutation => {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut table: Vec<u32> = (0..m).collect();
                for i in (1..m as usize).rev() {
                    let j = rng.gen_range(0..=i);
                    table.swap(i, j);
                }
                // Repair fixed points so no node talks to itself.
                for i in 0..m as usize {
                    if table[i] == i as u32 {
                        let j = (i + 1) % m as usize;
                        table.swap(i, j);
                    }
                }
                PatternGen::Permutation(table)
            }
            PatternSpec::HotSpot { hot, fraction } => {
                if *hot >= m {
                    return Err(format!("hot virtual index {hot} out of range ({m} nodes)"));
                }
                if !(0.0..=1.0).contains(fraction) {
                    return Err("hot-spot fraction must be in [0, 1]".into());
                }
                PatternGen::HotSpot {
                    hot: *hot,
                    fraction: *fraction,
                    rng: SmallRng::seed_from_u64(seed),
                }
            }
            PatternSpec::Mix { first, second, first_fraction } => {
                if !(0.0..=1.0).contains(first_fraction) {
                    return Err("mix fraction must be in [0, 1]".into());
                }
                PatternGen::Mix {
                    first: Box::new(Self::compile(first, m, k, h, derive_seed(seed, 1))?),
                    second: Box::new(Self::compile(second, m, k, h, derive_seed(seed, 2))?),
                    first_fraction: *first_fraction,
                    rng: SmallRng::seed_from_u64(seed),
                }
            }
        })
    }

    /// Destination for a packet generated at virtual index `vsrc`.
    pub fn dest_virtual(&mut self, vsrc: u32) -> u32 {
        let (m, gs, k) = (self.nodes.len() as u32, self.group_size, self.k);
        Self::gen_dest(&mut self.gen, vsrc, m, gs, k)
    }

    /// Uniform virtual index within virtual group `g` (the last group may
    /// be partial).
    fn node_in_group(rng: &mut SmallRng, g: u32, m: u32, gs: u32) -> u32 {
        let base = g * gs;
        let width = gs.min(m - base);
        base + rng.gen_range(0..width)
    }

    fn gen_dest(gen: &mut PatternGen, vsrc: u32, m: u32, gs: u32, k: u32) -> u32 {
        match gen {
            PatternGen::Uniform(rng) => loop {
                let v = rng.gen_range(0..m);
                if v != vsrc {
                    return v;
                }
            },
            PatternGen::Adversarial { offset, rng } => {
                let g = (vsrc / gs + *offset) % k;
                Self::node_in_group(rng, g, m, gs)
            }
            PatternGen::AdvConsecutive { spread, rng } => {
                let step = rng.gen_range(1..=*spread);
                let g = (vsrc / gs + step) % k;
                Self::node_in_group(rng, g, m, gs)
            }
            PatternGen::GroupLocal(rng) => loop {
                let v = Self::node_in_group(rng, vsrc / gs, m, gs);
                if v != vsrc || gs == 1 {
                    return v;
                }
            },
            PatternGen::Permutation(table) => table[vsrc as usize],
            PatternGen::HotSpot { hot, fraction, rng } => {
                if vsrc != *hot && rng.gen_bool(*fraction) {
                    *hot
                } else {
                    loop {
                        let v = rng.gen_range(0..m);
                        if v != vsrc {
                            return v;
                        }
                    }
                }
            }
            PatternGen::Mix { first, second, first_fraction, rng } => {
                if rng.gen_bool(*first_fraction) {
                    Self::gen_dest(first, vsrc, m, gs, k)
                } else {
                    Self::gen_dest(second, vsrc, m, gs, k)
                }
            }
        }
    }

    /// The job's nodes in virtual order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Destination node for a packet generated at the node with virtual
    /// index `vsrc` (panics if out of range).
    pub fn dest_of_virtual(&mut self, vsrc: u32) -> NodeId {
        let v = self.dest_virtual(vsrc);
        self.nodes[v as usize]
    }
}

/// Adapter so a remapped job pattern can drive any consumer of the
/// [`Traffic`] trait. Holds the node→virtual-index inverse map.
pub struct JobTrafficAdapter {
    inner: JobTraffic,
    /// `node.0 → virtual index`, `u32::MAX` outside the job.
    index_of: Vec<u32>,
}

impl JobTrafficAdapter {
    /// Build the adapter (inverse map sized to the whole machine).
    pub fn new(inner: JobTraffic, params: &DragonflyParams) -> Self {
        let mut index_of = vec![u32::MAX; params.nodes() as usize];
        for (v, n) in inner.nodes().iter().enumerate() {
            index_of[n.idx()] = v as u32;
        }
        Self { inner, index_of }
    }

    /// Virtual index of `node`, if it belongs to the job.
    pub fn virtual_index(&self, node: NodeId) -> Option<u32> {
        match self.index_of[node.idx()] {
            u32::MAX => None,
            v => Some(v),
        }
    }
}

impl Traffic for JobTrafficAdapter {
    fn dest(&mut self, src: NodeId) -> NodeId {
        let v = self.index_of[src.idx()];
        assert_ne!(v, u32::MAX, "source {src:?} is not part of this job");
        self.inner.dest_of_virtual(v)
    }

    fn name(&self) -> &'static str {
        "JOB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementSpec;

    fn params() -> DragonflyParams {
        DragonflyParams::small()
    }

    fn consecutive(count: u32) -> ResolvedPlacement {
        PlacementSpec::ConsecutiveGroups { first: 0, count, slots: None }
            .resolve(&params(), 0)
            .unwrap()
    }

    #[test]
    fn uniform_job_on_consecutive_groups_is_network_level_advc() {
        // The paper's §III anatomy: a job on h+1 consecutive groups with
        // *uniform* in-job traffic sends all its inter-group packets to
        // nearby consecutive groups.
        let p = params();
        let placement = consecutive(p.h + 1);
        let t = JobTraffic::new(&PatternSpec::Uniform, &placement, &p, 3).unwrap();
        let mut adapter = JobTrafficAdapter::new(t, &p);
        let mut cross_group = 0;
        for _ in 0..5_000 {
            let src = NodeId(0); // group 0
            let dst = adapter.dest(src);
            let g = dst.group(&p).0;
            assert!(g <= p.h, "destination group {g} outside the job");
            if g != 0 {
                cross_group += 1;
            }
        }
        assert!(cross_group > 3_000, "job traffic should be mostly inter-group");
    }

    #[test]
    fn remapped_advc_targets_following_job_groups() {
        let p = params();
        let placement = consecutive(6);
        let t = JobTraffic::new(&PatternSpec::AdvConsecutive { spread: None }, &placement, &p, 5)
            .unwrap();
        let mut adapter = JobTrafficAdapter::new(t, &p);
        // A node of job group 2 targets job groups 3..=5 only (spread h=3).
        let src = placement.nodes[(2 * placement.group_size) as usize];
        for _ in 0..2_000 {
            let dst = adapter.dest(src);
            let g = dst.group(&p).0;
            assert!((3..=5).contains(&g), "dst group {g}");
        }
    }

    #[test]
    fn destinations_stay_inside_the_job() {
        let p = params();
        let placement = PlacementSpec::RandomGroups { count: 4, slots: Some(vec![0, 2]) }
            .resolve(&p, 9)
            .unwrap();
        let member: Vec<bool> = {
            let mut v = vec![false; p.nodes() as usize];
            for n in &placement.nodes {
                v[n.idx()] = true;
            }
            v
        };
        for spec in [
            PatternSpec::Uniform,
            PatternSpec::Adversarial { offset: 1 },
            PatternSpec::AdvConsecutive { spread: Some(2) },
            PatternSpec::GroupLocal,
            PatternSpec::Permutation,
            PatternSpec::HotSpot { hot: 3, fraction: 0.3 },
            PatternSpec::Mix {
                first: Box::new(PatternSpec::Uniform),
                second: Box::new(PatternSpec::AdvConsecutive { spread: None }),
                first_fraction: 0.5,
            },
        ] {
            let t = JobTraffic::new(&spec, &placement, &p, 11).unwrap();
            let mut adapter = JobTrafficAdapter::new(t, &p);
            for i in (0..placement.nodes.len()).step_by(3) {
                let src = placement.nodes[i];
                let dst = adapter.dest(src);
                assert!(member[dst.idx()], "{}: {dst:?} outside job", spec.label());
            }
        }
    }

    #[test]
    fn permutation_is_bijective_over_the_job() {
        let p = params();
        let placement = consecutive(2);
        let t = JobTraffic::new(&PatternSpec::Permutation, &placement, &p, 7).unwrap();
        let mut adapter = JobTrafficAdapter::new(t, &p);
        let mut seen = vec![false; p.nodes() as usize];
        for &src in &placement.nodes {
            let dst = adapter.dest(src);
            assert_ne!(dst, src);
            assert!(!std::mem::replace(&mut seen[dst.idx()], true));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = params();
        let placement = consecutive(3);
        let mut a = JobTrafficAdapter::new(
            JobTraffic::new(&PatternSpec::Uniform, &placement, &p, 42).unwrap(),
            &p,
        );
        let mut b = JobTrafficAdapter::new(
            JobTraffic::new(&PatternSpec::Uniform, &placement, &p, 42).unwrap(),
            &p,
        );
        for &n in placement.nodes.iter().step_by(5) {
            assert_eq!(a.dest(n), b.dest(n));
        }
    }

    #[test]
    fn job_activity_window() {
        let job = JobSpec {
            name: "j".into(),
            placement: PlacementSpec::ConsecutiveGroups { first: 0, count: 2, slots: None },
            pattern: PatternSpec::Uniform,
            injection: InjectionSpec::Bernoulli,
            load: 0.2,
            start_cycle: Some(100),
            stop_cycle: Some(200),
        };
        assert!(!job.active(99));
        assert!(job.active(100));
        assert!(job.active(199));
        assert!(!job.active(200));
    }
}
