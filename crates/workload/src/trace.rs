//! Trace recording and replay.
//!
//! A trace is a chronological list of `(cycle, src, dst)` generation
//! events. Any scenario run can record one (the scenario runner offers a
//! [`TraceRecorder`] hook), and a recorded trace replayed through
//! [`TraceReplay`] against the same configuration reproduces the original
//! run bit-for-bit: generation is the only external input to the
//! deterministic engine.

use crate::injection::{Arrival, InjectionProcess};
use df_topology::NodeId;
use serde::{Deserialize, Serialize};

/// One recorded generation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Driver cycle (0-based from the start of the run, warm-up included).
    pub cycle: u64,
    /// Generating node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
}

/// Collects generation events during a run.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one generation event.
    #[inline]
    pub fn record(&mut self, cycle: u64, src: NodeId, dst: NodeId) {
        self.events.push(TraceEvent { cycle, src: src.0, dst: dst.0 });
    }

    /// The events recorded so far, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consume the recorder, yielding the event list.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Serialize the trace as JSON text.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.events).expect("serialize trace")
    }

    /// Write the trace to `path` as JSON.
    pub fn save(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_json())
            .map_err(|e| format!("cannot write trace {path}: {e}"))
    }
}

/// Load a JSON trace file written by [`TraceRecorder::save`].
pub fn load_trace(path: &str) -> Result<Vec<TraceEvent>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read trace {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("malformed trace {path}: {e}"))
}

/// Replays a trace as an [`InjectionProcess`]: every event fires at its
/// recorded cycle with its recorded destination.
pub struct TraceReplay {
    events: Vec<TraceEvent>,
    cursor: usize,
}

impl TraceReplay {
    /// Build a replay over `events` (sorted by cycle if not already).
    pub fn from_events(mut events: Vec<TraceEvent>) -> Self {
        if !events.windows(2).all(|w| w[0].cycle <= w[1].cycle) {
            events.sort_by_key(|e| e.cycle);
        }
        Self { events, cursor: 0 }
    }

    /// Events not yet replayed.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }
}

impl InjectionProcess for TraceReplay {
    fn arrivals(&mut self, cycle: u64, out: &mut Vec<Arrival>) {
        while let Some(e) = self.events.get(self.cursor) {
            if e.cycle > cycle {
                break;
            }
            // Events at an already-passed cycle (driver skipped ahead)
            // fire now rather than being dropped silently.
            out.push(Arrival { src: NodeId(e.src), dst: Some(NodeId(e.dst)) });
            self.cursor += 1;
        }
    }

    fn label(&self) -> &'static str {
        "trace"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrips_through_json() {
        let mut rec = TraceRecorder::new();
        rec.record(0, NodeId(1), NodeId(2));
        rec.record(5, NodeId(3), NodeId(4));
        let json = rec.to_json();
        let back: Vec<TraceEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec.events());
    }

    #[test]
    fn replay_fires_at_recorded_cycles() {
        let events = vec![
            TraceEvent { cycle: 2, src: 0, dst: 9 },
            TraceEvent { cycle: 2, src: 1, dst: 8 },
            TraceEvent { cycle: 7, src: 2, dst: 7 },
        ];
        let mut replay = TraceReplay::from_events(events);
        let mut out = Vec::new();
        for t in 0..10u64 {
            out.clear();
            replay.arrivals(t, &mut out);
            match t {
                2 => {
                    assert_eq!(out.len(), 2);
                    assert_eq!(out[0], Arrival { src: NodeId(0), dst: Some(NodeId(9)) });
                }
                7 => assert_eq!(out.len(), 1),
                _ => assert!(out.is_empty()),
            }
        }
        assert_eq!(replay.remaining(), 0);
    }

    #[test]
    fn unsorted_events_are_sorted() {
        let events = vec![
            TraceEvent { cycle: 9, src: 0, dst: 1 },
            TraceEvent { cycle: 1, src: 2, dst: 3 },
        ];
        let mut replay = TraceReplay::from_events(events);
        let mut out = Vec::new();
        replay.arrivals(1, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].src, NodeId(2));
    }
}
