//! Sweep specifications: axes over a base scenario, expanded into a grid
//! of runnable cells.
//!
//! The paper's unfairness results are *grids* — throughput/latency per
//! mechanism swept over offered load, with job placement deciding whether
//! a workload degenerates into ADVc. A [`SweepSpec`] captures such a grid
//! declaratively: a base [`ScenarioSpec`] plus up to four axes (offered
//! load, placement variant, traffic pattern, routing mechanism), expanded
//! by [`SweepSpec::expand`] into the cross product of [`SweepCell`]s in a
//! deterministic order (load-major, mechanism-minor). Omitted axes
//! contribute a single cell drawn from the base scenario.
//!
//! # Examples
//!
//! A two-axis grid (2 loads × 2 mechanisms = 4 cells) over a one-job
//! base scenario:
//!
//! ```
//! use df_workload::SweepSpec;
//!
//! let json = r#"{
//!   "name": "demo-grid",
//!   "base": {
//!     "name": "base",
//!     "params": { "p": 2, "a": 4, "h": 2 },
//!     "arrangement": "Palmtree",
//!     "mechanisms": ["in-transit-mm"],
//!     "arbiter": "TransitPriority",
//!     "warmup_cycles": 500,
//!     "measure_cycles": 1000,
//!     "jobs": [{
//!       "name": "app",
//!       "placement": { "placement": "consecutive_groups", "first": 0, "count": 3 },
//!       "pattern": { "pattern": "uniform" },
//!       "injection": { "process": "bernoulli" },
//!       "load": 0.3
//!     }]
//!   },
//!   "loads": [0.2, 0.4],
//!   "mechanisms": ["in-transit-mm", "oblivious-crg"]
//! }"#;
//! let sweep = SweepSpec::from_json(json).unwrap();
//! let cells = sweep.expand().unwrap();
//! assert_eq!(cells.len(), 4);
//! // Load-major, mechanism-minor expansion order.
//! assert_eq!(cells[0].load, Some(0.2));
//! assert_eq!(cells[1].load, Some(0.2));
//! assert_eq!(cells[3].load, Some(0.4));
//! // Every cell's derived scenario carries exactly one mechanism and the
//! // axis load applied to its jobs.
//! assert_eq!(cells[0].scenario.mechanisms.len(), 1);
//! assert_eq!(cells[3].scenario.jobs[0].load, 0.4);
//! ```

use crate::placement::PlacementSpec;
use crate::scenario::ScenarioSpec;
use df_routing::MechanismSpec;
use df_traffic::PatternSpec;
use serde::{Deserialize, Serialize};

/// Upper bound on the expanded grid size — a typo guard (e.g. a load axis
/// pasted twice), not a tuning constant.
pub const MAX_SWEEP_CELLS: usize = 4096;

/// One named placement assignment inside a [`PlacementVariant`]: the job
/// it applies to (by [`crate::JobSpec::name`]) and its new placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobPlacement {
    /// Name of the base-scenario job to re-place.
    pub job: String,
    /// The placement this variant assigns to that job.
    pub placement: PlacementSpec,
}

/// One point on the placement axis: a label (used in result tables) plus
/// the placements it assigns to named jobs. Jobs not named keep their
/// base placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementVariant {
    /// Variant label, e.g. `"consecutive"` or `"spread"`.
    pub label: String,
    /// Placement re-assignments, one per affected job.
    pub jobs: Vec<JobPlacement>,
}

/// A declarative sweep: a base scenario plus axes, loadable from JSON
/// (`scenarios/sweep_*.json`). See the module-level example above and
/// `docs/SCENARIOS.md` for the full schema reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Sweep name (used in result files).
    pub name: String,
    /// The scenario every cell is derived from.
    pub base: ScenarioSpec,
    /// Offered-load axis: each value replaces the `load` of the jobs
    /// selected by `load_jobs`. `None` = no load axis.
    pub loads: Option<Vec<f64>>,
    /// Jobs the load axis applies to, by name (`None` = all jobs).
    pub load_jobs: Option<Vec<String>>,
    /// Placement axis (`None` = every cell keeps the base placements).
    pub placements: Option<Vec<PlacementVariant>>,
    /// Pattern axis: each value replaces the `pattern` of the jobs
    /// selected by `pattern_jobs`. `None` = no pattern axis.
    pub patterns: Option<Vec<PatternSpec>>,
    /// Jobs the pattern axis applies to, by name (`None` = all jobs).
    pub pattern_jobs: Option<Vec<String>>,
    /// Mechanism axis (`None` = the base scenario's mechanism list).
    pub mechanisms: Option<Vec<MechanismSpec>>,
}

/// One runnable cell of an expanded sweep: the axis coordinates plus the
/// fully derived single-mechanism scenario.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Row index in expansion order (load-major, mechanism-minor).
    pub index: u32,
    /// The load-axis coordinate (`None` when the sweep has no load axis).
    pub load: Option<f64>,
    /// The placement-variant label (`None` without a placement axis).
    pub placement: Option<String>,
    /// The pattern-axis label (`None` without a pattern axis).
    pub pattern: Option<String>,
    /// The mechanism this cell runs under.
    pub mechanism: MechanismSpec,
    /// The derived scenario (single mechanism, axis values applied).
    pub scenario: ScenarioSpec,
}

impl SweepSpec {
    /// Parse a sweep from JSON text.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("malformed sweep: {e}"))
    }

    /// Load a sweep from a JSON file.
    pub fn load(path: &str) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read sweep {path}: {e}"))?;
        Self::from_json(&text)
    }

    /// Serialize as pretty JSON (the `scenarios/sweep_*.json` format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("serialize sweep")
    }

    /// Resolve a job-selector list against the base scenario: `None`
    /// selects every job; names must exist and not repeat.
    fn job_indices(&self, selector: &Option<Vec<String>>, axis: &str) -> Result<Vec<usize>, String> {
        match selector {
            None => Ok((0..self.base.jobs.len()).collect()),
            Some(names) => {
                let mut indices = Vec::with_capacity(names.len());
                for name in names {
                    let j = self
                        .base
                        .jobs
                        .iter()
                        .position(|job| &job.name == name)
                        .ok_or_else(|| format!("{axis} names unknown job `{name}`"))?;
                    if indices.contains(&j) {
                        return Err(format!("{axis} names job `{name}` twice"));
                    }
                    indices.push(j);
                }
                Ok(indices)
            }
        }
    }

    /// Expand the axes into the full cell grid, in deterministic order:
    /// loads (outer) → placements → patterns → mechanisms (inner). Each
    /// cell's scenario carries exactly one mechanism; run cells with
    /// `run_scenario_once` (or `run_sweep`, which does all of this).
    ///
    /// Axis values are applied but the derived scenarios are *not* fully
    /// validated here — placements may be seed-dependent, so per-cell
    /// validation happens at run time with the run's master seed.
    pub fn expand(&self) -> Result<Vec<SweepCell>, String> {
        if self.base.jobs.is_empty() {
            return Err("sweep base scenario has no jobs".into());
        }
        let load_jobs = self.job_indices(&self.load_jobs, "load_jobs")?;
        let pattern_jobs = self.job_indices(&self.pattern_jobs, "pattern_jobs")?;
        for variant in self.placements.iter().flatten() {
            for jp in &variant.jobs {
                if !self.base.jobs.iter().any(|job| job.name == jp.job) {
                    return Err(format!(
                        "placement variant `{}` names unknown job `{}`",
                        variant.label, jp.job
                    ));
                }
            }
        }
        let mechanisms: &[MechanismSpec] =
            self.mechanisms.as_deref().unwrap_or(&self.base.mechanisms);
        if mechanisms.is_empty() {
            return Err("sweep has no mechanisms".into());
        }
        // An omitted axis is a singleton of `None`; a present-but-empty
        // axis is a degenerate grid and rejected.
        let opt_axis = |axis: &Option<Vec<_>>, what: &str| -> Result<usize, String> {
            match axis {
                Some(v) if v.is_empty() => Err(format!("sweep {what} axis is empty")),
                Some(v) => Ok(v.len()),
                None => Ok(1),
            }
        };
        let n_loads = opt_axis(&self.loads, "load")?;
        let n_placements = match &self.placements {
            Some(v) if v.is_empty() => return Err("sweep placement axis is empty".into()),
            Some(v) => v.len(),
            None => 1,
        };
        let n_patterns = match &self.patterns {
            Some(v) if v.is_empty() => return Err("sweep pattern axis is empty".into()),
            Some(v) => v.len(),
            None => 1,
        };
        let total = n_loads * n_placements * n_patterns * mechanisms.len();
        if total > MAX_SWEEP_CELLS {
            return Err(format!(
                "sweep expands to {total} cells (limit {MAX_SWEEP_CELLS})"
            ));
        }

        let mut cells = Vec::with_capacity(total);
        for li in 0..n_loads {
            for pi in 0..n_placements {
                for ti in 0..n_patterns {
                    for &mechanism in mechanisms {
                        let mut scenario = self.base.clone();
                        scenario.mechanisms = vec![mechanism];
                        let load = self.loads.as_ref().map(|l| l[li]);
                        if let Some(load) = load {
                            for &j in &load_jobs {
                                scenario.jobs[j].load = load;
                            }
                        }
                        let placement = self.placements.as_ref().map(|v| {
                            let variant = &v[pi];
                            for jp in &variant.jobs {
                                for job in &mut scenario.jobs {
                                    if job.name == jp.job {
                                        job.placement = jp.placement.clone();
                                    }
                                }
                            }
                            variant.label.clone()
                        });
                        let pattern = self.patterns.as_ref().map(|p| {
                            for &j in &pattern_jobs {
                                scenario.jobs[j].pattern = p[ti].clone();
                            }
                            p[ti].label()
                        });
                        cells.push(SweepCell {
                            index: cells.len() as u32,
                            load,
                            placement,
                            pattern,
                            mechanism,
                            scenario,
                        });
                    }
                }
            }
        }
        Ok(cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::injection::InjectionSpec;
    use crate::job::JobSpec;
    use df_engine::ArbiterPolicy;
    use df_topology::{Arrangement, DragonflyParams};

    fn base() -> ScenarioSpec {
        ScenarioSpec {
            name: "base".into(),
            params: DragonflyParams::figure1(),
            arrangement: Arrangement::Palmtree,
            mechanisms: vec![MechanismSpec::InTransitMm],
            arbiter: ArbiterPolicy::TransitPriority,
            warmup_cycles: 500,
            measure_cycles: 1000,
            telemetry: None,
            shards: None,
            jobs: vec![
                JobSpec {
                    name: "app".into(),
                    placement: PlacementSpec::ConsecutiveGroups {
                        first: 0,
                        count: 3,
                        slots: None,
                    },
                    pattern: PatternSpec::Uniform,
                    injection: InjectionSpec::Bernoulli,
                    load: 0.3,
                    start_cycle: None,
                    stop_cycle: None,
                },
                JobSpec {
                    name: "other".into(),
                    placement: PlacementSpec::ConsecutiveGroups {
                        first: 4,
                        count: 2,
                        slots: None,
                    },
                    pattern: PatternSpec::GroupLocal,
                    injection: InjectionSpec::Bernoulli,
                    load: 0.1,
                    start_cycle: None,
                    stop_cycle: None,
                },
            ],
        }
    }

    fn sweep() -> SweepSpec {
        SweepSpec {
            name: "grid".into(),
            base: base(),
            loads: Some(vec![0.2, 0.4]),
            load_jobs: Some(vec!["app".into()]),
            placements: Some(vec![
                PlacementVariant { label: "consecutive".into(), jobs: vec![] },
                PlacementVariant {
                    label: "spread".into(),
                    jobs: vec![JobPlacement {
                        job: "app".into(),
                        placement: PlacementSpec::RoundRobinRouters {
                            count: 24,
                            offset: None,
                        },
                    }],
                },
            ]),
            patterns: None,
            pattern_jobs: None,
            mechanisms: Some(vec![
                MechanismSpec::InTransitMm,
                MechanismSpec::ObliviousCrg,
            ]),
        }
    }

    #[test]
    fn expansion_is_the_cross_product_in_axis_order() {
        let cells = sweep().expand().unwrap();
        assert_eq!(cells.len(), 2 * 2 * 2);
        // Load-major, mechanism-minor.
        assert_eq!(cells[0].load, Some(0.2));
        assert_eq!(cells[0].placement.as_deref(), Some("consecutive"));
        assert_eq!(cells[0].mechanism, MechanismSpec::InTransitMm);
        assert_eq!(cells[1].mechanism, MechanismSpec::ObliviousCrg);
        assert_eq!(cells[2].placement.as_deref(), Some("spread"));
        assert_eq!(cells[4].load, Some(0.4));
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index as usize, i);
            assert_eq!(c.scenario.mechanisms, vec![c.mechanism]);
        }
    }

    #[test]
    fn axis_values_apply_to_selected_jobs_only() {
        let cells = sweep().expand().unwrap();
        // The load axis targets `app`; `other` keeps its base load.
        assert_eq!(cells[4].scenario.jobs[0].load, 0.4);
        assert_eq!(cells[4].scenario.jobs[1].load, 0.1);
        // The `spread` variant re-places `app` only.
        let spread = &cells[2].scenario;
        assert!(matches!(
            spread.jobs[0].placement,
            PlacementSpec::RoundRobinRouters { .. }
        ));
        assert!(matches!(
            spread.jobs[1].placement,
            PlacementSpec::ConsecutiveGroups { .. }
        ));
    }

    #[test]
    fn omitted_axes_collapse_to_the_base() {
        let s = SweepSpec {
            name: "single".into(),
            base: base(),
            loads: None,
            load_jobs: None,
            placements: None,
            patterns: None,
            pattern_jobs: None,
            mechanisms: None,
        };
        let cells = s.expand().unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].load, None);
        assert_eq!(cells[0].mechanism, MechanismSpec::InTransitMm);
        assert_eq!(cells[0].scenario.jobs[0].load, 0.3);
    }

    #[test]
    fn pattern_axis_labels_cells() {
        let mut s = sweep();
        s.placements = None;
        s.patterns = Some(vec![
            PatternSpec::Uniform,
            PatternSpec::AdvConsecutive { spread: None },
        ]);
        s.pattern_jobs = Some(vec!["app".into()]);
        let cells = s.expand().unwrap();
        assert_eq!(cells.len(), 2 * 2 * 2);
        assert_eq!(cells[0].pattern.as_deref(), Some("UN"));
        assert!(matches!(
            cells[2].scenario.jobs[0].pattern,
            PatternSpec::AdvConsecutive { .. }
        ));
        // The unselected job keeps its base pattern in every cell.
        assert!(cells
            .iter()
            .all(|c| matches!(c.scenario.jobs[1].pattern, PatternSpec::GroupLocal)));
    }

    #[test]
    fn bad_axes_rejected() {
        let mut s = sweep();
        s.load_jobs = Some(vec!["nope".into()]);
        assert!(s.expand().unwrap_err().contains("unknown job"));
        let mut s = sweep();
        s.loads = Some(vec![]);
        assert!(s.expand().unwrap_err().contains("empty"));
        let mut s = sweep();
        s.placements.as_mut().unwrap()[0].jobs.push(JobPlacement {
            job: "ghost".into(),
            placement: PlacementSpec::ConsecutiveGroups { first: 0, count: 1, slots: None },
        });
        assert!(s.expand().unwrap_err().contains("ghost"));
        let mut s = sweep();
        s.loads = Some(vec![0.1; MAX_SWEEP_CELLS]);
        assert!(s.expand().unwrap_err().contains("limit"));
    }

    #[test]
    fn json_roundtrip() {
        let s = sweep();
        let back = SweepSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
        // Omitted optional axes survive a round trip too.
        let minimal = SweepSpec {
            name: "m".into(),
            base: base(),
            loads: None,
            load_jobs: None,
            placements: None,
            patterns: None,
            pattern_jobs: None,
            mechanisms: None,
        };
        let back = SweepSpec::from_json(&minimal.to_json()).unwrap();
        assert_eq!(minimal, back);
    }
}
