//! # df-workload
//!
//! The workload subsystem: multi-job scenarios for the Dragonfly
//! simulator. The paper's central observation (§III) is that ADVc-like
//! unfairness arises *naturally* from a job allocated on consecutive
//! groups even when the job's own communication is uniform — which makes
//! workload structure, not just the global traffic pattern, the thing to
//! model. This crate provides:
//!
//! * [`InjectionProcess`] — *when* nodes generate packets, generalizing
//!   the seed simulator's single Bernoulli process with per-node RNG
//!   substreams: [`BernoulliProcess`], Markov-modulated [`OnOffProcess`]
//!   bursts, [`PoissonProcess`] batches, and [`TraceReplay`] of recorded
//!   `(cycle, src, dst)` event streams ([`TraceRecorder`] writes them);
//! * [`PlacementSpec`] — *where* a job runs: consecutive groups, explicit
//!   or random group lists (optionally restricted to a subset of node
//!   slots so jobs can share routers disjointly), round-robin over
//!   routers, or explicit node lists;
//! * [`JobSpec`] / [`JobTraffic`] — a placement plus a [`PatternSpec`]
//!   remapped into the job's node set, an injection process, a load, and
//!   start/stop cycles;
//! * [`ScenarioSpec`] — a serializable composition of jobs, mechanisms,
//!   and the measurement protocol (`scenarios/*.json`);
//! * [`SweepSpec`] — axes (offered load, placement variant, pattern,
//!   mechanism) over a base scenario, expanded into a deterministic grid
//!   of cells (`scenarios/sweep_*.json`) for the paper's
//!   load-×-placement unfairness grids.
//!
//! The scenario and sweep *runners* live in `dragonfly-core`
//! (`run_scenario`, `run_sweep`), which drive the simulator's per-node
//! injection path with these processes and report per-job results —
//! including **job churn**: jobs with `start_cycle`/`stop_cycle` arrive
//! and depart mid-run, and a departed job's node slots are reusable by
//! later arrivals.
//!
//! The complete JSON schema reference, with worked examples, is
//! `docs/SCENARIOS.md` at the repository root.
//!
//! [`PatternSpec`]: df_traffic::PatternSpec

#![warn(missing_docs)]

mod injection;
mod job;
mod placement;
mod scenario;
mod sweep;
mod trace;

pub use injection::{
    Arrival, BernoulliProcess, InjectionProcess, InjectionSpec, OnOffProcess, PoissonProcess,
};
pub use job::{lifetimes_overlap, JobSpec, JobTraffic, JobTrafficAdapter};
pub use placement::{PlacementSpec, ResolvedPlacement};
pub use scenario::ScenarioSpec;
pub use sweep::{JobPlacement, PlacementVariant, SweepCell, SweepSpec, MAX_SWEEP_CELLS};
pub use trace::{load_trace, TraceEvent, TraceRecorder, TraceReplay};
