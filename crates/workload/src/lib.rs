//! # df-workload
//!
//! The workload subsystem: multi-job scenarios for the Dragonfly
//! simulator. The paper's central observation (§III) is that ADVc-like
//! unfairness arises *naturally* from a job allocated on consecutive
//! groups even when the job's own communication is uniform — which makes
//! workload structure, not just the global traffic pattern, the thing to
//! model. This crate provides:
//!
//! * [`InjectionProcess`] — *when* nodes generate packets, generalizing
//!   the seed simulator's single Bernoulli process with per-node RNG
//!   substreams: [`BernoulliProcess`], Markov-modulated [`OnOffProcess`]
//!   bursts, [`PoissonProcess`] batches, and [`TraceReplay`] of recorded
//!   `(cycle, src, dst)` event streams ([`TraceRecorder`] writes them);
//! * [`PlacementSpec`] — *where* a job runs: consecutive groups, explicit
//!   or random group lists (optionally restricted to a subset of node
//!   slots so jobs can share routers disjointly), round-robin over
//!   routers, or explicit node lists;
//! * [`JobSpec`] / [`JobTraffic`] — a placement plus a [`PatternSpec`]
//!   remapped into the job's node set, an injection process, a load, and
//!   start/stop cycles;
//! * [`ScenarioSpec`] — a serializable composition of jobs, mechanisms,
//!   and the measurement protocol (`scenarios/*.json`).
//!
//! The scenario *runner* lives in `dragonfly-core` (`run_scenario`),
//! which drives the simulator's per-node injection path with these
//! processes and reports per-job results.
//!
//! [`PatternSpec`]: df_traffic::PatternSpec

#![warn(missing_docs)]

mod injection;
mod job;
mod placement;
mod scenario;
mod trace;

pub use injection::{
    Arrival, BernoulliProcess, InjectionProcess, InjectionSpec, OnOffProcess, PoissonProcess,
};
pub use job::{JobSpec, JobTraffic, JobTrafficAdapter};
pub use placement::{PlacementSpec, ResolvedPlacement};
pub use scenario::ScenarioSpec;
pub use trace::{load_trace, TraceEvent, TraceRecorder, TraceReplay};
