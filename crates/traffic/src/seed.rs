//! Deterministic sub-seed derivation shared by every stochastic component.

/// Derive an independent sub-seed from a master seed (SplitMix64 steps) so
/// each RNG consumer — and, crucially, each *node* — gets its own stream.
///
/// Per-node streams make injection sequences independent of node count and
/// iteration order: node `n`'s Bernoulli draws are a pure function of
/// `(master, n)`, so traces and per-job runs stay stable when a job is
/// re-placed onto a different node set of the same size.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_streams() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(1, 0));
    }
}
