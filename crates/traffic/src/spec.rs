//! Serializable pattern specifications (experiment configs).

use crate::patterns::{
    AdvConsecutive, Adversarial, GroupLocal, HotSpot, Mix, Permutation, Traffic, Uniform,
};
use df_topology::{DragonflyParams, NodeId};
use serde::{Deserialize, Serialize};

/// A declarative traffic-pattern description, convertible into a live
/// [`Traffic`] generator. This is what experiment configs serialize.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "pattern", rename_all = "snake_case")]
pub enum PatternSpec {
    /// Uniform random (UN).
    Uniform,
    /// ADV+offset.
    Adversarial {
        /// Destination-group offset (the paper uses 1).
        offset: u32,
    },
    /// ADVc over the `h` consecutive groups, or a custom spread.
    AdvConsecutive {
        /// Number of consecutive destination groups; `None` means `h`.
        spread: Option<u32>,
    },
    /// Intra-group traffic only.
    GroupLocal,
    /// Fixed random node permutation.
    Permutation,
    /// Hot-spot: `fraction` of traffic to node `hot`.
    HotSpot {
        /// The hot node.
        hot: u32,
        /// Fraction of packets targeting it.
        fraction: f64,
    },
    /// Mix of two sub-patterns.
    Mix {
        /// First sub-pattern.
        first: Box<PatternSpec>,
        /// Second sub-pattern.
        second: Box<PatternSpec>,
        /// Fraction of packets following `first`.
        first_fraction: f64,
    },
}

impl PatternSpec {
    /// Instantiate a generator for `params` with a deterministic `seed`.
    pub fn build(&self, params: DragonflyParams, seed: u64) -> Box<dyn Traffic> {
        match self {
            PatternSpec::Uniform => Box::new(Uniform::new(params, seed)),
            PatternSpec::Adversarial { offset } => {
                Box::new(Adversarial::new(params, *offset, seed))
            }
            PatternSpec::AdvConsecutive { spread } => Box::new(AdvConsecutive::with_spread(
                params,
                spread.unwrap_or(params.h),
                seed,
            )),
            PatternSpec::GroupLocal => Box::new(GroupLocal::new(params, seed)),
            PatternSpec::Permutation => Box::new(Permutation::new(params, seed)),
            PatternSpec::HotSpot { hot, fraction } => {
                Box::new(HotSpot::new(params, NodeId(*hot), *fraction, seed))
            }
            PatternSpec::Mix { first, second, first_fraction } => Box::new(Mix::new(
                first.build(params, seed.wrapping_mul(2).wrapping_add(1)),
                second.build(params, seed.wrapping_mul(2).wrapping_add(2)),
                *first_fraction,
                seed,
            )),
        }
    }

    /// Short label for tables and filenames.
    pub fn label(&self) -> String {
        match self {
            PatternSpec::Uniform => "UN".into(),
            PatternSpec::Adversarial { offset } => format!("ADV+{offset}"),
            PatternSpec::AdvConsecutive { spread: None } => "ADVc".into(),
            PatternSpec::AdvConsecutive { spread: Some(s) } => format!("ADVc{s}"),
            PatternSpec::GroupLocal => "LOCAL".into(),
            PatternSpec::Permutation => "PERM".into(),
            PatternSpec::HotSpot { .. } => "HOTSPOT".into(),
            PatternSpec::Mix { first, second, first_fraction } => {
                format!("MIX({}:{:.0}%,{})", first.label(), first_fraction * 100.0, second.label())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_all_variants() {
        let p = DragonflyParams::small();
        let specs = [
            PatternSpec::Uniform,
            PatternSpec::Adversarial { offset: 1 },
            PatternSpec::AdvConsecutive { spread: None },
            PatternSpec::AdvConsecutive { spread: Some(2) },
            PatternSpec::GroupLocal,
            PatternSpec::Permutation,
            PatternSpec::HotSpot { hot: 0, fraction: 0.2 },
            PatternSpec::Mix {
                first: Box::new(PatternSpec::Uniform),
                second: Box::new(PatternSpec::AdvConsecutive { spread: None }),
                first_fraction: 0.5,
            },
        ];
        for spec in &specs {
            let mut t = spec.build(p, 1);
            let d = t.dest(NodeId(0));
            assert!(d.0 < p.nodes());
            assert!(!spec.label().is_empty());
        }
    }

    #[test]
    fn serde_roundtrip() {
        let spec = PatternSpec::Mix {
            first: Box::new(PatternSpec::AdvConsecutive { spread: Some(3) }),
            second: Box::new(PatternSpec::HotSpot { hot: 5, fraction: 0.1 }),
            first_fraction: 0.25,
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: PatternSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn deterministic_across_builds() {
        let p = DragonflyParams::small();
        let spec = PatternSpec::Uniform;
        let mut a = spec.build(p, 42);
        let mut b = spec.build(p, 42);
        for n in 0..100 {
            assert_eq!(a.dest(NodeId(n)), b.dest(NodeId(n)));
        }
    }
}
