//! # df-traffic
//!
//! Synthetic traffic patterns for Dragonfly networks, including the
//! paper's three evaluation workloads:
//!
//! * **UN** — uniform random destinations across the whole network,
//! * **ADV+k** — every node of group *g* sends to random nodes of group
//!   *g+k* (the classic adversarial pattern; the paper uses `k = 1`),
//! * **ADVc** — *adversarial consecutive*: every node of group *g* sends
//!   to random nodes of the `h` consecutive groups `g+1 … g+h`, whose
//!   minimal paths all meet in one bottleneck router under palmtree.
//!
//! Extensions beyond the paper: group-local traffic, a fixed random node
//! permutation, a hot-spot pattern, and pattern mixes — all useful for
//! widening the fairness study.
//!
//! Packet generation follows a Bernoulli process per node with an
//! adjustable injection probability in phits/(node·cycle), as in §IV-A.

#![warn(missing_docs)]

mod bernoulli;
mod patterns;
mod seed;
mod spec;

pub use bernoulli::BernoulliInjector;
pub use seed::derive_seed;
pub use patterns::{
    AdvConsecutive, Adversarial, GroupLocal, HotSpot, Mix, Permutation, Traffic, Uniform,
};
pub use spec::PatternSpec;
