//! Destination-selection patterns.

use df_topology::{DragonflyParams, GroupId, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A traffic pattern: picks a destination for each packet a node
/// generates. Implementations own their RNG so a pattern with a fixed
/// seed produces a deterministic destination stream.
pub trait Traffic: Send {
    /// Destination for a packet generated at `src`.
    fn dest(&mut self, src: NodeId) -> NodeId;

    /// Human-readable pattern name.
    fn name(&self) -> &'static str;
}

/// Pick a uniformly random node of `group`, excluding `exclude` (if it is
/// in that group).
fn random_node_in_group(
    params: &DragonflyParams,
    group: GroupId,
    exclude: Option<NodeId>,
    rng: &mut SmallRng,
) -> NodeId {
    let per_group = params.a * params.p;
    let base = group.0 * per_group;
    loop {
        let n = NodeId(base + rng.gen_range(0..per_group));
        if Some(n) != exclude {
            return n;
        }
    }
}

/// Uniform random traffic (UN): any node of the network, excluding the
/// source itself.
pub struct Uniform {
    params: DragonflyParams,
    rng: SmallRng,
}

impl Uniform {
    /// Create with a deterministic seed.
    pub fn new(params: DragonflyParams, seed: u64) -> Self {
        Self { params, rng: SmallRng::seed_from_u64(seed) }
    }
}

impl Traffic for Uniform {
    fn dest(&mut self, src: NodeId) -> NodeId {
        loop {
            let n = NodeId(self.rng.gen_range(0..self.params.nodes()));
            if n != src {
                return n;
            }
        }
    }

    fn name(&self) -> &'static str {
        "UN"
    }
}

/// Adversarial traffic (ADV+k): every node of group *g* sends to random
/// nodes of group *g+k*.
pub struct Adversarial {
    params: DragonflyParams,
    offset: u32,
    rng: SmallRng,
}

impl Adversarial {
    /// Create ADV+`offset` with a deterministic seed.
    ///
    /// # Panics
    /// Panics if `offset` is zero or not smaller than the group count.
    pub fn new(params: DragonflyParams, offset: u32, seed: u64) -> Self {
        assert!(offset >= 1 && offset < params.groups(), "ADV offset out of range");
        Self { params, offset, rng: SmallRng::seed_from_u64(seed) }
    }
}

impl Traffic for Adversarial {
    fn dest(&mut self, src: NodeId) -> NodeId {
        let g = src.group(&self.params);
        let dst_group = GroupId((g.0 + self.offset) % self.params.groups());
        random_node_in_group(&self.params, dst_group, None, &mut self.rng)
    }

    fn name(&self) -> &'static str {
        "ADV"
    }
}

/// Adversarial-consecutive traffic (ADVc, §III): every node of group *g*
/// sends to random nodes of the `spread` consecutive groups
/// `g+1 … g+spread` (default `spread = h`). Under the palmtree
/// arrangement the minimal paths to all of them leave through a single
/// bottleneck router.
pub struct AdvConsecutive {
    params: DragonflyParams,
    spread: u32,
    rng: SmallRng,
}

impl AdvConsecutive {
    /// ADVc with the paper's spread of `h` destination groups.
    pub fn new(params: DragonflyParams, seed: u64) -> Self {
        Self::with_spread(params, params.h, seed)
    }

    /// ADVc variant targeting `spread` consecutive groups.
    ///
    /// # Panics
    /// Panics if `spread` is zero or not smaller than the group count.
    pub fn with_spread(params: DragonflyParams, spread: u32, seed: u64) -> Self {
        assert!(spread >= 1 && spread < params.groups(), "ADVc spread out of range");
        Self { params, spread, rng: SmallRng::seed_from_u64(seed) }
    }
}

impl Traffic for AdvConsecutive {
    fn dest(&mut self, src: NodeId) -> NodeId {
        let g = src.group(&self.params);
        let k = self.rng.gen_range(1..=self.spread);
        let dst_group = GroupId((g.0 + k) % self.params.groups());
        random_node_in_group(&self.params, dst_group, None, &mut self.rng)
    }

    fn name(&self) -> &'static str {
        "ADVc"
    }
}

/// Extension: all traffic stays within the source group (stresses only
/// local links; a fairness sanity baseline).
pub struct GroupLocal {
    params: DragonflyParams,
    rng: SmallRng,
}

impl GroupLocal {
    /// Create with a deterministic seed.
    pub fn new(params: DragonflyParams, seed: u64) -> Self {
        Self { params, rng: SmallRng::seed_from_u64(seed) }
    }
}

impl Traffic for GroupLocal {
    fn dest(&mut self, src: NodeId) -> NodeId {
        random_node_in_group(&self.params, src.group(&self.params), Some(src), &mut self.rng)
    }

    fn name(&self) -> &'static str {
        "LOCAL"
    }
}

/// Extension: a fixed random permutation of nodes — every node sends all
/// its traffic to exactly one partner, and receives from exactly one.
pub struct Permutation {
    table: Vec<NodeId>,
}

impl Permutation {
    /// Derive a deterministic permutation (without fixed points) from
    /// `seed`.
    pub fn new(params: DragonflyParams, seed: u64) -> Self {
        let n = params.nodes();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut table: Vec<u32> = (0..n).collect();
        // Rotate-then-shuffle with fixed-point repair: a derangement is
        // not required for correctness, but self-traffic would bypass the
        // network entirely, so repair any fixed point by swapping with its
        // neighbour.
        for i in (1..n as usize).rev() {
            let j = rng.gen_range(0..=i);
            table.swap(i, j);
        }
        for i in 0..n as usize {
            if table[i] == i as u32 {
                let j = (i + 1) % n as usize;
                table.swap(i, j);
            }
        }
        Self { table: table.into_iter().map(NodeId).collect() }
    }
}

impl Traffic for Permutation {
    fn dest(&mut self, src: NodeId) -> NodeId {
        self.table[src.idx()]
    }

    fn name(&self) -> &'static str {
        "PERM"
    }
}

/// Extension: hot-spot traffic — a fraction of packets target one hot
/// node, the rest are uniform.
pub struct HotSpot {
    uniform: Uniform,
    hot: NodeId,
    fraction: f64,
    rng: SmallRng,
}

impl HotSpot {
    /// `fraction` of traffic goes to `hot`, the rest is uniform.
    ///
    /// # Panics
    /// Panics unless `0.0 <= fraction <= 1.0`.
    pub fn new(params: DragonflyParams, hot: NodeId, fraction: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        Self {
            uniform: Uniform::new(params, seed ^ 0xdead_beef),
            hot,
            fraction,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Traffic for HotSpot {
    fn dest(&mut self, src: NodeId) -> NodeId {
        if src != self.hot && self.rng.gen_bool(self.fraction) {
            self.hot
        } else {
            self.uniform.dest(src)
        }
    }

    fn name(&self) -> &'static str {
        "HOTSPOT"
    }
}

/// Extension: probabilistic mix of two patterns (e.g. 70% UN + 30% ADVc,
/// approximating a shared machine running several applications).
pub struct Mix {
    first: Box<dyn Traffic>,
    second: Box<dyn Traffic>,
    first_fraction: f64,
    rng: SmallRng,
}

impl Mix {
    /// `first_fraction` of packets follow `first`, the rest `second`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= first_fraction <= 1.0`.
    pub fn new(
        first: Box<dyn Traffic>,
        second: Box<dyn Traffic>,
        first_fraction: f64,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&first_fraction));
        Self { first, second, first_fraction, rng: SmallRng::seed_from_u64(seed) }
    }
}

impl Traffic for Mix {
    fn dest(&mut self, src: NodeId) -> NodeId {
        if self.rng.gen_bool(self.first_fraction) {
            self.first.dest(src)
        } else {
            self.second.dest(src)
        }
    }

    fn name(&self) -> &'static str {
        "MIX"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DragonflyParams {
        DragonflyParams::small()
    }

    #[test]
    fn uniform_never_self() {
        let p = params();
        let mut t = Uniform::new(p, 1);
        for n in 0..p.nodes() {
            for _ in 0..10 {
                assert_ne!(t.dest(NodeId(n)), NodeId(n));
            }
        }
    }

    #[test]
    fn uniform_covers_many_destinations() {
        let p = params();
        let mut t = Uniform::new(p, 2);
        let mut seen = vec![false; p.nodes() as usize];
        for _ in 0..20_000 {
            seen[t.dest(NodeId(0)).idx()] = true;
        }
        let covered = seen.iter().filter(|&&b| b).count();
        assert!(covered as u32 > p.nodes() * 9 / 10, "covered {covered}");
    }

    #[test]
    fn adversarial_targets_exact_group() {
        let p = params();
        let mut t = Adversarial::new(p, 1, 3);
        for n in (0..p.nodes()).step_by(5) {
            let src = NodeId(n);
            let dst = t.dest(src);
            let expect = (src.group(&p).0 + 1) % p.groups();
            assert_eq!(dst.group(&p).0, expect);
        }
    }

    #[test]
    fn advc_targets_h_consecutive_groups_only() {
        let p = params();
        let mut t = AdvConsecutive::new(p, 4);
        let src = NodeId(0);
        let mut hit = vec![0u32; p.groups() as usize];
        for _ in 0..6000 {
            hit[t.dest(src).group(&p).idx()] += 1;
        }
        for g in 0..p.groups() {
            if g >= 1 && g <= p.h {
                assert!(hit[g as usize] > 0, "group {g} never targeted");
                // Roughly uniform across the h groups.
                let expected = 6000 / p.h;
                assert!(
                    (hit[g as usize] as i64 - expected as i64).abs() < expected as i64 / 2,
                    "group {g}: {}",
                    hit[g as usize]
                );
            } else {
                assert_eq!(hit[g as usize], 0, "group {g} wrongly targeted");
            }
        }
    }

    #[test]
    fn advc_wraps_around_group_space() {
        let p = params();
        let mut t = AdvConsecutive::new(p, 5);
        let last_group_node = NodeId(p.nodes() - 1);
        for _ in 0..100 {
            let dst = t.dest(last_group_node);
            let off = (dst.group(&p).0 + p.groups() - (p.groups() - 1)) % p.groups();
            assert!(off >= 1 && off <= p.h);
        }
    }

    #[test]
    fn group_local_stays_in_group() {
        let p = params();
        let mut t = GroupLocal::new(p, 6);
        for n in (0..p.nodes()).step_by(7) {
            let src = NodeId(n);
            let dst = t.dest(src);
            assert_eq!(dst.group(&p), src.group(&p));
            assert_ne!(dst, src);
        }
    }

    #[test]
    fn permutation_is_bijective_and_fixed() {
        let p = params();
        let mut t = Permutation::new(p, 7);
        let mut seen = vec![false; p.nodes() as usize];
        for n in 0..p.nodes() {
            let d = t.dest(NodeId(n));
            assert_ne!(d, NodeId(n), "fixed point at {n}");
            assert!(!seen[d.idx()], "node {} targeted twice", d.0);
            seen[d.idx()] = true;
            // Stable across calls.
            assert_eq!(t.dest(NodeId(n)), d);
        }
    }

    #[test]
    fn hotspot_fraction_respected() {
        let p = params();
        let hot = NodeId(10);
        let mut t = HotSpot::new(p, hot, 0.3, 8);
        let mut hits = 0;
        let trials = 10_000;
        for _ in 0..trials {
            if t.dest(NodeId(0)) == hot {
                hits += 1;
            }
        }
        let frac = hits as f64 / trials as f64;
        // Uniform fallback also occasionally hits the hot node.
        assert!((0.27..0.36).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn mix_draws_from_both() {
        let p = params();
        let mut t = Mix::new(
            Box::new(Adversarial::new(p, 1, 1)),
            Box::new(Adversarial::new(p, 2, 2)),
            0.5,
            9,
        );
        let (mut g1, mut g2) = (0, 0);
        for _ in 0..1000 {
            match t.dest(NodeId(0)).group(&p).0 {
                1 => g1 += 1,
                2 => g2 += 1,
                g => panic!("unexpected group {g}"),
            }
        }
        assert!(g1 > 300 && g2 > 300, "g1={g1} g2={g2}");
    }
}
