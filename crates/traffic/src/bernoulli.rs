//! Bernoulli packet generation (§IV-A).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates packets per node per cycle with probability
/// `load / packet_size`, so the *offered* load in phits/(node·cycle)
/// equals `load` in expectation.
#[derive(Debug, Clone)]
pub struct BernoulliInjector {
    prob: f64,
    rng: SmallRng,
}

impl BernoulliInjector {
    /// `load` in phits/(node·cycle), `packet_size` in phits.
    ///
    /// # Panics
    /// Panics if the resulting per-cycle probability exceeds 1 (a node
    /// cannot source more than one packet per cycle) or `load` is
    /// negative.
    pub fn new(load: f64, packet_size: u32, seed: u64) -> Self {
        assert!(load >= 0.0, "load must be non-negative");
        let prob = load / packet_size as f64;
        assert!(
            prob <= 1.0,
            "load {load} phits/node/cycle exceeds one packet per cycle"
        );
        Self { prob, rng: SmallRng::seed_from_u64(seed) }
    }

    /// Should this node generate a packet this cycle?
    #[inline]
    pub fn fire(&mut self) -> bool {
        self.prob > 0.0 && self.rng.gen_bool(self.prob)
    }

    /// The per-cycle generation probability.
    pub fn probability(&self) -> f64 {
        self.prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_rate_within_tolerance() {
        let mut b = BernoulliInjector::new(0.4, 8, 11);
        let trials = 200_000;
        let fired = (0..trials).filter(|_| b.fire()).count();
        let rate = fired as f64 / trials as f64;
        assert!((rate - 0.05).abs() < 0.003, "rate {rate}");
    }

    #[test]
    fn zero_load_never_fires() {
        let mut b = BernoulliInjector::new(0.0, 8, 1);
        assert!((0..1000).all(|_| !b.fire()));
    }

    #[test]
    fn full_load_is_one_packet_every_size_cycles() {
        let mut b = BernoulliInjector::new(8.0, 8, 1);
        assert_eq!(b.probability(), 1.0);
        assert!((0..100).all(|_| b.fire()));
    }

    #[test]
    #[should_panic(expected = "exceeds one packet")]
    fn overload_rejected() {
        BernoulliInjector::new(9.0, 8, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = BernoulliInjector::new(0.4, 8, 99);
        let mut b = BernoulliInjector::new(0.4, 8, 99);
        for _ in 0..1000 {
            assert_eq!(a.fire(), b.fire());
        }
    }
}
