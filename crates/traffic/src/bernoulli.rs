//! Bernoulli packet generation (§IV-A), with one RNG substream per node.

use crate::seed::derive_seed;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates packets per node per cycle with probability
/// `load / packet_size`, so the *offered* load in phits/(node·cycle)
/// equals `load` in expectation.
///
/// Every node draws from its own RNG substream derived as
/// `derive_seed(seed, node)`, so a node's injection sequence is a pure
/// function of `(seed, node)` — independent of how many other nodes exist
/// or in which order they are polled. This keeps recorded traces and
/// per-job runs stable under placement changes.
#[derive(Debug, Clone)]
pub struct BernoulliInjector {
    prob: f64,
    seed: u64,
    rngs: Vec<SmallRng>,
}

impl BernoulliInjector {
    /// `load` in phits/(node·cycle), `packet_size` in phits.
    ///
    /// # Panics
    /// Panics if the resulting per-cycle probability exceeds 1 (a node
    /// cannot source more than one packet per cycle) or `load` is
    /// negative.
    pub fn new(load: f64, packet_size: u32, seed: u64) -> Self {
        assert!(load >= 0.0, "load must be non-negative");
        let prob = load / packet_size as f64;
        assert!(
            prob <= 1.0,
            "load {load} phits/node/cycle exceeds one packet per cycle"
        );
        Self { prob, seed, rngs: Vec::new() }
    }

    /// Should `node` generate a packet this cycle? Substreams are grown
    /// lazily, so the injector needs no up-front node count.
    #[inline]
    pub fn fire(&mut self, node: u32) -> bool {
        if self.prob <= 0.0 {
            return false;
        }
        let idx = node as usize;
        if idx >= self.rngs.len() {
            let seed = self.seed;
            self.rngs.extend(
                (self.rngs.len()..=idx)
                    .map(|n| SmallRng::seed_from_u64(derive_seed(seed, n as u64))),
            );
        }
        self.rngs[idx].gen_bool(self.prob)
    }

    /// The per-cycle generation probability.
    pub fn probability(&self) -> f64 {
        self.prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_rate_within_tolerance() {
        let mut b = BernoulliInjector::new(0.4, 8, 11);
        let trials = 200_000;
        let fired = (0..trials).filter(|_| b.fire(0)).count();
        let rate = fired as f64 / trials as f64;
        assert!((rate - 0.05).abs() < 0.003, "rate {rate}");
    }

    #[test]
    fn zero_load_never_fires() {
        let mut b = BernoulliInjector::new(0.0, 8, 1);
        assert!((0..1000).all(|_| !b.fire(0)));
    }

    #[test]
    fn full_load_is_one_packet_every_size_cycles() {
        let mut b = BernoulliInjector::new(8.0, 8, 1);
        assert_eq!(b.probability(), 1.0);
        assert!((0..100).all(|_| b.fire(3)));
    }

    #[test]
    #[should_panic(expected = "exceeds one packet")]
    fn overload_rejected() {
        BernoulliInjector::new(9.0, 8, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = BernoulliInjector::new(0.4, 8, 99);
        let mut b = BernoulliInjector::new(0.4, 8, 99);
        for _ in 0..1000 {
            for n in 0..4 {
                assert_eq!(a.fire(n), b.fire(n));
            }
        }
    }

    #[test]
    fn node_stream_independent_of_polling_set() {
        // Node 7's sequence must not change when other nodes are polled
        // (or not) around it — the per-node substream property.
        let mut alone = BernoulliInjector::new(0.4, 8, 5);
        let solo: Vec<bool> = (0..500).map(|_| alone.fire(7)).collect();
        let mut crowded = BernoulliInjector::new(0.4, 8, 5);
        let mixed: Vec<bool> = (0..500)
            .map(|_| {
                for n in 0..7 {
                    crowded.fire(n);
                }
                let hit = crowded.fire(7);
                crowded.fire(8);
                hit
            })
            .collect();
        assert_eq!(solo, mixed);
    }

    #[test]
    fn distinct_nodes_distinct_streams() {
        let mut b = BernoulliInjector::new(2.0, 8, 42);
        let s0: Vec<bool> = (0..256).map(|_| b.fire(0)).collect();
        let s1: Vec<bool> = (0..256).map(|_| b.fire(1)).collect();
        assert_ne!(s0, s1);
    }
}
