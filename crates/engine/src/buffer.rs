//! Input virtual-channel buffers and per-port output buffers.
//!
//! Buffers store [`PacketId`] arena handles (plus the packet size for
//! occupancy accounting), not packets: the packet data itself lives in
//! the [`crate::arena::PacketArena`], so enqueue/dequeue moves 8 bytes
//! and never touches the allocator.

use crate::arena::PacketId;
use std::collections::VecDeque;

/// One virtual-channel FIFO of an input port.
///
/// Capacity is in phits; a packet occupies its full size from the moment
/// the upstream sender reserves space (credit decrement) until it is
/// granted to an output buffer here. The occupancy counter is advanced on
/// physical arrival; the *free-space authority* is the upstream credit
/// counter, so `occupancy <= capacity` always holds.
#[derive(Debug)]
pub struct VcBuffer {
    /// `(handle, size in phits)` in arrival order.
    queue: VecDeque<(PacketId, u32)>,
    occupancy: u32,
    capacity: u32,
}

impl VcBuffer {
    /// Empty buffer with `capacity` phits.
    pub fn new(capacity: u32) -> Self {
        Self { queue: VecDeque::new(), occupancy: 0, capacity }
    }

    /// Enqueue an arriving packet of `size` phits.
    ///
    /// # Panics
    /// Panics if the packet overflows the buffer — that would mean the
    /// upstream credit accounting is broken, which is a simulator bug.
    pub fn push(&mut self, id: PacketId, size: u32) {
        self.occupancy += size;
        assert!(
            self.occupancy <= self.capacity,
            "VC buffer overflow: {}/{} phits — credit accounting violated",
            self.occupancy,
            self.capacity
        );
        self.queue.push_back((id, size));
    }

    /// The head packet's handle, if any.
    #[inline]
    pub fn front(&self) -> Option<PacketId> {
        self.queue.front().map(|&(id, _)| id)
    }

    /// The head packet's handle and size, if any. The allocator probe
    /// uses this so it never has to touch the packet's cold arena slot
    /// just to learn the size.
    #[inline]
    pub fn front_entry(&self) -> Option<(PacketId, u32)> {
        self.queue.front().copied()
    }

    /// Remove and return the head packet's handle and size.
    pub fn pop(&mut self) -> Option<(PacketId, u32)> {
        let (id, size) = self.queue.pop_front()?;
        self.occupancy -= size;
        Some((id, size))
    }

    /// Occupied phits (resident packets only).
    #[inline]
    pub fn occupancy(&self) -> u32 {
        self.occupancy
    }

    /// Capacity in phits.
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Number of resident packets.
    #[inline]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no packet is resident.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// A packet staged at an output port together with its downstream VC.
#[derive(Debug, Clone, Copy)]
pub struct Staged {
    /// Arena handle of the packet.
    pub pkt: PacketId,
    /// Packet size in phits (occupancy and serialization accounting).
    pub size: u32,
    /// Downstream input VC (credit was reserved at grant time).
    pub out_vc: u8,
}

/// Per-port output buffer: a FIFO of packets whose downstream space is
/// already reserved, draining onto the link at one phit per cycle.
#[derive(Debug)]
pub struct OutputBuffer {
    queue: VecDeque<Staged>,
    /// Occupied phits, *including* a packet currently serializing onto the
    /// link (space is freed when its tail leaves).
    occupancy: u32,
    capacity: u32,
    /// The link accepts a new packet when `cycle >= link_free_at`.
    pub link_free_at: u64,
}

impl OutputBuffer {
    /// Empty buffer with `capacity` phits.
    pub fn new(capacity: u32) -> Self {
        Self { queue: VecDeque::new(), occupancy: 0, capacity, link_free_at: 0 }
    }

    /// Free space in phits.
    #[inline]
    pub fn free(&self) -> u32 {
        self.capacity - self.occupancy
    }

    /// Occupied phits.
    #[inline]
    pub fn occupancy(&self) -> u32 {
        self.occupancy
    }

    /// Capacity in phits.
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Reserve space and enqueue a granted packet.
    ///
    /// # Panics
    /// Panics on overflow — the allocator must check [`Self::free`] first.
    pub fn push(&mut self, staged: Staged) {
        self.occupancy += staged.size;
        assert!(
            self.occupancy <= self.capacity,
            "output buffer overflow: {}/{}",
            self.occupancy,
            self.capacity
        );
        self.queue.push_back(staged);
    }

    /// Head packet waiting for the link.
    #[inline]
    pub fn front(&self) -> Option<&Staged> {
        self.queue.front()
    }

    /// Dequeue the head for transmission. Space is *not* freed here; call
    /// [`Self::release`] when the tail has left the port.
    pub fn pop_for_tx(&mut self) -> Option<Staged> {
        self.queue.pop_front()
    }

    /// Free the space of a packet whose tail has been transmitted.
    pub fn release(&mut self, size: u32) {
        debug_assert!(self.occupancy >= size);
        self.occupancy -= size;
    }

    /// Number of staged packets (excluding any already popped for tx).
    #[inline]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no packet is staged.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc_fifo_order_and_occupancy() {
        let mut vc = VcBuffer::new(32);
        vc.push(PacketId(1), 8);
        vc.push(PacketId(2), 8);
        assert_eq!(vc.occupancy(), 16);
        assert_eq!(vc.len(), 2);
        assert_eq!(vc.pop(), Some((PacketId(1), 8)));
        assert_eq!(vc.occupancy(), 8);
        assert_eq!(vc.front(), Some(PacketId(2)));
        assert_eq!(vc.front_entry(), Some((PacketId(2), 8)));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn vc_overflow_is_a_bug() {
        let mut vc = VcBuffer::new(16);
        vc.push(PacketId(1), 8);
        vc.push(PacketId(2), 8);
        vc.push(PacketId(3), 8);
    }

    #[test]
    fn output_buffer_space_freed_on_release_only() {
        let mut ob = OutputBuffer::new(32);
        ob.push(Staged { pkt: PacketId(1), size: 8, out_vc: 0 });
        assert_eq!(ob.free(), 24);
        let staged = ob.pop_for_tx().unwrap();
        // Space still held while serializing.
        assert_eq!(ob.free(), 24);
        ob.release(staged.size);
        assert_eq!(ob.free(), 32);
    }

    #[test]
    fn output_buffer_holds_exactly_capacity() {
        let mut ob = OutputBuffer::new(32);
        for i in 0..4 {
            ob.push(Staged { pkt: PacketId(i), size: 8, out_vc: 0 });
        }
        assert_eq!(ob.free(), 0);
        assert_eq!(ob.len(), 4);
    }
}
