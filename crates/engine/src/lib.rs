//! # df-engine
//!
//! Cycle-driven network-simulation substrate for the Dragonfly unfairness
//! reproduction (Fuentes et al., CLUSTER 2015). The engine models:
//!
//! * **packets** of `packet_size` phits under virtual cut-through,
//! * **input-output buffered routers** with a 5-cycle pipeline, virtual
//!   channels, and an **iterative separable batch allocator** running at
//!   2× internal speedup,
//! * **credit-based flow control** across pipelined links (10-cycle local,
//!   100-cycle global),
//! * pluggable **output arbitration**: round-robin, transit-over-injection
//!   priority, or age-based (the explicit fairness mechanism),
//! * pluggable **routing policies** (implemented in `df-routing`) and
//!   **stats sinks** (aggregated in `df-stats`).
//!
//! The per-packet latency accounting preserves the identity
//! `latency == traversal + waits.total()`, which the test-suite checks and
//! which yields the paper's Figure 3 breakdown directly.

#![warn(missing_docs)]

mod arena;
mod buffer;
mod config;
mod events;
mod network;
mod packet;
mod policy;
mod router;
mod shard;

pub use arena::{PacketArena, PacketCold, PacketId};
pub use buffer::{OutputBuffer, Staged, VcBuffer};
pub use config::{ArbiterPolicy, EngineConfig, TelemetrySpec};
pub use network::{Counters, Network, PhaseProfile};
pub use shard::{RecordQueue, ShardedNetwork};
pub use packet::{
    Decision, DeliveredRecord, Packet, PacketHeader, PacketSeq, Phase, RouteDep, RouteInfo,
    WaitBreakdown,
};
pub use policy::{CycleCtx, NullSink, RoutingPolicy, StatsSink};
pub use router::{input_capacity_for, vcs_for, RouterState};
