//! Slab storage for in-flight packets.
//!
//! Every accepted packet lives in one [`PacketArena`] slot from `offer`
//! until delivery; buffers, node queues, and link events carry the `u32`
//! [`PacketId`] handle instead of a `Box<Packet>`. Freed slots go on a
//! free list and are reused in LIFO order, so steady-state simulation
//! performs no per-packet heap allocation and packet state stays
//! cache-dense (the arena grows once to the peak in-flight population and
//! then stays fixed).

use crate::packet::Packet;
use std::ops::{Index, IndexMut};

/// Handle of a live packet in the [`PacketArena`] (slab slot index).
///
/// Handles are reused after delivery; the stable per-simulation identity
/// of a packet is its monotonic sequence number [`header.id`].
///
/// [`header.id`]: crate::packet::PacketHeader::id
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketId(pub u32);

/// Slab of in-flight packets with free-list reuse.
#[derive(Debug, Default)]
pub struct PacketArena {
    slots: Vec<Packet>,
    free: Vec<u32>,
}

impl PacketArena {
    /// Empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store `pkt` and return its handle, reusing a freed slot if any.
    pub fn insert(&mut self, pkt: Packet) -> PacketId {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = pkt;
                PacketId(slot)
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("arena overflow");
                self.slots.push(pkt);
                PacketId(slot)
            }
        }
    }

    /// Release the slot behind `id` for reuse. The caller must not use
    /// the handle afterwards (the slot's contents stay readable until the
    /// next [`PacketArena::insert`], but mean nothing).
    pub fn free(&mut self, id: PacketId) {
        debug_assert!(
            (id.0 as usize) < self.slots.len() && !self.free.contains(&id.0),
            "double free of packet slot {}",
            id.0
        );
        self.free.push(id.0);
    }

    /// Packets currently live (inserted and not freed).
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total slots ever allocated (the peak live population).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

impl Index<PacketId> for PacketArena {
    type Output = Packet;

    #[inline]
    fn index(&self, id: PacketId) -> &Packet {
        &self.slots[id.0 as usize]
    }
}

impl IndexMut<PacketId> for PacketArena {
    #[inline]
    fn index_mut(&mut self, id: PacketId) -> &mut Packet {
        &mut self.slots[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_topology::{GroupId, NodeId};

    fn pkt(seq: u64) -> Packet {
        Packet::new(seq, NodeId(0), NodeId(1), 8, 0, GroupId(0))
    }

    #[test]
    fn insert_read_free_reuse() {
        let mut arena = PacketArena::new();
        let a = arena.insert(pkt(1));
        let b = arena.insert(pkt(2));
        assert_ne!(a, b);
        assert_eq!(arena[a].header.id, 1);
        assert_eq!(arena[b].header.id, 2);
        assert_eq!(arena.live(), 2);
        arena.free(a);
        assert_eq!(arena.live(), 1);
        // LIFO reuse: the freed slot is handed back first.
        let c = arena.insert(pkt(3));
        assert_eq!(c, a);
        assert_eq!(arena[c].header.id, 3);
        assert_eq!(arena.capacity(), 2, "no growth while a free slot exists");
    }

    #[test]
    fn capacity_tracks_peak_live() {
        let mut arena = PacketArena::new();
        let ids: Vec<PacketId> = (0..10).map(|i| arena.insert(pkt(i))).collect();
        for id in &ids {
            arena.free(*id);
        }
        assert_eq!(arena.live(), 0);
        for i in 0..10 {
            arena.insert(pkt(100 + i));
        }
        assert_eq!(arena.capacity(), 10, "drain-and-refill must not grow the slab");
    }

    #[test]
    fn mutation_through_handle() {
        let mut arena = PacketArena::new();
        let id = arena.insert(pkt(7));
        arena[id].waits.injection = 42;
        assert_eq!(arena[id].waits.injection, 42);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_is_a_bug() {
        let mut arena = PacketArena::new();
        let id = arena.insert(pkt(1));
        arena.free(id);
        arena.free(id);
    }
}
