//! Structure-of-arrays slab storage for in-flight packets.
//!
//! Every accepted packet lives in one [`PacketArena`] slot from `offer`
//! until delivery; buffers, node queues, and link events carry the `u32`
//! [`PacketId`] handle instead of a `Box<Packet>`. The slot itself is
//! split by access frequency:
//!
//! * **hot arrays** — [`eligible_at`](PacketArena::eligible_at) and the
//!   current routing [`decision`](PacketArena::decision), each in its own
//!   parallel array. The switch allocator probes every candidate head
//!   every cycle, and with this layout the common rejection path
//!   (`eligible_at > cycle`) touches a single 8-byte lane — eight
//!   candidates per cache line — instead of a whole packet struct;
//! * **one cold array** — identity, route state, and cycle accounting
//!   ([`PacketCold`]), touched only on arrival, grant, and delivery.
//!
//! Vacant slots form an **intrusive free list**: the next-free link is
//! stored inside the vacant slot's `eligible_at` lane, so freeing and
//! reusing a slot costs two scalar writes and no side-car `Vec` traffic.
//! Slots are reused in LIFO order and steady-state simulation performs no
//! per-packet heap allocation (the arena grows once to the peak in-flight
//! population and then stays fixed).

use crate::packet::{Decision, Packet, PacketHeader, RouteDep, RouteInfo, WaitBreakdown};

/// Handle of a live packet in the [`PacketArena`] (slab slot index).
///
/// Handles are reused after delivery; the stable per-simulation identity
/// of a packet is its monotonic sequence number [`header.id`].
///
/// [`header.id`]: crate::packet::PacketHeader::id
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketId(pub u32);

/// Free-list terminator stored in a vacant slot's `eligible_at` lane.
const FREE_NONE: u32 = u32::MAX;

/// Rarely-touched packet state: identity, route, and accounting. Read on
/// arrival, grant, and delivery — never by the per-candidate allocator
/// probe.
#[derive(Debug, Clone, Copy)]
pub struct PacketCold {
    /// Identity and endpoints.
    pub header: PacketHeader,
    /// Routing state (interpreted by `df-routing`).
    pub route: RouteInfo,
    /// Accumulated queueing cycles.
    pub waits: WaitBreakdown,
    /// Pure traversal cycles so far (links and pipelines, no queueing).
    pub traversal: u64,
    /// Cycle the packet entered the current output buffer.
    pub out_enq_at: u64,
}

/// SoA slab of in-flight packets with intrusive free-list reuse.
#[derive(Debug, Default)]
pub struct PacketArena {
    /// Hot: cycle the head becomes eligible for allocation at the current
    /// router. For a vacant slot this lane holds the next-free link.
    eligible_at: Vec<u64>,
    /// Hot: decided output for the current hop, if any.
    decision: Vec<Option<Decision>>,
    /// Hot: what the current decision depended on (meaningful only while
    /// `decision` is `Some`; set together with it by the allocator).
    dep: Vec<RouteDep>,
    /// Cold: everything else.
    cold: Vec<PacketCold>,
    /// Head of the intrusive free list (`FREE_NONE` when full).
    free_head: u32,
    /// Number of vacant slots.
    free_len: u32,
}

impl PacketArena {
    /// Empty arena.
    pub fn new() -> Self {
        Self {
            eligible_at: Vec::new(),
            decision: Vec::new(),
            dep: Vec::new(),
            cold: Vec::new(),
            free_head: FREE_NONE,
            free_len: 0,
        }
    }

    /// Store `pkt` and return its handle, reusing a freed slot if any.
    pub fn insert(&mut self, pkt: Packet) -> PacketId {
        let Packet { header, route, waits, traversal, eligible_at, out_enq_at, decision } = pkt;
        let cold = PacketCold { header, route, waits, traversal, out_enq_at };
        if self.free_head != FREE_NONE {
            let slot = self.free_head as usize;
            self.free_head = self.eligible_at[slot] as u32;
            self.free_len -= 1;
            self.eligible_at[slot] = eligible_at;
            self.decision[slot] = decision;
            self.dep[slot] = RouteDep::Volatile;
            self.cold[slot] = cold;
            PacketId(slot as u32)
        } else {
            let slot = u32::try_from(self.cold.len()).expect("arena overflow");
            assert!(slot != FREE_NONE, "arena overflow");
            self.eligible_at.push(eligible_at);
            self.decision.push(decision);
            self.dep.push(RouteDep::Volatile);
            self.cold.push(cold);
            PacketId(slot)
        }
    }

    /// Release the slot behind `id` for reuse. The caller must not use
    /// the handle afterwards (the slot's cold contents stay readable until
    /// the next [`PacketArena::insert`], but mean nothing).
    pub fn free(&mut self, id: PacketId) {
        debug_assert!(
            (id.0 as usize) < self.cold.len() && !self.free_contains(id),
            "double free of packet slot {}",
            id.0
        );
        self.eligible_at[id.0 as usize] = self.free_head as u64;
        self.free_head = id.0;
        self.free_len += 1;
    }

    /// Whether `id` is already on the free list (debug-only leak check;
    /// walks the intrusive chain).
    fn free_contains(&self, id: PacketId) -> bool {
        let mut cursor = self.free_head;
        while cursor != FREE_NONE {
            if cursor == id.0 {
                return true;
            }
            cursor = self.eligible_at[cursor as usize] as u32;
        }
        false
    }

    /// Packets currently live (inserted and not freed).
    pub fn live(&self) -> usize {
        self.cold.len() - self.free_len as usize
    }

    /// Total slots ever allocated (the peak live population).
    pub fn capacity(&self) -> usize {
        self.cold.len()
    }

    // ------------------------------------------------------------------
    // Hot lanes
    // ------------------------------------------------------------------

    /// Cycle the packet's head becomes eligible for allocation.
    #[inline]
    pub fn eligible_at(&self, id: PacketId) -> u64 {
        self.eligible_at[id.0 as usize]
    }

    /// Set the eligibility cycle (arrival + pipeline).
    #[inline]
    pub fn set_eligible_at(&mut self, id: PacketId, cycle: u64) {
        self.eligible_at[id.0 as usize] = cycle;
    }

    /// The packet's pending routing decision, if any.
    #[inline]
    pub fn decision(&self, id: PacketId) -> Option<Decision> {
        self.decision[id.0 as usize]
    }

    /// Commit a routing decision for the current hop.
    #[inline]
    pub fn set_decision(&mut self, id: PacketId, d: Decision) {
        self.decision[id.0 as usize] = Some(d);
    }

    /// Clear the decision (on arrival at a new router).
    #[inline]
    pub fn clear_decision(&mut self, id: PacketId) {
        self.decision[id.0 as usize] = None;
    }

    /// Take the decision out of the slot (on grant).
    #[inline]
    pub fn take_decision(&mut self, id: PacketId) -> Option<Decision> {
        self.decision[id.0 as usize].take()
    }

    /// What the current decision depended on (meaningful only while
    /// [`Self::decision`] is `Some`).
    #[inline]
    pub fn dep(&self, id: PacketId) -> RouteDep {
        self.dep[id.0 as usize]
    }

    /// Record what a just-computed decision depended on (set together
    /// with [`Self::set_decision`]).
    #[inline]
    pub fn set_dep(&mut self, id: PacketId, dep: RouteDep) {
        self.dep[id.0 as usize] = dep;
    }

    // ------------------------------------------------------------------
    // Cold slot
    // ------------------------------------------------------------------

    /// Identity, route state, and accounting of a live packet.
    #[inline]
    pub fn cold(&self, id: PacketId) -> &PacketCold {
        &self.cold[id.0 as usize]
    }

    /// Mutable cold state (wait/traversal accounting, route commit).
    #[inline]
    pub fn cold_mut(&mut self, id: PacketId) -> &mut PacketCold {
        &mut self.cold[id.0 as usize]
    }

    /// Reassemble the full packet view of a live slot (diagnostics; the
    /// hot path never needs the joined struct).
    pub fn snapshot(&self, id: PacketId) -> Packet {
        let cold = self.cold[id.0 as usize];
        Packet {
            header: cold.header,
            route: cold.route,
            waits: cold.waits,
            traversal: cold.traversal,
            eligible_at: self.eligible_at[id.0 as usize],
            out_enq_at: cold.out_enq_at,
            decision: self.decision[id.0 as usize],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_topology::{GroupId, NodeId};

    fn pkt(seq: u64) -> Packet {
        Packet::new(seq, NodeId(0), NodeId(1), 8, 0, GroupId(0))
    }

    #[test]
    fn insert_read_free_reuse() {
        let mut arena = PacketArena::new();
        let a = arena.insert(pkt(1));
        let b = arena.insert(pkt(2));
        assert_ne!(a, b);
        assert_eq!(arena.cold(a).header.id, 1);
        assert_eq!(arena.cold(b).header.id, 2);
        assert_eq!(arena.live(), 2);
        arena.free(a);
        assert_eq!(arena.live(), 1);
        // LIFO reuse: the freed slot is handed back first.
        let c = arena.insert(pkt(3));
        assert_eq!(c, a);
        assert_eq!(arena.cold(c).header.id, 3);
        assert_eq!(arena.capacity(), 2, "no growth while a free slot exists");
    }

    #[test]
    fn capacity_tracks_peak_live() {
        let mut arena = PacketArena::new();
        let ids: Vec<PacketId> = (0..10).map(|i| arena.insert(pkt(i))).collect();
        for id in &ids {
            arena.free(*id);
        }
        assert_eq!(arena.live(), 0);
        for i in 0..10 {
            arena.insert(pkt(100 + i));
        }
        assert_eq!(arena.capacity(), 10, "drain-and-refill must not grow the slab");
    }

    #[test]
    fn mutation_through_handle() {
        let mut arena = PacketArena::new();
        let id = arena.insert(pkt(7));
        arena.cold_mut(id).waits.injection = 42;
        assert_eq!(arena.cold(id).waits.injection, 42);
        arena.set_eligible_at(id, 9);
        assert_eq!(arena.eligible_at(id), 9);
    }

    #[test]
    fn intrusive_free_list_is_lifo_across_interleaving() {
        let mut arena = PacketArena::new();
        let ids: Vec<PacketId> = (0..4).map(|i| arena.insert(pkt(i))).collect();
        arena.free(ids[1]);
        arena.free(ids[3]);
        // LIFO: slot 3 first, then slot 1, then growth.
        assert_eq!(arena.insert(pkt(10)), ids[3]);
        assert_eq!(arena.insert(pkt(11)), ids[1]);
        assert_eq!(arena.insert(pkt(12)), PacketId(4));
        assert_eq!(arena.capacity(), 5);
    }

    #[test]
    fn snapshot_joins_hot_and_cold() {
        let mut arena = PacketArena::new();
        let id = arena.insert(pkt(3));
        arena.set_eligible_at(id, 77);
        let snap = arena.snapshot(id);
        assert_eq!(snap.header.id, 3);
        assert_eq!(snap.eligible_at, 77);
        assert!(snap.decision.is_none());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_is_a_bug() {
        let mut arena = PacketArena::new();
        let id = arena.insert(pkt(1));
        arena.free(id);
        arena.free(id);
    }
}
