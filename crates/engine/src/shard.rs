//! Group-sharded parallel execution of one simulation.
//!
//! A [`ShardedNetwork`] splits a run across a [`ShardPlan`]'s contiguous
//! group ranges: each shard is a [`Network`] slice owning its routers,
//! nodes, event wheel, and packet arena, stepped **phase-major** — every
//! shard runs phase *k* before any shard runs phase *k+1*, preserving the
//! serial engine's deliver → policy → inject → allocate → transmit order
//! network-wide. The shard-local phases (deliver, inject, transmit) fan
//! out over the work-claiming `par_iter_mut`; the phases that touch the
//! single shared routing policy (its RNG and congestion tables) run
//! sequentially in ascending shard order, which is ascending router order
//! — exactly the serial schedule.
//!
//! Cross-shard traffic exists only on global links (groups are whole
//! within a shard): transiting flits and upstream credit returns. Both
//! are staged in per-shard [`ShardOutbox`]es during the parallel phases
//! and exchanged at the end-of-cycle barrier in deterministic ascending
//! (source shard, router, port) order — the order the sending phase
//! produced them. Every event class over one physical link has a single
//! fixed source router, so per-(destination, port, direction) FIFO order
//! matches the serial engine's event-wheel insertion order, and effects
//! across different ports commute; same-seed output is therefore
//! bit-identical for any shard count (see docs/DETERMINISM.md).
//!
//! Delivered-packet records are staged per shard in a [`RecordQueue`]
//! and drained into the real [`StatsSink`] at the same barrier, ascending
//! by shard. Ejection latency is uniform, so all records of one cycle
//! were scheduled in the same earlier cycle in ascending (router, port)
//! order — the concatenation of the shard queues *is* the serial sink
//! order, keeping float accumulation identical.

use crate::arena::PacketId;
use crate::config::EngineConfig;
use crate::network::{Counters, Network, PhaseProfile};
use crate::packet::{DeliveredRecord, Packet, PacketSeq};
use crate::policy::{RoutingPolicy, StatsSink};
use crate::router::RouterState;
use df_topology::{NodeId, Port, RouterId, ShardPlan, Topology};
use rayon::prelude::*;
use std::time::Instant;

/// A credit return crossing a shard boundary (global links only).
#[derive(Debug, Clone, Copy)]
pub(crate) struct RemoteCredit {
    /// Destination router (owned by another shard).
    pub router: RouterId,
    /// Destination port on that router.
    pub port: Port,
    /// Virtual channel the credit replenishes.
    pub vc: u8,
    /// Phits returned.
    pub phits: u32,
    /// Link latency — the delay the sender would have scheduled with.
    pub delay: u64,
}

/// A flit (whole packet, virtual cut-through) crossing a shard boundary.
#[derive(Debug, Clone)]
pub(crate) struct RemoteFlit {
    /// Destination router (owned by another shard).
    pub router: RouterId,
    /// Input port the packet arrives on.
    pub port: Port,
    /// Virtual channel it arrives on.
    pub vc: u8,
    /// Packet size in phits.
    pub size: u32,
    /// Link latency — the delay the sender would have scheduled with.
    pub delay: u64,
    /// The packet by value; the owner re-homes it into its arena.
    pub packet: Packet,
}

/// Per-shard staging area for cross-shard traffic, drained at the cycle
/// barrier. Push order within each vector is the sending phase's
/// deterministic ascending (router, port) order.
#[derive(Debug, Default)]
pub(crate) struct ShardOutbox {
    /// Credit returns from `commit_grant` (allocate phase).
    pub credits: Vec<RemoteCredit>,
    /// Transiting flits from `transmit_outputs` (transmit phase).
    pub flits: Vec<RemoteFlit>,
}

impl ShardOutbox {
    pub(crate) fn is_empty(&self) -> bool {
        self.credits.is_empty() && self.flits.is_empty()
    }
}

/// Per-shard stats sink: stages delivered records for the controller's
/// deterministic ascending-shard drain into the real sink.
#[derive(Debug, Default)]
pub struct RecordQueue {
    pub(crate) records: Vec<DeliveredRecord>,
}

impl StatsSink for RecordQueue {
    fn on_delivered(&mut self, rec: &DeliveredRecord) {
        self.records.push(*rec);
    }
}

/// One simulation, group-sharded across cores. Same-seed output is
/// bit-identical to the serial [`Network`] for any shard count.
pub struct ShardedNetwork<P: RoutingPolicy, S: StatsSink> {
    shards: Vec<Network<P, RecordQueue>>,
    /// The single shared routing policy (RNG + congestion tables),
    /// threaded through the sequential phases in ascending shard order.
    policy: P,
    /// The real stats sink, fed at the barrier in ascending shard order.
    sink: S,
    plan: ShardPlan,
    topo: Topology,
    cfg: EngineConfig,
    cycle: u64,
    /// Global packet sequence counter (consumed only on accepted offers,
    /// matching the serial engine byte-for-byte).
    next_packet_seq: PacketSeq,
}

impl<P: RoutingPolicy + Send, S: StatsSink> ShardedNetwork<P, S> {
    /// Build an idle sharded network with `shards` shards (clamped to the
    /// group count; callers wanting a serial engine at `shards == 1`
    /// should construct a [`Network`] instead, though a 1-shard
    /// `ShardedNetwork` is equally bit-identical).
    ///
    /// # Panics
    /// Panics if `cfg` fails validation.
    pub fn new(topo: Topology, cfg: EngineConfig, policy: P, sink: S, shards: u32) -> Self {
        let plan = ShardPlan::new(*topo.params(), shards);
        let shards: Vec<Network<P, RecordQueue>> = (0..plan.shards())
            .map(|s| {
                Network::new_shard(
                    topo.clone(),
                    cfg,
                    RecordQueue::default(),
                    plan.router_range(s),
                    plan.node_range(s),
                )
            })
            .collect();
        Self { shards, policy, sink, plan, topo, cfg, cycle: 0, next_packet_seq: 0 }
    }

    /// The shard plan in effect.
    #[inline]
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shards (after clamping).
    #[inline]
    pub fn shard_count(&self) -> u32 {
        self.plan.shards()
    }

    /// Current simulation cycle.
    #[inline]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The engine configuration.
    #[inline]
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The stats sink (for result extraction).
    #[inline]
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the sink (e.g. to reset it after warm-up).
    #[inline]
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// The routing policy.
    #[inline]
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Packets accepted but not yet delivered, across all shards.
    pub fn in_flight(&self) -> u64 {
        self.shards.iter().map(|sh| sh.in_flight()).sum()
    }

    /// Events currently traversing links, across all shards.
    pub fn events_pending(&self) -> usize {
        self.shards.iter().map(|sh| sh.events_pending()).sum()
    }

    /// Arena-resident packets across all shards (leak check).
    pub fn arena_live(&self) -> usize {
        self.shards.iter().map(|sh| sh.arena_live()).sum()
    }

    /// Arena slots ever allocated, summed across shards.
    pub fn arena_capacity(&self) -> usize {
        self.shards.iter().map(|sh| sh.arena_capacity()).sum()
    }

    /// Ready, unparked input-VC heads across all shards.
    pub fn probe_ready_total(&self) -> u64 {
        self.shards.iter().map(|sh| sh.probe_ready_total()).sum()
    }

    /// Sum of every output port's epoch counter across all shards.
    pub fn port_epoch_sum(&self) -> u64 {
        self.shards.iter().map(|sh| sh.port_epoch_sum()).sum()
    }

    /// Cycles since any packet anywhere won switch allocation.
    pub fn cycles_since_progress(&self) -> u64 {
        let latest = self.shards.iter().map(|sh| sh.last_progress()).max().unwrap_or(0);
        self.cycle - latest
    }

    /// Read access to a router's state (global id; routed to its shard).
    pub fn router(&self, id: RouterId) -> &RouterState {
        self.shards[self.plan.shard_of_router(id) as usize].router(id)
    }

    /// Resolve a packet handle *relative to the shard owning `router`*
    /// (handles are shard-local; pair them with the router they were read
    /// from, e.g. via [`RouterState::head`]).
    pub fn packet_at(&self, router: RouterId, id: PacketId) -> Packet {
        self.shards[self.plan.shard_of_router(router) as usize].packet(id)
    }

    /// Engine counters merged across shards: scalars sum, per-router and
    /// per-node vectors splice at the shards' base offsets, and `cycles`
    /// (which every shard advances identically) is taken from shard 0.
    pub fn counters(&self) -> Counters {
        let params = self.topo.params();
        let mut merged = Counters::new(params.routers() as usize, params.nodes() as usize);
        for (s, sh) in self.shards.iter().enumerate() {
            merged.merge_shard(
                sh.counters(),
                self.plan.router_range(s as u32).start as usize,
                self.plan.node_range(s as u32).start as usize,
            );
        }
        merged.cycles = self.shards[0].counters().cycles;
        merged
    }

    /// Zero the measurement counters on every shard.
    pub fn reset_counters(&mut self) {
        for sh in &mut self.shards {
            sh.reset_counters();
        }
    }

    /// Offer a packet for generation (same contract as [`Network::offer`];
    /// the global sequence number is consumed only on acceptance).
    pub fn offer(&mut self, src: NodeId, dst: NodeId) -> bool {
        let s = self.plan.shard_of_node(src) as usize;
        let seq = self.next_packet_seq;
        if self.shards[s].offer_with_seq(src, dst, seq) {
            self.next_packet_seq += 1;
            true
        } else {
            false
        }
    }

    /// Advance the simulation by one cycle, phase-major across shards.
    pub fn step(&mut self) {
        self.cycle += 1;
        self.shards.par_iter_mut().for_each(|sh| {
            sh.begin_cycle_bump();
            sh.phase_deliver();
        });
        // Policy phases: sequential, ascending shard order == ascending
        // router order, so policy RNG/state is consumed exactly as in the
        // serial engine.
        for sh in &mut self.shards {
            sh.run_policy_begin_with(&mut self.policy);
        }
        self.shards.par_iter_mut().for_each(|sh| sh.phase_inject());
        for sh in &mut self.shards {
            sh.allocate_all_with(&mut self.policy);
        }
        self.shards.par_iter_mut().for_each(|sh| sh.phase_transmit());
        self.barrier_exchange();
    }

    /// [`Self::step`] with per-phase wall-clock accumulation (the barrier
    /// exchange is folded into `transmit_ns`).
    pub fn step_timed(&mut self, profile: &mut PhaseProfile) {
        self.cycle += 1;
        let t0 = Instant::now();
        self.shards.par_iter_mut().for_each(|sh| {
            sh.begin_cycle_bump();
            sh.phase_deliver();
        });
        let t1 = Instant::now();
        for sh in &mut self.shards {
            sh.run_policy_begin_with(&mut self.policy);
        }
        let t2 = Instant::now();
        self.shards.par_iter_mut().for_each(|sh| sh.phase_inject());
        let t3 = Instant::now();
        for sh in &mut self.shards {
            sh.allocate_all_with(&mut self.policy);
        }
        let t4 = Instant::now();
        self.shards.par_iter_mut().for_each(|sh| sh.phase_transmit());
        self.barrier_exchange();
        let t5 = Instant::now();
        profile.deliver_ns += (t1 - t0).as_nanos() as u64;
        profile.policy_ns += (t2 - t1).as_nanos() as u64;
        profile.inject_ns += (t3 - t2).as_nanos() as u64;
        profile.allocate_ns += (t4 - t3).as_nanos() as u64;
        profile.transmit_ns += (t5 - t4).as_nanos() as u64;
        profile.cycles += 1;
    }

    /// Run `n` cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Run until every accepted packet has been delivered, up to `max`
    /// extra cycles. Returns `true` if the network drained.
    pub fn drain(&mut self, max: u64) -> bool {
        for _ in 0..max {
            if self.in_flight() == 0 {
                debug_assert_eq!(self.arena_live(), 0, "arena leak after drain");
                return true;
            }
            self.step();
        }
        self.in_flight() == 0
    }

    /// End-of-cycle barrier: exchange cross-shard traffic and drain the
    /// per-shard record queues, both in ascending source-shard order.
    /// Credits (allocate phase) are delivered before flits (transmit
    /// phase), matching the serial engine's within-cycle schedule order;
    /// within each vector the sending phase's ascending (router, port)
    /// push order is preserved.
    fn barrier_exchange(&mut self) {
        for s in 0..self.shards.len() {
            let ShardOutbox { credits, flits } = self.shards[s].take_outbox();
            for c in credits {
                let t = self.plan.shard_of_router(c.router) as usize;
                debug_assert_ne!(t, s, "outbox entry for a locally owned router");
                self.shards[t].accept_remote_credit(c);
            }
            for f in flits {
                let t = self.plan.shard_of_router(f.router) as usize;
                debug_assert_ne!(t, s, "outbox entry for a locally owned router");
                self.shards[t].accept_remote_flit(f);
            }
        }
        for sh in &mut self.shards {
            for rec in sh.sink_mut().records.drain(..) {
                self.sink.on_delivered(&rec);
            }
        }
    }

    /// Shadow check of the sharded execution's cross-cycle invariants,
    /// mirroring [`Network::assert_work_lists_match_full_scan`]. Call
    /// between steps. Asserts, per shard: the cycle counters are aligned
    /// with the controller; the cross-shard outbox and record queue were
    /// fully drained at the barrier; the live-packet count matches the
    /// arena's resident population; and every scheduling work list
    /// matches a full scan of the underlying state. O(network); intended
    /// for tests.
    pub fn assert_shards_coherent(&self) {
        for (s, sh) in self.shards.iter().enumerate() {
            assert_eq!(sh.cycle(), self.cycle, "shard {s} cycle skew at barrier");
            assert!(
                sh.outbox_is_empty(),
                "cross-shard queue not drained at barrier (shard {s}, cycle {})",
                self.cycle
            );
            assert!(
                sh.sink().records.is_empty(),
                "delivery records not drained at barrier (shard {s}, cycle {})",
                self.cycle
            );
            assert_eq!(
                sh.in_flight(),
                sh.arena_live() as u64,
                "live-packet count diverged from arena population (shard {s}, cycle {})",
                self.cycle
            );
            sh.assert_work_lists_match_full_scan();
        }
    }

    /// Fan [`Network::assert_route_cache_coherent`] out across shards
    /// (shadow-verify builds), threading the shared policy through.
    pub fn assert_route_cache_coherent(&mut self) {
        for sh in &mut self.shards {
            sh.assert_route_cache_coherent_with(&mut self.policy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArbiterPolicy;
    use crate::packet::{Decision, PacketHeader, RouteInfo};
    use df_topology::{Arrangement, DragonflyParams, PortKind, PortLayout};

    /// Minimal-only routing (same as the serial engine's test policy).
    struct MinOnly {
        topo: Topology,
    }

    impl RoutingPolicy for MinOnly {
        fn route(
            &mut self,
            router: &RouterState,
            _in_port: Port,
            hdr: PacketHeader,
            mut info: RouteInfo,
        ) -> Decision {
            let params = self.topo.params();
            let me = router.id();
            let dst_router = hdr.dst.router(params);
            let (out_port, out_vc, is_global) = if dst_router == me {
                (params.injection_port(hdr.dst.slot(params)), 0, false)
            } else if dst_router.group(params) == me.group(params) {
                (
                    params.local_port(me.local_index(params), dst_router.local_index(params)),
                    info.local_hops,
                    false,
                )
            } else {
                let (exit, j) =
                    self.topo.exit_to_group(me.group(params), dst_router.group(params));
                if exit == me {
                    (params.global_port(j), info.global_hops, true)
                } else {
                    (
                        params.local_port(me.local_index(params), exit.local_index(params)),
                        info.local_hops,
                        false,
                    )
                }
            };
            if is_global {
                info.global_hops += 1;
            } else if params.port_kind(out_port) == PortKind::Local {
                info.local_hops += 1;
            }
            Decision { out_port, out_vc, info }
        }

        fn name(&self) -> &'static str {
            "test-min"
        }
    }

    fn serial() -> Network<MinOnly, RecordQueue> {
        let topo = Topology::new(DragonflyParams::figure1(), Arrangement::Palmtree);
        let policy = MinOnly { topo: topo.clone() };
        let cfg = EngineConfig::paper(ArbiterPolicy::RoundRobin, 3);
        Network::new(topo, cfg, policy, RecordQueue::default())
    }

    fn sharded(shards: u32) -> ShardedNetwork<MinOnly, RecordQueue> {
        let topo = Topology::new(DragonflyParams::figure1(), Arrangement::Palmtree);
        let policy = MinOnly { topo: topo.clone() };
        let cfg = EngineConfig::paper(ArbiterPolicy::RoundRobin, 3);
        ShardedNetwork::new(topo, cfg, policy, RecordQueue::default(), shards)
    }

    /// Deterministic mixed workload touching every group: the offers to
    /// make before stepping each round.
    fn round_offers(round: u32) -> Vec<(NodeId, NodeId)> {
        let nodes = DragonflyParams::figure1().nodes();
        let mut out = Vec::new();
        for n in 0..nodes {
            if (n + round).is_multiple_of(3) {
                let dst = (n * 31 + round * 7 + 1) % nodes;
                if dst != n {
                    out.push((NodeId(n), NodeId(dst)));
                }
            }
        }
        out
    }

    #[test]
    fn sharded_counters_match_serial_exactly() {
        let mut base = serial();
        for round in 0..30u32 {
            for (s, d) in round_offers(round) {
                base.offer(s, d);
            }
            base.step();
        }
        assert!(base.drain(50_000));
        let base_counters = base.counters().clone();
        let base_records = std::mem::take(&mut base.sink_mut().records);

        for shards in [1u32, 2, 3, 9] {
            let mut net = sharded(shards);
            for round in 0..30u32 {
                for (s, d) in round_offers(round) {
                    net.offer(s, d);
                }
                net.step();
            }
            assert!(net.drain(50_000), "sharded S={shards} failed to drain");
            net.assert_shards_coherent();
            let c = net.counters();
            assert_eq!(c.delivered_packets, base_counters.delivered_packets, "S={shards}");
            assert_eq!(c.accepted_packets, base_counters.accepted_packets, "S={shards}");
            assert_eq!(c.offered_packets, base_counters.offered_packets, "S={shards}");
            assert_eq!(c.delivered_phits, base_counters.delivered_phits, "S={shards}");
            assert_eq!(c.escape_grants, base_counters.escape_grants, "S={shards}");
            assert_eq!(c.global_phits, base_counters.global_phits, "S={shards}");
            assert_eq!(
                c.injected_per_router, base_counters.injected_per_router,
                "per-router injections diverged at S={shards}"
            );
            assert_eq!(
                c.injected_per_node, base_counters.injected_per_node,
                "per-node injections diverged at S={shards}"
            );
            // Record-for-record identity, including arrival order.
            let records = std::mem::take(&mut net.sink_mut().records);
            assert_eq!(records.len(), base_records.len(), "S={shards}");
            for (i, (a, b)) in records.iter().zip(&base_records).enumerate() {
                assert_eq!(a, b, "delivered record {i} diverged at S={shards}");
            }
        }
    }

    #[test]
    fn coherence_assert_holds_mid_run() {
        let mut net = sharded(3);
        let nodes = net.topology().params().nodes();
        for round in 0..60u32 {
            for n in (0..nodes).step_by(4) {
                net.offer(NodeId(n), NodeId((n * 13 + round * 5 + 1) % nodes));
            }
            net.step();
            net.assert_shards_coherent();
        }
        assert!(net.drain(50_000));
        net.assert_shards_coherent();
    }

    #[test]
    fn full_queue_consumes_no_sequence_number() {
        // Hammer one node far past its queue bound: rejected offers must
        // not advance the shared sequence counter (serial contract).
        let mut net = sharded(2);
        let mut accepted = 0u64;
        for _ in 0..1000 {
            if net.offer(NodeId(0), NodeId(70)) {
                accepted += 1;
            }
        }
        let c = net.counters();
        assert_eq!(c.offered_packets, 1000);
        assert_eq!(c.accepted_packets, accepted);
        assert!(accepted < 1000, "queue bound should have rejected some offers");
        assert!(net.drain(100_000));
        assert_eq!(net.counters().delivered_packets, accepted);
    }
}
