//! Per-router state: input VCs, output buffers, downstream credits, and
//! the congestion views consumed by adaptive routing policies.
//!
//! All buffer and credit mutations go through the `push_input` /
//! `pop_input` / `stage_output` / `pop_output` / `release_output` /
//! `reserve_credit` / `return_credit` methods, which keep the derived
//! structures in sync:
//!
//! * `in_ready` — a bitmask of non-empty VCs per input port, so the
//!   switch allocator only visits occupied VCs;
//! * `input_count` / `staged_count` — router-level packet counts, so
//!   idle routers are skipped outright;
//! * `downstream_used` — cached consumed-credit phits per output port,
//!   making every congestion probe O(1) instead of O(VCs);
//! * `port_epoch` / `in_parked` / `waiters` / `probe_ready` — the
//!   route-decision cache's change tracking: every mutation of an output
//!   port's allocator-visible state bumps the port's epoch and wakes
//!   heads parked on it, so a blocked router pays O(changed ports) per
//!   cycle instead of O(blocked heads).

use crate::arena::PacketId;
use crate::buffer::{OutputBuffer, Staged, VcBuffer};
use crate::config::EngineConfig;
use df_topology::{DragonflyParams, Port, PortKind, PortLayout, RouterId};

/// All state of one router.
#[derive(Debug)]
pub struct RouterState {
    id: RouterId,
    /// Input buffers, `[port][vc]`.
    pub(crate) inputs: Vec<Vec<VcBuffer>>,
    /// Output buffers, `[port]`.
    pub(crate) outputs: Vec<OutputBuffer>,
    /// Credits towards the downstream input buffer of each output port,
    /// `[port][downstream vc]`, in phits. Empty for ejection ports (nodes
    /// are infinite sinks).
    pub(crate) credits: Vec<Vec<u32>>,
    /// Capacity behind each credit counter (for occupancy views).
    pub(crate) credit_caps: Vec<Vec<u32>>,
    /// Cached consumed downstream phits per output port (sum over VCs of
    /// `cap - credits`), maintained by `reserve_credit`/`return_credit`.
    downstream_used: Vec<u32>,
    /// Precomputed total downstream capacity per output port.
    downstream_cap: Vec<u32>,
    /// Round-robin pointer per input port (over its VCs).
    pub(crate) in_rr: Vec<u32>,
    /// Round-robin pointer per output port (over input ports).
    pub(crate) out_rr: Vec<u32>,
    /// Bitmask of non-empty VCs per input port (the ready-VC list).
    pub(crate) in_ready: Vec<u32>,
    /// Bitmask of output ports with at least one staged packet (the
    /// ready-output list): `transmit_outputs` visits only set bits
    /// instead of scanning all `radix` output buffers.
    pub(crate) out_ready: u64,
    /// Packets resident across all input VCs.
    pub(crate) input_count: u32,
    /// Packets staged across all output buffers.
    pub(crate) staged_count: u32,
    /// Change epoch per output port, bumped by every mutation of the
    /// port's allocator-visible state (credit reserve/return, staging,
    /// output-buffer release). Cached routing decisions record the epoch
    /// of the port they read; a mismatch marks them stale.
    port_epoch: Vec<u32>,
    /// Bitmask of *parked* VCs per input port: heads whose routing
    /// decision is stable but whose target output cannot accept them.
    /// The allocator skips them until the target port is touched.
    pub(crate) in_parked: Vec<u32>,
    /// Output port each parked `(port, vc)` head waits on (`[port][vc]`,
    /// meaningful only while the parked bit is set).
    parked_on: Vec<Vec<u8>>,
    /// Bitmask of input ports with at least one VC parked on this output
    /// port, `[out_port]` — the wake list `touch_port` consults.
    pub(crate) waiters: Vec<u64>,
    /// Bitmask of *sleeping* VCs per input port: heads still inside the
    /// router pipeline (`eligible_at > cycle`). The engine schedules a
    /// `HeadWake` event for the exact eligibility cycle, so these heads
    /// are never probed early.
    pub(crate) in_sleeping: Vec<u32>,
    /// Number of non-empty, unparked, awake input VCs — the heads the
    /// allocator could probe this cycle. Zero means allocation is a
    /// no-op for this router.
    probe_ready: u32,
}

/// Number of VCs for a port of the given kind under `cfg`.
pub fn vcs_for(cfg: &EngineConfig, kind: PortKind) -> u8 {
    match kind {
        PortKind::Injection => cfg.vcs_injection,
        PortKind::Local => cfg.vcs_local,
        PortKind::Global => cfg.vcs_global,
    }
}

/// Input-buffer capacity per VC for a port of the given kind.
pub fn input_capacity_for(cfg: &EngineConfig, kind: PortKind) -> u32 {
    match kind {
        PortKind::Injection => cfg.injection_input_buffer,
        PortKind::Local => cfg.local_input_buffer,
        PortKind::Global => cfg.global_input_buffer,
    }
}

impl RouterState {
    /// Build an idle router.
    ///
    /// Credit counters at each local/global output port mirror the input
    /// buffer of the *peer* port, which has the same kind (local links
    /// join two local ports, global links two global ports). Ejection
    /// ports get no credit counters.
    pub fn new(id: RouterId, params: &DragonflyParams, cfg: &EngineConfig) -> Self {
        let radix = params.radix() as usize;
        assert!(radix <= 64, "out_ready bitmask supports at most 64 ports");
        let mut inputs: Vec<Vec<VcBuffer>> = Vec::with_capacity(radix);
        let mut outputs = Vec::with_capacity(radix);
        let mut credits = Vec::with_capacity(radix);
        let mut credit_caps = Vec::with_capacity(radix);
        for q in 0..radix {
            let kind = params.port_kind(Port(q as u32));
            let vcs = vcs_for(cfg, kind) as usize;
            let in_cap = input_capacity_for(cfg, kind);
            inputs.push((0..vcs).map(|_| VcBuffer::new(in_cap)).collect());
            outputs.push(OutputBuffer::new(cfg.output_buffer));
            let (dvcs, dcap) = match kind {
                // Ejection side of an injection port: node sinks packets.
                PortKind::Injection => (0, 0),
                PortKind::Local => (cfg.vcs_local as usize, cfg.local_input_buffer),
                PortKind::Global => (cfg.vcs_global as usize, cfg.global_input_buffer),
            };
            credits.push(vec![dcap; dvcs]);
            credit_caps.push(vec![dcap; dvcs]);
        }
        let downstream_cap = credit_caps.iter().map(|caps| caps.iter().sum()).collect();
        let parked_on = inputs.iter().map(|vcs| vec![0u8; vcs.len()]).collect();
        Self {
            id,
            inputs,
            outputs,
            credits,
            credit_caps,
            downstream_used: vec![0; radix],
            downstream_cap,
            in_rr: vec![0; radix],
            out_rr: vec![0; radix],
            in_ready: vec![0; radix],
            out_ready: 0,
            input_count: 0,
            staged_count: 0,
            port_epoch: vec![0; radix],
            in_parked: vec![0; radix],
            parked_on,
            waiters: vec![0; radix],
            in_sleeping: vec![0; radix],
            probe_ready: 0,
        }
    }

    /// This router's id.
    #[inline]
    pub fn id(&self) -> RouterId {
        self.id
    }

    // ------------------------------------------------------------------
    // Buffer / credit mutations (keep the derived state in sync)
    // ------------------------------------------------------------------

    /// Enqueue an arriving packet on `port`, VC `vc`.
    pub(crate) fn push_input(&mut self, port: usize, vc: usize, id: PacketId, size: u32) {
        let newly_occupied = self.inputs[port][vc].is_empty();
        self.inputs[port][vc].push(id, size);
        self.in_ready[port] |= 1 << vc;
        if newly_occupied {
            debug_assert!(self.in_parked[port] & (1 << vc) == 0, "empty VC cannot be parked");
            debug_assert!(self.in_sleeping[port] & (1 << vc) == 0, "empty VC cannot sleep");
            self.probe_ready += 1;
        }
        self.input_count += 1;
    }

    /// Dequeue the head packet of `port`, VC `vc`, returning its handle
    /// and size.
    ///
    /// # Panics
    /// Panics if the VC is empty.
    pub(crate) fn pop_input(&mut self, port: usize, vc: usize) -> (PacketId, u32) {
        debug_assert!(self.in_parked[port] & (1 << vc) == 0, "granted a parked head");
        debug_assert!(self.in_sleeping[port] & (1 << vc) == 0, "granted a sleeping head");
        let buf = &mut self.inputs[port][vc];
        let entry = buf.pop().expect("pop from empty input VC");
        if buf.is_empty() {
            self.in_ready[port] &= !(1 << vc);
            self.probe_ready -= 1;
        }
        self.input_count -= 1;
        entry
    }

    /// Consume downstream credit on `port`, VC `vc` (grant committed).
    pub(crate) fn reserve_credit(&mut self, port: usize, vc: usize, size: u32) {
        let c = &mut self.credits[port][vc];
        debug_assert!(*c >= size, "allocator granted without credit");
        *c -= size;
        self.downstream_used[port] += size;
        self.touch_port(port);
    }

    /// Return downstream credit on `port`, VC `vc` (space freed below).
    pub(crate) fn return_credit(&mut self, port: usize, vc: usize, phits: u32) {
        let c = &mut self.credits[port][vc];
        *c += phits;
        debug_assert!(*c <= self.credit_caps[port][vc], "credit overflow");
        self.downstream_used[port] -= phits;
        self.touch_port(port);
    }

    /// Stage a granted packet at output `port`.
    pub(crate) fn stage_output(&mut self, port: usize, staged: Staged) {
        self.outputs[port].push(staged);
        self.out_ready |= 1 << port;
        self.staged_count += 1;
        self.touch_port(port);
    }

    /// Free output-buffer space at `port` once the head packet starts
    /// serializing onto the link, and wake heads parked on the port.
    pub(crate) fn release_output(&mut self, port: usize, size: u32) {
        self.outputs[port].release(size);
        self.touch_port(port);
    }

    /// Dequeue the head of output `port` for transmission.
    ///
    /// # Panics
    /// Panics if the output buffer is empty.
    pub(crate) fn pop_output(&mut self, port: usize) -> Staged {
        let staged = self.outputs[port].pop_for_tx().expect("pop from empty output");
        if self.outputs[port].is_empty() {
            self.out_ready &= !(1 << port);
        }
        self.staged_count -= 1;
        staged
        // No `touch_port`: occupancy only changes on `release_output`.
    }

    // ------------------------------------------------------------------
    // Route-decision cache: port epochs and blocked-head parking
    // ------------------------------------------------------------------

    /// Bump `port`'s change epoch (invalidating cached decisions that
    /// read it) and unpark every head waiting on it.
    #[inline]
    pub(crate) fn touch_port(&mut self, port: usize) {
        self.port_epoch[port] = self.port_epoch[port].wrapping_add(1);
        let mut wake = self.waiters[port];
        if wake == 0 {
            return;
        }
        self.waiters[port] = 0;
        while wake != 0 {
            let q = wake.trailing_zeros() as usize;
            wake &= wake - 1;
            let mut parked = self.in_parked[q];
            while parked != 0 {
                let vc = parked.trailing_zeros() as usize;
                parked &= parked - 1;
                if self.parked_on[q][vc] as usize == port {
                    self.in_parked[q] &= !(1 << vc);
                    self.probe_ready += 1;
                }
            }
        }
    }

    /// Park the head of (`in_port`, `vc`): its decision targets
    /// `out_port`, which cannot accept it, and the decision is stable
    /// until `out_port` changes — so the allocator skips the VC until
    /// `touch_port(out_port)` wakes it.
    #[inline]
    pub(crate) fn park(&mut self, in_port: usize, vc: usize, out_port: usize) {
        debug_assert!(self.in_ready[in_port] & (1 << vc) != 0, "parking an empty VC");
        debug_assert!(self.in_parked[in_port] & (1 << vc) == 0, "double park");
        debug_assert!(self.in_sleeping[in_port] & (1 << vc) == 0, "parking a sleeping VC");
        self.in_parked[in_port] |= 1 << vc;
        self.parked_on[in_port][vc] = out_port as u8;
        self.waiters[out_port] |= 1 << in_port;
        self.probe_ready -= 1;
    }

    /// Forget all parking state (route cache toggled off mid-run).
    /// Epochs are left alone — staleness checks only compare equality.
    pub(crate) fn unpark_all(&mut self) {
        for q in 0..self.in_parked.len() {
            self.probe_ready += self.in_parked[q].count_ones();
            self.in_parked[q] = 0;
        }
        self.waiters.fill(0);
    }

    /// Put the head of (`port`, `vc`) to sleep until its pipeline delay
    /// elapses: the engine schedules a `HeadWake` event for the head's
    /// exact `eligible_at` cycle, so the allocator never probes a head
    /// that cannot be eligible yet. Unlike parking, sleeping is a pure
    /// time-based skip, independent of the route cache.
    #[inline]
    pub(crate) fn sleep(&mut self, port: usize, vc: usize) {
        debug_assert!(self.in_ready[port] & (1 << vc) != 0, "sleeping an empty VC");
        debug_assert!(self.in_parked[port] & (1 << vc) == 0, "sleeping a parked VC");
        debug_assert!(self.in_sleeping[port] & (1 << vc) == 0, "double sleep");
        self.in_sleeping[port] |= 1 << vc;
        self.probe_ready -= 1;
    }

    /// Wake the sleeping head of (`port`, `vc`) — its `eligible_at` cycle
    /// has arrived.
    #[inline]
    pub(crate) fn wake(&mut self, port: usize, vc: usize) {
        debug_assert!(self.in_sleeping[port] & (1 << vc) != 0, "wake without sleep");
        self.in_sleeping[port] &= !(1 << vc);
        self.probe_ready += 1;
    }

    // ------------------------------------------------------------------
    // Congestion views (all O(1))
    // ------------------------------------------------------------------

    /// Credits (phits of downstream space) available on `port`, VC `vc`.
    #[inline]
    pub fn credits(&self, port: Port, vc: u8) -> u32 {
        self.credits[port.idx()][vc as usize]
    }

    /// Total downstream space consumed across all VCs of `port`, in phits.
    /// This is the "credit count" congestion signal the paper's adaptive
    /// mechanisms consult.
    #[inline]
    pub fn downstream_occupied(&self, port: Port) -> u32 {
        self.downstream_used[port.idx()]
    }

    /// Total downstream capacity across all VCs of `port`, in phits.
    #[inline]
    pub fn downstream_capacity(&self, port: Port) -> u32 {
        self.downstream_cap[port.idx()]
    }

    /// Occupancy fraction of the queue feeding `port`: staged output
    /// packets plus consumed downstream space, over the respective
    /// capacities. `0.0` idle, `1.0` fully backed up. Ejection ports use
    /// only the output buffer.
    pub fn output_congestion(&self, port: Port) -> f64 {
        let ob = &self.outputs[port.idx()];
        let used = ob.occupancy() + self.downstream_occupied(port);
        let cap = ob.capacity() + self.downstream_capacity(port);
        used as f64 / cap as f64
    }

    /// Queue length feeding `port` in phits (output buffer + consumed
    /// downstream space). The PiggyBack saturation estimate uses this.
    #[inline]
    pub fn output_queue_phits(&self, port: Port) -> u32 {
        self.outputs[port.idx()].occupancy() + self.downstream_occupied(port)
    }

    /// Fraction of the downstream credit window consumed on `port` for
    /// the specific `vc` (1.0 = no credits left). Ejection ports have no
    /// credit window and read 0.0. This mirrors a per-VC "number of
    /// credits of the output port" congestion estimate.
    pub fn vc_credit_fill(&self, port: Port, vc: u8) -> f64 {
        match self.credit_caps[port.idx()].get(vc as usize) {
            Some(&cap) if cap > 0 => {
                let avail = self.credits[port.idx()][vc as usize];
                (cap - avail) as f64 / cap as f64
            }
            _ => 0.0,
        }
    }

    /// Occupancy fraction of the output buffer alone (no downstream
    /// credits). Unlike [`Self::output_congestion`], this signal is free
    /// of the credit round-trip bias: on long links, in-flight credits
    /// consume a large constant fraction of the downstream window even
    /// when no packet is queued, whereas the output buffer only backs up
    /// under genuine credit exhaustion or link overload.
    pub fn output_buffer_fill(&self, port: Port) -> f64 {
        let ob = &self.outputs[port.idx()];
        ob.occupancy() as f64 / ob.capacity() as f64
    }

    /// Whether a packet of `size` phits could be granted to `port`/`vc`
    /// right now (space in the output buffer and downstream credit).
    pub fn can_accept(&self, port: Port, vc: u8, size: u32) -> bool {
        if self.outputs[port.idx()].free() < size {
            return false;
        }
        match self.credits[port.idx()].get(vc as usize) {
            Some(&c) => c >= size,
            // Ejection port: node always sinks.
            None => true,
        }
    }

    /// Resident packets across all input VCs (diagnostics / drain checks).
    pub fn input_packets(&self) -> usize {
        self.input_count as usize
    }

    /// Staged packets across all output buffers.
    pub fn output_packets(&self) -> usize {
        self.staged_count as usize
    }

    /// Input-VC occupancy in phits for `port`, VC `vc` (resident packets).
    pub fn input_occupancy(&self, port: Port, vc: u8) -> u32 {
        self.inputs[port.idx()][vc as usize].occupancy()
    }

    /// Head packet handle of an input VC, if any (diagnostics; resolve
    /// through [`crate::network::Network::packet`]).
    pub fn head(&self, port: Port, vc: u8) -> Option<PacketId> {
        self.inputs[port.idx()][vc as usize].front()
    }

    /// Change epoch of output `port`: bumped by every credit
    /// reserve/return, staging, and output-buffer release on the port.
    /// Cached decisions recording [`crate::RouteDep::Port`] are valid
    /// while this still equals their captured epoch.
    #[inline]
    pub fn port_epoch(&self, port: Port) -> u32 {
        self.port_epoch[port.idx()]
    }

    /// Bitmask of parked VCs on input `port` (blocked heads the
    /// allocator skips until their target output is touched).
    #[inline]
    pub fn parked_vcs(&self, port: Port) -> u32 {
        self.in_parked[port.idx()]
    }

    /// Bitmask of sleeping VCs on input `port` (heads still inside the
    /// router pipeline, skipped until their `HeadWake` event fires).
    #[inline]
    pub fn sleeping_vcs(&self, port: Port) -> u32 {
        self.in_sleeping[port.idx()]
    }

    /// Output port the parked head of (`port`, `vc`) is waiting on, if
    /// that VC is parked.
    pub fn parked_target(&self, port: Port, vc: u8) -> Option<Port> {
        if self.in_parked[port.idx()] & (1 << vc) != 0 {
            Some(Port(self.parked_on[port.idx()][vc as usize] as u32))
        } else {
            None
        }
    }

    /// Number of non-empty, unparked input VCs (the heads the switch
    /// allocator could probe this cycle).
    #[inline]
    pub fn probe_ready(&self) -> u32 {
        self.probe_ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArbiterPolicy;

    fn setup() -> (DragonflyParams, EngineConfig, RouterState) {
        let params = DragonflyParams::paper();
        let cfg = EngineConfig::paper(ArbiterPolicy::RoundRobin, 3);
        let r = RouterState::new(RouterId(0), &params, &cfg);
        (params, cfg, r)
    }

    #[test]
    fn port_structure_matches_params() {
        let (params, cfg, r) = setup();
        assert_eq!(r.inputs.len(), params.radix() as usize);
        // Injection ports: 3 VCs, no downstream credits.
        assert_eq!(r.inputs[0].len(), cfg.vcs_injection as usize);
        assert!(r.credits[0].is_empty());
        // Local port: 3 VCs with 32-phit credit each.
        let lp = params.p as usize;
        assert_eq!(r.inputs[lp].len(), cfg.vcs_local as usize);
        assert_eq!(r.credits[lp], vec![32; 3]);
        // Global port: 2 VCs with 256-phit credit each.
        let gp = (params.p + params.a - 1) as usize;
        assert_eq!(r.inputs[gp].len(), cfg.vcs_global as usize);
        assert_eq!(r.credits[gp], vec![256; 2]);
    }

    #[test]
    fn idle_router_uncongested() {
        let (params, _, r) = setup();
        for q in 0..params.radix() {
            assert_eq!(r.output_congestion(Port(q)), 0.0);
            assert_eq!(r.output_queue_phits(Port(q)), 0);
        }
        assert_eq!(r.input_count, 0);
        assert_eq!(r.staged_count, 0);
    }

    #[test]
    fn can_accept_respects_credits() {
        let (params, _, mut r) = setup();
        let gp = Port(params.p + params.a - 1);
        assert!(r.can_accept(gp, 0, 8));
        r.reserve_credit(gp.idx(), 0, 252);
        assert!(!r.can_accept(gp, 0, 8));
        assert!(r.can_accept(gp, 1, 8));
    }

    #[test]
    fn ejection_always_sinks_when_buffer_free() {
        let (_, _, r) = setup();
        // Injection/ejection port 0, any VC index: no credit constraint.
        assert!(r.can_accept(Port(0), 0, 8));
        assert!(r.can_accept(Port(0), 9, 8));
    }

    #[test]
    fn downstream_occupancy_tracks_credits() {
        let (params, _, mut r) = setup();
        let gp = Port(params.p + params.a - 1);
        assert_eq!(r.downstream_occupied(gp), 0);
        r.reserve_credit(gp.idx(), 0, 8);
        r.reserve_credit(gp.idx(), 1, 16);
        assert_eq!(r.downstream_occupied(gp), 24);
        assert_eq!(r.downstream_capacity(gp), 512);
        let c = r.output_congestion(gp);
        assert!((c - 24.0 / (512.0 + 32.0)).abs() < 1e-12);
        r.return_credit(gp.idx(), 0, 8);
        assert_eq!(r.downstream_occupied(gp), 16);
    }

    #[test]
    fn ready_mask_follows_push_pop() {
        let (_, _, mut r) = setup();
        assert_eq!(r.in_ready[0], 0);
        r.push_input(0, 1, PacketId(0), 8);
        r.push_input(0, 1, PacketId(1), 8);
        r.push_input(0, 2, PacketId(2), 8);
        assert_eq!(r.in_ready[0], 0b110);
        assert_eq!(r.input_packets(), 3);
        assert_eq!(r.pop_input(0, 1), (PacketId(0), 8));
        // VC 1 still occupied: bit stays set.
        assert_eq!(r.in_ready[0], 0b110);
        r.pop_input(0, 1);
        assert_eq!(r.in_ready[0], 0b100);
        r.pop_input(0, 2);
        assert_eq!(r.in_ready[0], 0);
        assert_eq!(r.input_packets(), 0);
    }

    #[test]
    fn staged_count_follows_outputs() {
        let (_, _, mut r) = setup();
        r.stage_output(3, Staged { pkt: PacketId(9), size: 8, out_vc: 0 });
        assert_eq!(r.output_packets(), 1);
        let s = r.pop_output(3);
        assert_eq!(s.pkt, PacketId(9));
        assert_eq!(r.output_packets(), 0);
    }

    #[test]
    fn out_ready_mask_follows_stage_pop() {
        let (_, _, mut r) = setup();
        assert_eq!(r.out_ready, 0);
        r.stage_output(3, Staged { pkt: PacketId(1), size: 8, out_vc: 0 });
        r.stage_output(3, Staged { pkt: PacketId(2), size: 8, out_vc: 0 });
        r.stage_output(5, Staged { pkt: PacketId(3), size: 8, out_vc: 0 });
        assert_eq!(r.out_ready, (1 << 3) | (1 << 5));
        r.pop_output(3);
        // Port 3 still has a staged packet: bit stays set.
        assert_eq!(r.out_ready, (1 << 3) | (1 << 5));
        r.pop_output(3);
        assert_eq!(r.out_ready, 1 << 5);
        r.pop_output(5);
        assert_eq!(r.out_ready, 0);
        assert_eq!(r.output_packets(), 0);
    }
}
