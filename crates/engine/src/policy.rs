//! Extension points: routing policies and statistics sinks.

use crate::packet::{Decision, DeliveredRecord, PacketHeader, RouteDep, RouteInfo};
use crate::router::RouterState;
use df_topology::Port;

/// Per-cycle context handed to [`RoutingPolicy::begin_cycle`].
///
/// Besides the router slice, it carries the engine's change-tracking for
/// global-link queues: policies that maintain a derived congestion view
/// (e.g. PiggyBack's saturation flags) only need to refresh the routers
/// in [`CycleCtx::dirty_global`] instead of rescanning the network.
pub struct CycleCtx<'a> {
    /// All routers, indexed by router id (congestion probes are O(1)).
    pub routers: &'a [RouterState],
    /// The cycle about to be simulated.
    pub cycle: u64,
    /// Indices of routers whose global-link output queues (staged phits
    /// or consumed downstream credits) changed since the previous cycle's
    /// `begin_cycle`, deduplicated, in first-change order. Routers absent
    /// from this list have bit-identical global-queue depths.
    pub dirty_global: &'a [u32],
}

/// A routing mechanism, called by the engine for every head packet that
/// needs an output decision.
///
/// Implementations live in `df-routing`. The engine guarantees:
/// * `begin_cycle` runs once per simulated cycle, before any allocation,
///   with read access to every router and the dirty-router list (used
///   e.g. by PiggyBack's incremental group-wide saturation exchange);
/// * `route` sees a consistent congestion snapshot of the current router
///   and must return a decision whose output port is valid for the packet
///   (the engine enforces buffer/credit feasibility, not path validity).
pub trait RoutingPolicy {
    /// Per-cycle hook before allocation (congestion-state exchange).
    fn begin_cycle(&mut self, _ctx: &CycleCtx<'_>) {}

    /// Decide the output (port, VC, updated route state) for the head
    /// packet `hdr` with route state `info`, currently at `router` on
    /// input port `in_port`. Header and route state arrive by value —
    /// they are copied out of the arena's cold slot, so the policy never
    /// holds a borrow into packet storage.
    fn route(
        &mut self,
        router: &RouterState,
        in_port: Port,
        hdr: PacketHeader,
        info: RouteInfo,
    ) -> Decision;

    /// Like [`RoutingPolicy::route`], additionally classifying what the
    /// decision depended on. The engine's route-decision cache reuses an
    /// adaptive policy's cached decision while its [`RouteDep`] is still
    /// valid, and parks blocked heads with stable decisions until the
    /// dependency's port changes.
    ///
    /// The default classifies every decision as [`RouteDep::Volatile`]
    /// (never reusable), which is always correct. Policies whose
    /// decisions are pure functions of a single output port's congestion
    /// should override this with the precise dependency; a decision that
    /// consumed RNG or mutated policy state MUST stay volatile, or
    /// same-seed reproducibility breaks.
    fn route_with_deps(
        &mut self,
        router: &RouterState,
        in_port: Port,
        hdr: PacketHeader,
        info: RouteInfo,
    ) -> (Decision, RouteDep) {
        (self.route(router, in_port, hdr, info), RouteDep::Volatile)
    }

    /// If true, pending (ungranted) decisions are recomputed every cycle —
    /// this is what makes a mechanism *in-transit adaptive*. Oblivious and
    /// source-adaptive mechanisms decide once per hop.
    fn adaptive_reroute(&self) -> bool {
        false
    }

    /// Human-readable mechanism name (used in experiment output).
    fn name(&self) -> &'static str;
}

/// Receives every delivered packet. Aggregation lives in `df-stats`.
pub trait StatsSink {
    /// Called exactly once per delivered packet, in delivery order.
    fn on_delivered(&mut self, rec: &DeliveredRecord);
}

impl<T: RoutingPolicy + ?Sized> RoutingPolicy for Box<T> {
    fn begin_cycle(&mut self, ctx: &CycleCtx<'_>) {
        (**self).begin_cycle(ctx)
    }

    fn route(
        &mut self,
        router: &RouterState,
        in_port: Port,
        hdr: PacketHeader,
        info: RouteInfo,
    ) -> Decision {
        (**self).route(router, in_port, hdr, info)
    }

    fn route_with_deps(
        &mut self,
        router: &RouterState,
        in_port: Port,
        hdr: PacketHeader,
        info: RouteInfo,
    ) -> (Decision, RouteDep) {
        (**self).route_with_deps(router, in_port, hdr, info)
    }

    fn adaptive_reroute(&self) -> bool {
        (**self).adaptive_reroute()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Discards all records (warm-up phases, micro-benchmarks).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl StatsSink for NullSink {
    fn on_delivered(&mut self, _rec: &DeliveredRecord) {}
}

impl<F: FnMut(&DeliveredRecord)> StatsSink for F {
    fn on_delivered(&mut self, rec: &DeliveredRecord) {
        self(rec)
    }
}
