//! The assembled network: nodes, routers, links, and the per-cycle
//! simulation loop (event delivery → injection → allocation → output).
//!
//! Packets live in a structure-of-arrays [`PacketArena`]; every queue and
//! link event carries a `u32` [`PacketId`] handle, so the steady-state hot
//! path performs no per-packet heap allocation and the allocator's
//! per-candidate probe touches only the hot `eligible_at`/`decision`
//! lanes. Scheduling is **work-list driven**: the engine maintains
//! bitsets of nodes with queued packets, routers with resident input
//! packets, and routers with staged output packets, so the inject /
//! allocate / transmit phases iterate only over entities that can make
//! progress this cycle instead of scanning the whole network (at paper
//! scale under ADVc most routers are idle most cycles). All work lists
//! are iterated in ascending index order, which keeps event-queue
//! insertion order — and therefore same-seed results — bit-identical to
//! the full scans they replace. The allocator additionally consults
//! per-port ready-VC bitmasks and per-router ready-output masks, and the
//! engine tracks which routers' global-link queues changed each cycle so
//! policies like PiggyBack can refresh their congestion view
//! incrementally (see [`CycleCtx`]).

use crate::arena::{PacketArena, PacketId};
use crate::buffer::Staged;
use crate::config::{ArbiterPolicy, EngineConfig};
use crate::events::{Event, EventWheel};
use crate::packet::{DeliveredRecord, Packet, PacketSeq, RouteDep};
#[cfg(any(debug_assertions, feature = "shadow-verify"))]
use crate::packet::Decision;
use crate::policy::{CycleCtx, RoutingPolicy, StatsSink};
use crate::router::RouterState;
use crate::shard::{RemoteCredit, RemoteFlit, ShardOutbox};
use df_topology::{NodeId, Port, PortKind, PortLayout, PortTarget, RouterId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::ops::Range;
use std::time::Instant;

// ----------------------------------------------------------------------
// Work-list bitsets (u64 words, ascending-order iteration)
// ----------------------------------------------------------------------

/// Words needed for an `n`-bit set.
#[inline]
fn bitset_words(n: usize) -> usize {
    n.div_ceil(64)
}

#[inline]
fn set_bit(words: &mut [u64], i: usize) {
    words[i >> 6] |= 1 << (i & 63);
}

#[inline]
fn clear_bit(words: &mut [u64], i: usize) {
    words[i >> 6] &= !(1 << (i & 63));
}

#[inline]
fn get_bit(words: &[u64], i: usize) -> bool {
    words[i >> 6] & (1 << (i & 63)) != 0
}

/// Wall-clock time spent in each phase of [`Network::step_timed`],
/// accumulated across cycles. Drives the `dbg_bottleneck` per-phase
/// breakdown; the regular [`Network::step`] takes no timing overhead.
#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Event-wheel drain: link arrivals and credit returns.
    pub deliver_ns: u64,
    /// Routing-policy `begin_cycle` (congestion-state exchange).
    pub policy_ns: u64,
    /// Node-side injection (source queue → injection-port input buffer).
    pub inject_ns: u64,
    /// Switch allocation across all active routers.
    pub allocate_ns: u64,
    /// Output-buffer → link transmissions.
    pub transmit_ns: u64,
    /// Cycles accumulated into this profile.
    pub cycles: u64,
}

impl PhaseProfile {
    /// Total nanoseconds across all phases.
    pub fn total_ns(&self) -> u64 {
        self.deliver_ns + self.policy_ns + self.inject_ns + self.allocate_ns + self.transmit_ns
    }

    /// `(label, ns)` pairs in phase order, for reporting.
    pub fn phases(&self) -> [(&'static str, u64); 5] {
        [
            ("deliver", self.deliver_ns),
            ("policy", self.policy_ns),
            ("inject", self.inject_ns),
            ("allocate", self.allocate_ns),
            ("transmit", self.transmit_ns),
        ]
    }

    /// Fold another profile into this one (accumulating chunk profiles
    /// into a run total).
    pub fn absorb(&mut self, other: &PhaseProfile) {
        self.deliver_ns += other.deliver_ns;
        self.policy_ns += other.policy_ns;
        self.inject_ns += other.inject_ns;
        self.allocate_ns += other.allocate_ns;
        self.transmit_ns += other.transmit_ns;
        self.cycles += other.cycles;
    }
}

/// Source-side state of a compute node.
#[derive(Debug)]
struct NodeState {
    /// Generated packets waiting to enter the router (bounded).
    queue: VecDeque<PacketId>,
    /// Credits towards the router's injection-port input buffer, per VC.
    credits: Vec<u32>,
    /// Round-robin pointer over injection VCs.
    vc_rr: u32,
    /// The node→router link is serializing until this cycle.
    link_free_at: u64,
}

/// Aggregate counters maintained by the engine (cheap, always on).
/// Fine-grained per-packet data flows through the [`StatsSink`].
#[derive(Debug, Clone, Default)]
pub struct Counters {
    /// Generation attempts, including those dropped at a full source queue.
    pub offered_packets: u64,
    /// Packets accepted into a source queue.
    pub accepted_packets: u64,
    /// Packets delivered to their destination node.
    pub delivered_packets: u64,
    /// Phits delivered (for throughput in phits/node/cycle).
    pub delivered_phits: u64,
    /// Packets injected per router: granted from an injection-port input
    /// buffer into an output buffer. This is the paper's fairness signal.
    pub injected_per_router: Vec<u64>,
    /// Packets injected per *node* (same grant event attributed to the
    /// node behind the injection port). Finer-grained fairness signal for
    /// per-job breakdowns where several jobs share a router.
    pub injected_per_node: Vec<u64>,
    /// Escape-path grants: switch-allocation grants that first diverted a
    /// packet onto a non-minimal (misrouted) global path. Windowed deltas
    /// of this counter are the timeline's escape-grant rate.
    pub escape_grants: u64,
    /// Phits transmitted onto global (inter-group) links. Windowed deltas
    /// over `groups × h` global-link capacity give link utilization.
    pub global_phits: u64,
    /// Cycles elapsed since the last counter reset.
    pub cycles: u64,
}

impl Counters {
    pub(crate) fn new(routers: usize, nodes: usize) -> Self {
        Self {
            injected_per_router: vec![0; routers],
            injected_per_node: vec![0; nodes],
            ..Self::default()
        }
    }

    /// Fold one shard's counters into this network-wide view. Scalar
    /// counters sum; the per-router / per-node vectors splice in at the
    /// shard's base offsets (each shard owns a disjoint contiguous
    /// slice). `cycles` is deliberately *not* summed — every shard steps
    /// every cycle, so the caller copies it from any one shard.
    pub(crate) fn merge_shard(&mut self, shard: &Counters, router_base: usize, node_base: usize) {
        self.offered_packets += shard.offered_packets;
        self.accepted_packets += shard.accepted_packets;
        self.delivered_packets += shard.delivered_packets;
        self.delivered_phits += shard.delivered_phits;
        self.escape_grants += shard.escape_grants;
        self.global_phits += shard.global_phits;
        for (i, v) in shard.injected_per_router.iter().enumerate() {
            self.injected_per_router[router_base + i] = *v;
        }
        for (i, v) in shard.injected_per_node.iter().enumerate() {
            self.injected_per_node[node_base + i] = *v;
        }
    }

    /// Delivered throughput in phits per node per cycle.
    pub fn throughput(&self, nodes: u32) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.delivered_phits as f64 / (nodes as f64 * self.cycles as f64)
    }
}

/// Inline capacity of one output port's proposal list. Covers the whole
/// radix of the reduced-scale networks (figure1 radix 7, small radix 11)
/// and all non-pathological contention at paper scale (radix 23): spill
/// needs more than `PROPOSAL_INLINE` input ports to nominate the *same*
/// output in one allocation iteration.
const PROPOSAL_INLINE: usize = 16;

/// Fixed-capacity proposal list with a rarely-used heap spill, so the
/// allocator's per-output scratch stays inline (one cache line of
/// `(in_port, vc)` pairs) and never allocates in steady state.
#[derive(Debug, Default)]
struct ProposalList {
    inline: [(u32, u8); PROPOSAL_INLINE],
    len: u8,
    /// Overflow beyond `PROPOSAL_INLINE`, preserving push order.
    spill: Vec<(u32, u8)>,
}

impl ProposalList {
    #[inline]
    fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    #[inline]
    fn push(&mut self, entry: (u32, u8)) {
        if (self.len as usize) < PROPOSAL_INLINE {
            self.inline[self.len as usize] = entry;
            self.len += 1;
        } else {
            self.spill.push(entry);
        }
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Proposals in push order (inline segment, then spill).
    #[inline]
    fn iter(&self) -> impl Iterator<Item = &(u32, u8)> {
        self.inline[..self.len as usize].iter().chain(self.spill.iter())
    }
}

/// A full network simulation instance — or, in sharded mode, one
/// shard's contiguous slice of it.
///
/// A serial network owns every router and node (`router_base == 0`). A
/// shard built by `Network::new_shard` owns only the routers and nodes
/// of its group range: `routers[0]` is global router `router_base`, and
/// every per-router/per-node array (work lists, counters, wiring cache)
/// is indexed by the *local* offset. Events and wiring targets always
/// carry **global** ids; the boundary between the two spaces is the
/// `local_router` / `local_node` helpers. Traffic towards routers the
/// slice does not own is diverted into the crate-private `ShardOutbox`
/// and delivered by the sharded controller at the cycle barrier.
pub struct Network<P: RoutingPolicy, S: StatsSink> {
    topo: Topology,
    cfg: EngineConfig,
    routers: Vec<RouterState>,
    nodes: Vec<NodeState>,
    wheel: EventWheel,
    cycle: u64,
    /// Global id of `routers[0]` (0 for a serial network).
    router_base: u32,
    /// Global id of `nodes[0]` (0 for a serial network; always
    /// `router_base * p` so local node index `r·p + slot` stays valid).
    node_base: u32,
    /// Cross-shard traffic staged for the controller's cycle barrier.
    /// Always empty in serial mode (a serial network owns every router).
    outbox: ShardOutbox,
    /// Slab storing every in-flight packet.
    arena: PacketArena,
    next_packet_seq: PacketSeq,
    /// The routing policy. `None` only for shard slices, whose policy is
    /// owned by the sharded controller and threaded through the
    /// `*_with` phase variants (serial entry points take/restore it).
    policy: Option<P>,
    sink: S,
    counters: Counters,
    /// Packets accepted but not yet delivered.
    live_packets: u64,
    /// Wiring cache: target of every (router, port), row-major.
    peers: Vec<PortTarget>,
    /// Latency of the link behind every (router, port).
    latencies: Vec<u64>,
    /// Allocation scratch: proposals per output port, inline up to
    /// [`PROPOSAL_INLINE`] entries.
    proposals: Vec<ProposalList>,
    /// Allocation scratch, persistent across cycles so the hot loop does
    /// not allocate: remaining grant budget per input / output port.
    alloc_in_budget: Vec<u32>,
    alloc_out_budget: Vec<u32>,
    /// Allocation scratch: VCs already granted this cycle, flattened
    /// `[port * vc_stride + vc]`.
    alloc_vc_granted: Vec<bool>,
    /// Widest VC count any port class is configured with (flattening
    /// stride for `alloc_vc_granted`).
    vc_stride: usize,
    /// Routers whose global-link queues changed since the last
    /// `begin_cycle` (deduplicated via `global_dirty` flags).
    global_dirty_list: Vec<u32>,
    global_dirty: Vec<bool>,
    /// Work list: nodes with a non-empty source queue (bit set in
    /// `offer`, cleared when the injection phase drains the queue).
    node_active: Vec<u64>,
    /// Work list: routers with at least one resident input packet
    /// (maintained exactly on `push_input` / `pop_input`); the allocate
    /// phase visits only these.
    alloc_active: Vec<u64>,
    /// Work list: routers with at least one staged output packet; the
    /// transmit phase visits only these.
    tx_active: Vec<u64>,
    /// Delivery cycle of the most recent grant anywhere (livelock guard).
    last_progress: u64,
    /// Route-decision cache switch: when on (the default), adaptive
    /// decisions are reused while their recorded dependency is unchanged
    /// and blocked heads with stable decisions are parked until their
    /// target output port changes. When off, every blocked head is
    /// re-probed every cycle — the pre-cache behavior the equivalence
    /// tests compare against.
    route_cache: bool,
}

impl<P: RoutingPolicy, S: StatsSink> Network<P, S> {
    /// Build an idle network owning the whole topology.
    ///
    /// # Panics
    /// Panics if `cfg` fails validation.
    pub fn new(topo: Topology, cfg: EngineConfig, policy: P, sink: S) -> Self {
        let routers = 0..topo.params().routers();
        let nodes = 0..topo.params().nodes();
        Self::new_slice(topo, cfg, Some(policy), sink, routers, nodes)
    }

    /// Build a shard slice owning only `router_range` / `node_range`
    /// (contiguous, group-aligned). The policy stays with the sharded
    /// controller, which threads it through the `*_with` phase variants.
    pub(crate) fn new_shard(
        topo: Topology,
        cfg: EngineConfig,
        sink: S,
        router_range: Range<u32>,
        node_range: Range<u32>,
    ) -> Self {
        Self::new_slice(topo, cfg, None, sink, router_range, node_range)
    }

    fn new_slice(
        topo: Topology,
        cfg: EngineConfig,
        policy: Option<P>,
        sink: S,
        router_range: Range<u32>,
        node_range: Range<u32>,
    ) -> Self {
        cfg.validate().expect("invalid engine config");
        let params = *topo.params();
        let radix = params.radix();
        // Group-aligned slices keep the local `router·p + slot` node
        // indexing of the fairness counters valid.
        debug_assert_eq!(node_range.start, router_range.start * params.p);
        debug_assert_eq!(node_range.end, router_range.end * params.p);
        let routers: Vec<RouterState> = router_range
            .clone()
            .map(|r| RouterState::new(RouterId(r), &params, &cfg))
            .collect();
        let nodes: Vec<NodeState> = node_range
            .clone()
            .map(|_| NodeState {
                queue: VecDeque::new(),
                credits: vec![cfg.injection_input_buffer; cfg.vcs_injection as usize],
                vc_rr: 0,
                link_free_at: 0,
            })
            .collect();
        let mut peers = Vec::with_capacity(routers.len() * radix as usize);
        let mut latencies = Vec::with_capacity(peers.capacity());
        for r in router_range.clone() {
            for q in 0..radix {
                let port = Port(q);
                peers.push(topo.port_target(RouterId(r), port));
                latencies.push(match params.port_kind(port) {
                    PortKind::Injection => cfg.injection_link_latency,
                    PortKind::Local => cfg.local_link_latency,
                    PortKind::Global => cfg.global_link_latency,
                });
            }
        }
        let wheel = EventWheel::new(cfg.max_event_delay());
        let n_routers = routers.len();
        let n_nodes = nodes.len();
        let vc_stride = cfg.vcs_injection.max(cfg.vcs_local).max(cfg.vcs_global) as usize;
        Self {
            topo,
            cfg,
            routers,
            nodes,
            wheel,
            cycle: 0,
            router_base: router_range.start,
            node_base: node_range.start,
            outbox: ShardOutbox::default(),
            arena: PacketArena::new(),
            next_packet_seq: 0,
            policy,
            sink,
            counters: Counters::new(n_routers, n_nodes),
            live_packets: 0,
            peers,
            latencies,
            proposals: (0..radix).map(|_| ProposalList::default()).collect(),
            alloc_in_budget: vec![0; radix as usize],
            alloc_out_budget: vec![0; radix as usize],
            alloc_vc_granted: vec![false; radix as usize * vc_stride],
            vc_stride,
            global_dirty_list: Vec::new(),
            global_dirty: vec![false; n_routers],
            node_active: vec![0; bitset_words(n_nodes)],
            alloc_active: vec![0; bitset_words(n_routers)],
            tx_active: vec![0; bitset_words(n_routers)],
            last_progress: 0,
            route_cache: true,
        }
    }

    /// Whether the route-decision cache (adaptive decision reuse +
    /// blocked-head parking) is enabled. On by default.
    #[inline]
    pub fn route_cache_enabled(&self) -> bool {
        self.route_cache
    }

    /// Toggle the route-decision cache. Both settings produce
    /// bit-identical simulations; disabling merely restores the
    /// probe-every-blocked-head-every-cycle schedule, for equivalence
    /// tests and debugging. Disabling unparks every head.
    pub fn set_route_cache(&mut self, on: bool) {
        self.route_cache = on;
        if !on {
            for r in &mut self.routers {
                r.unpark_all();
            }
        }
    }

    /// Current simulation cycle.
    #[inline]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The engine configuration.
    #[inline]
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Engine counters since the last [`Self::reset_counters`].
    #[inline]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The stats sink (for result extraction).
    #[inline]
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the sink (e.g. to reset it after warm-up).
    #[inline]
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// The routing policy.
    ///
    /// # Panics
    /// Panics on a shard slice, whose policy lives with the controller.
    #[inline]
    pub fn policy(&self) -> &P {
        self.policy.as_ref().expect("policy detached (shard slice)")
    }

    /// Local index of a (globally identified) owned router.
    #[inline]
    fn local_router(&self, r: RouterId) -> usize {
        debug_assert!(self.owns_router(r), "router {} not owned by this slice", r.0);
        (r.0 - self.router_base) as usize
    }

    /// Local index of a (globally identified) owned node.
    #[inline]
    fn local_node(&self, n: NodeId) -> usize {
        let local = n.0.wrapping_sub(self.node_base) as usize;
        debug_assert!(local < self.nodes.len(), "node {} not owned by this slice", n.0);
        local
    }

    /// Whether this slice owns `r` (always true for a serial network).
    #[inline]
    fn owns_router(&self, r: RouterId) -> bool {
        (r.0.wrapping_sub(self.router_base) as usize) < self.routers.len()
    }

    /// Packets accepted but not yet delivered.
    #[inline]
    pub fn in_flight(&self) -> u64 {
        self.live_packets
    }

    /// Packets currently resident in the arena (must equal
    /// [`Self::in_flight`]; zero after a full drain — the leak check).
    #[inline]
    pub fn arena_live(&self) -> usize {
        self.arena.live()
    }

    /// Arena slots ever allocated (the peak in-flight population).
    #[inline]
    pub fn arena_capacity(&self) -> usize {
        self.arena.capacity()
    }

    /// Resolve a packet handle to a joined snapshot of its hot and cold
    /// arena lanes (diagnostics; handles come from [`RouterState::head`]).
    #[inline]
    pub fn packet(&self, id: PacketId) -> Packet {
        self.arena.snapshot(id)
    }

    /// Events (packets and credits) currently traversing links.
    #[inline]
    pub fn events_pending(&self) -> usize {
        self.wheel.pending()
    }

    /// Read access to a router's state (congestion probes, diagnostics).
    #[inline]
    pub fn router(&self, id: RouterId) -> &RouterState {
        &self.routers[self.local_router(id)]
    }

    /// Zero the measurement counters (start of the measurement window).
    pub fn reset_counters(&mut self) {
        self.counters = Counters::new(self.routers.len(), self.nodes.len());
    }

    /// Ready, unparked input-VC heads across all routers — the allocator
    /// workload gauge. O(routers); intended for per-window telemetry
    /// sampling, not the per-cycle hot path.
    pub fn probe_ready_total(&self) -> u64 {
        self.routers.iter().map(|r| r.probe_ready() as u64).sum()
    }

    /// Sum of every output port's epoch counter across all routers.
    /// Windowed deltas of this sum count route-cache invalidation churn
    /// (port-epoch bumps). O(routers × radix); telemetry sampling only.
    pub fn port_epoch_sum(&self) -> u64 {
        let radix = self.topo.params().radix() as usize;
        self.routers
            .iter()
            .map(|r| {
                (0..radix).map(|p| r.port_epoch(Port(p as u32)) as u64).sum::<u64>()
            })
            .sum()
    }

    /// Offer a packet for generation at `src` towards `dst`. Returns
    /// `false` (and drops it) if the source queue is full — the offer is
    /// still counted as offered load.
    pub fn offer(&mut self, src: NodeId, dst: NodeId) -> bool {
        let seq = self.next_packet_seq;
        if self.offer_with_seq(src, dst, seq) {
            self.next_packet_seq += 1;
            true
        } else {
            false
        }
    }

    /// [`Self::offer`] with an externally supplied packet sequence
    /// number. The sharded controller owns the global sequence counter
    /// (so packet ids match the serial engine byte-for-byte) and advances
    /// it only when the offer is accepted — exactly the serial contract,
    /// where a full source queue consumes no sequence number.
    pub(crate) fn offer_with_seq(&mut self, src: NodeId, dst: NodeId, seq: PacketSeq) -> bool {
        self.counters.offered_packets += 1;
        let n = self.local_node(src);
        if self.nodes[n].queue.len() >= self.cfg.max_node_queue {
            return false;
        }
        let group = src.group(self.topo.params());
        // The earliest the node can act on this packet is the next cycle,
        // so that is its generation timestamp.
        let gen = self.cycle + 1;
        let id = self
            .arena
            .insert(Packet::new(seq, src, dst, self.cfg.packet_size, gen, group));
        self.nodes[n].queue.push_back(id);
        set_bit(&mut self.node_active, n);
        self.counters.accepted_packets += 1;
        self.live_packets += 1;
        true
    }

    /// Advance the simulation by one cycle.
    pub fn step(&mut self) {
        let mut policy = self.policy.take().expect("policy detached (shard slice)");
        self.cycle += 1;
        self.counters.cycles += 1;
        self.deliver_events();
        self.run_policy_begin_with(&mut policy);
        self.inject_from_nodes();
        self.allocate_all_with(&mut policy);
        self.transmit_all();
        self.policy = Some(policy);
    }

    /// Advance one cycle like [`Self::step`], accumulating per-phase
    /// wall-clock time into `profile` (diagnostics; the untimed `step`
    /// pays no instrumentation cost).
    pub fn step_timed(&mut self, profile: &mut PhaseProfile) {
        let mut policy = self.policy.take().expect("policy detached (shard slice)");
        self.cycle += 1;
        self.counters.cycles += 1;
        let t0 = Instant::now();
        self.deliver_events();
        let t1 = Instant::now();
        self.run_policy_begin_with(&mut policy);
        let t2 = Instant::now();
        self.inject_from_nodes();
        let t3 = Instant::now();
        self.allocate_all_with(&mut policy);
        let t4 = Instant::now();
        self.transmit_all();
        let t5 = Instant::now();
        self.policy = Some(policy);
        profile.deliver_ns += (t1 - t0).as_nanos() as u64;
        profile.policy_ns += (t2 - t1).as_nanos() as u64;
        profile.inject_ns += (t3 - t2).as_nanos() as u64;
        profile.allocate_ns += (t4 - t3).as_nanos() as u64;
        profile.transmit_ns += (t5 - t4).as_nanos() as u64;
        profile.cycles += 1;
    }

    // ------------------------------------------------------------------
    // Shard-controller phase surface: one serial cycle is exactly
    // `begin_cycle_bump; deliver; policy_begin; inject; allocate;
    // transmit` — the controller runs the same phases across all shards
    // in phase-major order, threading the single policy through the
    // `*_with` variants during the sequential phases.
    // ------------------------------------------------------------------

    /// Advance the local cycle counter (start of a controller-driven cycle).
    pub(crate) fn begin_cycle_bump(&mut self) {
        self.cycle += 1;
        self.counters.cycles += 1;
    }

    /// Event-delivery phase (shard-local state only).
    pub(crate) fn phase_deliver(&mut self) {
        self.deliver_events();
    }

    /// Injection phase (shard-local state only).
    pub(crate) fn phase_inject(&mut self) {
        self.inject_from_nodes();
    }

    /// Transmit phase (cross-shard flits land in the outbox).
    pub(crate) fn phase_transmit(&mut self) {
        self.transmit_all();
    }

    /// Take the staged cross-shard traffic (leaves the outbox empty).
    pub(crate) fn take_outbox(&mut self) -> ShardOutbox {
        std::mem::take(&mut self.outbox)
    }

    /// Whether no cross-shard traffic is staged (always true between
    /// barriers, and always true in serial mode).
    pub(crate) fn outbox_is_empty(&self) -> bool {
        self.outbox.is_empty()
    }

    /// Deliver a credit return that crossed the shard boundary. Called at
    /// the cycle barrier, when the local wheel sits at the same cycle the
    /// sender's did when it would have scheduled the event — so the delay
    /// lands it in exactly the serial engine's slot.
    pub(crate) fn accept_remote_credit(&mut self, c: RemoteCredit) {
        debug_assert!(self.owns_router(c.router));
        self.wheel.schedule(
            c.delay,
            Event::Credit { router: c.router, port: c.port, vc: c.vc, phits: c.phits },
        );
    }

    /// Deliver a flit that crossed the shard boundary: re-home the packet
    /// into the local arena and schedule its arrival. The arena insert
    /// preserves everything behavior-visible (header with its global
    /// sequence id, route state, waits, traversal, eligibility); only the
    /// `PacketId` handle is shard-local, and handles never appear in
    /// results.
    pub(crate) fn accept_remote_flit(&mut self, f: RemoteFlit) {
        debug_assert!(self.owns_router(f.router));
        let id = self.arena.insert(f.packet);
        self.live_packets += 1;
        self.wheel.schedule(
            f.delay,
            Event::ArriveRouter { router: f.router, port: f.port, vc: f.vc, pkt: id, size: f.size },
        );
    }

    /// Delivery cycle of the most recent grant in this slice.
    pub(crate) fn last_progress(&self) -> u64 {
        self.last_progress
    }

    /// Run the policy's per-cycle hook and retire the dirty-router list.
    /// The context's router slice and dirty indices are both local to
    /// this slice; policies index their own tables by `RouterState::id`,
    /// which stays global, so partitioned calls across shards are
    /// equivalent to one whole-network call.
    pub(crate) fn run_policy_begin_with(&mut self, policy: &mut P) {
        policy.begin_cycle(&CycleCtx {
            routers: &self.routers,
            cycle: self.cycle,
            dirty_global: &self.global_dirty_list,
        });
        for &r in &self.global_dirty_list {
            self.global_dirty[r as usize] = false;
        }
        self.global_dirty_list.clear();
    }

    /// Allocate phase over the active-router work list (ascending order —
    /// identical side-effect order to a full `0..routers` scan, which
    /// only no-ops on the skipped routers).
    pub(crate) fn allocate_all_with(&mut self, policy: &mut P) {
        for w in 0..self.alloc_active.len() {
            // Snapshot the word: `commit_grant` may clear the current
            // router's bit (never a later router's), and allocation
            // cannot add input packets mid-phase.
            let mut word = self.alloc_active[w];
            while word != 0 {
                let r = (w << 6) + word.trailing_zeros() as usize;
                word &= word - 1;
                // Every resident head parked: allocation would produce no
                // proposals and no side effects, so skipping the router
                // entirely is exact. This is where blocked routers drop
                // from O(blocked heads) to O(changed ports) per cycle.
                if self.routers[r].probe_ready() == 0 {
                    continue;
                }
                self.allocate_router(r, policy);
            }
        }
    }

    /// Transmit phase over the staged-router work list (ascending order).
    fn transmit_all(&mut self) {
        for w in 0..self.tx_active.len() {
            let mut word = self.tx_active[w];
            while word != 0 {
                let r = (w << 6) + word.trailing_zeros() as usize;
                word &= word - 1;
                self.transmit_outputs(r);
            }
        }
    }

    /// Run `n` cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Run until every accepted packet has been delivered, up to `max`
    /// extra cycles. Returns `true` if the network drained.
    pub fn drain(&mut self, max: u64) -> bool {
        for _ in 0..max {
            if self.live_packets == 0 {
                debug_assert_eq!(self.arena.live(), 0, "arena leak after drain");
                return true;
            }
            self.step();
        }
        self.live_packets == 0
    }

    /// Cycles since any packet anywhere won switch allocation. Large
    /// values while traffic is in flight indicate deadlock/livelock.
    pub fn cycles_since_progress(&self) -> u64 {
        self.cycle - self.last_progress
    }

    /// Diagnostic: dump every blocked input-VC head (eligible but not
    /// granted) with the resources it waits for. For debugging hangs.
    pub fn dump_blocked(&self, max_lines: usize) {
        let params = self.topo.params();
        let mut lines = 0;
        for (r, router) in self.routers.iter().enumerate() {
            for (q, vcs) in router.inputs.iter().enumerate() {
                for (v, buf) in vcs.iter().enumerate() {
                    if let Some(id) = buf.front() {
                        let p = self.arena.snapshot(id);
                        if p.eligible_at > self.cycle {
                            continue;
                        }
                        let dec = p.decision;
                        let (free, cred) = match dec {
                            Some(d) => (
                                router.outputs[d.out_port.idx()].free(),
                                router
                                    .credits[d.out_port.idx()]
                                    .get(d.out_vc as usize)
                                    .copied()
                                    .unwrap_or(u32::MAX),
                            ),
                            None => (0, 0),
                        };
                        eprintln!(
                            "r{} in(port={q},vc={v},kind={:?}) pkt{} src={} dst={} lh={} gh={} phase={:?} dec={:?} out_free={free} out_cred={cred}",
                            self.router_base as usize + r,
                            params.port_kind(Port(q as u32)),
                            p.header.id, p.header.src.0, p.header.dst.0,
                            p.route.local_hops, p.route.global_hops, p.route.phase,
                            dec.map(|d| (d.out_port.0, d.out_vc)),
                        );
                        lines += 1;
                        if lines >= max_lines {
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Shadow check: verify every scheduling work list against a full
    /// `0..routers` / `0..nodes` scan of the underlying state. Visiting
    /// exactly the flagged entities is equivalent to the full scan iff
    /// every unflagged entity has nothing to do — this asserts that
    /// invariant. Panics with a diagnostic on the first divergence.
    /// Intended for tests; cost is O(network).
    pub fn assert_work_lists_match_full_scan(&self) {
        for (r, router) in self.routers.iter().enumerate() {
            assert_eq!(
                get_bit(&self.alloc_active, r),
                router.input_packets() > 0,
                "alloc work list diverged from input_count at router {r}, cycle {}",
                self.cycle
            );
            assert_eq!(
                get_bit(&self.tx_active, r),
                router.output_packets() > 0,
                "tx work list diverged from staged_count at router {r}, cycle {}",
                self.cycle
            );
            for q in 0..self.topo.params().radix() as usize {
                assert_eq!(
                    router.out_ready & (1 << q) != 0,
                    !router.outputs[q].is_empty(),
                    "ready-output mask diverged at router {r} port {q}, cycle {}",
                    self.cycle
                );
            }
        }
        for (n, node) in self.nodes.iter().enumerate() {
            assert_eq!(
                get_bit(&self.node_active, n),
                !node.queue.is_empty(),
                "node work list diverged at node {n}, cycle {}",
                self.cycle
            );
        }
    }

    // ------------------------------------------------------------------
    // Cycle phases
    // ------------------------------------------------------------------

    /// Mark `router`'s global-link queues as changed for the next
    /// `begin_cycle` (deduplicated).
    #[inline]
    fn mark_global_dirty(&mut self, router: usize) {
        if !self.global_dirty[router] {
            self.global_dirty[router] = true;
            self.global_dirty_list.push(router as u32);
        }
    }

    fn deliver_events(&mut self) {
        let mut events = self.wheel.advance();
        debug_assert_eq!(self.wheel.now(), self.cycle);
        for ev in events.drain(..) {
            match ev {
                Event::ArriveRouter { router, port, vc, pkt, size } => {
                    // Hot lanes only: arrival never touches the cold slot.
                    self.arena.set_eligible_at(pkt, self.cycle + self.cfg.pipeline_latency);
                    self.arena.clear_decision(pkt);
                    let r = self.local_router(router);
                    let becomes_head =
                        self.routers[r].inputs[port.idx()][vc as usize].is_empty();
                    self.routers[r].push_input(port.idx(), vc as usize, pkt, size);
                    // A new head still in the pipeline sleeps until its
                    // exact eligibility cycle instead of being probed
                    // (and rejected) every cycle in between.
                    if becomes_head && self.cfg.pipeline_latency > 0 {
                        self.routers[r].sleep(port.idx(), vc as usize);
                        self.wheel.schedule(
                            self.cfg.pipeline_latency,
                            Event::HeadWake { router, port, vc },
                        );
                    }
                    set_bit(&mut self.alloc_active, r);
                }
                Event::ArriveNode { node, pkt } => {
                    self.complete_delivery(node, pkt);
                }
                Event::Credit { router, port, vc, phits } => {
                    let r = self.local_router(router);
                    self.routers[r].return_credit(port.idx(), vc as usize, phits);
                    if self.topo.params().port_kind(port) == PortKind::Global {
                        self.mark_global_dirty(r);
                    }
                }
                Event::NodeCredit { node, vc, phits } => {
                    let n = self.local_node(node);
                    let c = &mut self.nodes[n].credits[vc as usize];
                    *c += phits;
                    debug_assert!(*c <= self.cfg.injection_input_buffer);
                }
                Event::HeadWake { router, port, vc } => {
                    let r = self.local_router(router);
                    self.routers[r].wake(port.idx(), vc as usize);
                }
            }
        }
        self.wheel.recycle(events);
    }

    fn complete_delivery(&mut self, node: NodeId, id: PacketId) {
        let pkt = self.arena.cold(id);
        debug_assert_eq!(pkt.header.dst, node);
        let (min_l, min_g) = self.topo.min_path_links(pkt.header.src, pkt.header.dst);
        let min_routers = (min_l + min_g + 1) as u64;
        let min_traversal = self.cfg.injection_link_latency          // node → router
            + min_routers * self.cfg.pipeline_latency                 // router pipelines
            + min_l as u64 * self.cfg.local_link_latency
            + min_g as u64 * self.cfg.global_link_latency
            + self.cfg.injection_link_latency                         // router → node
            + self.cfg.packet_size as u64;                            // serialization
        let rec = DeliveredRecord {
            header: pkt.header,
            delivered_cycle: self.cycle,
            traversal: pkt.traversal,
            min_traversal,
            waits: pkt.waits,
            local_hops: pkt.route.local_hops,
            global_hops: pkt.route.global_hops,
        };
        self.counters.delivered_packets += 1;
        self.counters.delivered_phits += pkt.header.size as u64;
        self.live_packets -= 1;
        self.arena.free(id);
        self.sink.on_delivered(&rec);
    }

    /// Node-side injection over the active-node work list: only nodes
    /// with a queued packet are visited (bit set in [`Self::offer`],
    /// cleared here once the queue drains). Ascending order keeps event
    /// scheduling identical to the full `0..nodes` scan.
    fn inject_from_nodes(&mut self) {
        let params = *self.topo.params();
        for w in 0..self.node_active.len() {
            let mut word = self.node_active[w];
            while word != 0 {
                let n = (w << 6) + word.trailing_zeros() as usize;
                word &= word - 1;
                let node = &mut self.nodes[n];
                debug_assert!(!node.queue.is_empty(), "idle node on work list");
                if node.link_free_at > self.cycle {
                    continue;
                }
                let size = self.cfg.packet_size;
                // Pick an injection VC with room, round-robin for fairness.
                let vcs = self.cfg.vcs_injection as u32;
                let mut chosen = None;
                for k in 0..vcs {
                    let vc = (node.vc_rr + k) % vcs;
                    if node.credits[vc as usize] >= size {
                        chosen = Some(vc);
                        break;
                    }
                }
                let Some(vc) = chosen else { continue };
                node.vc_rr = (vc + 1) % vcs;
                node.credits[vc as usize] -= size;
                node.link_free_at = self.cycle + size as u64;
                let id = node.queue.pop_front().expect("checked non-empty");
                if node.queue.is_empty() {
                    clear_bit(&mut self.node_active, n);
                }
                // Source-queue time is injection wait.
                let wait = self.cycle - self.arena.eligible_at(id);
                let pkt = self.arena.cold_mut(id);
                pkt.waits.injection += wait;
                pkt.traversal += self.cfg.injection_link_latency;
                let node_id = NodeId(self.node_base + n as u32);
                let router = node_id.router(&params);
                let port = params.injection_port(node_id.slot(&params));
                self.wheel.schedule(
                    self.cfg.injection_link_latency,
                    Event::ArriveRouter { router, port, vc: vc as u8, pkt: id, size },
                );
            }
        }
    }

    /// Separable iterative batch allocation for router `r` (local index).
    fn allocate_router(&mut self, r: usize, policy: &mut P) {
        // The work list only holds routers with resident input packets.
        debug_assert!(self.routers[r].input_count > 0, "idle router on alloc work list");
        let params = *self.topo.params();
        let radix = params.radix() as usize;
        let adaptive = policy.adaptive_reroute();
        // Reset the persistent scratch (hoisted out of the hot loop so no
        // per-router-per-cycle allocation happens): remaining grant budget
        // per port this cycle (2× speedup), and the VCs that already won
        // this cycle — their new head has not traversed the pipeline, so
        // they cannot win again.
        let vc_stride = self.vc_stride;
        self.alloc_in_budget.fill(self.cfg.speedup);
        self.alloc_out_budget.fill(self.cfg.speedup);
        self.alloc_vc_granted.fill(false);

        for _iter in 0..self.cfg.speedup {
            // --- Phase 1: each input port nominates one VC head. ---
            for q in 0..radix {
                self.proposals[q].clear();
            }
            for in_port in 0..radix {
                if self.alloc_in_budget[in_port] == 0 {
                    continue;
                }
                // Ready-VC mask minus parked and sleeping VCs: a parked
                // head's probe outcome cannot change until its target
                // port is touched (which unparks it), and a sleeping
                // head is ineligible until its wake event fires — so
                // skipping both is exact.
                let ready = self.routers[r].in_ready[in_port]
                    & !self.routers[r].in_parked[in_port]
                    & !self.routers[r].in_sleeping[in_port];
                if ready == 0 {
                    continue;
                }
                let vcs = self.routers[r].inputs[in_port].len() as u32;
                let start = self.routers[r].in_rr[in_port];
                for k in 0..vcs {
                    let vc = ((start + k) % vcs) as usize;
                    if ready & (1 << vc) == 0 || self.alloc_vc_granted[in_port * vc_stride + vc]
                    {
                        continue;
                    }
                    let (id, size) = self.routers[r].inputs[in_port][vc]
                        .front_entry()
                        .expect("ready bit set on empty VC");
                    // Hot-lane probe: the common rejection path (head not
                    // yet through the pipeline) reads one 8-byte lane.
                    // With head-sleep, an awake ready head is always past
                    // the pipeline; this probe is a cheap safety net.
                    if self.arena.eligible_at(id) > self.cycle {
                        debug_assert!(false, "awake head not yet eligible");
                        continue;
                    }
                    // Decide routing for the head if needed — only then
                    // is the cold slot (header + route state) read.
                    // Non-adaptive policies keep one decision per router
                    // visit; adaptive policies reuse their cached
                    // decision while its recorded dependency is intact
                    // (a dependency-valid recompute is pure and returns
                    // the same decision, so reuse is bit-identical).
                    let prior = self
                        .arena
                        .decision(id)
                        .filter(|_| !adaptive || (self.route_cache && self.dep_valid(r, id)));
                    let decision = match prior {
                        Some(d) => {
                            #[cfg(any(debug_assertions, feature = "shadow-verify"))]
                            if adaptive {
                                self.shadow_verify_reuse(r, in_port, vc, id, d, policy);
                            }
                            d
                        }
                        None => {
                            let cold = self.arena.cold(id);
                            let (hdr, info) = (cold.header, cold.route);
                            let (d, dep) = policy.route_with_deps(
                                &self.routers[r],
                                Port(in_port as u32),
                                hdr,
                                info,
                            );
                            debug_assert!((d.out_port.0 as usize) < radix);
                            self.arena.set_decision(id, d);
                            self.arena.set_dep(id, dep);
                            d
                        }
                    };
                    if self.routers[r].can_accept(decision.out_port, decision.out_vc, size)
                    {
                        // Nominated: the port proposes this head (and only
                        // this head) if the output still has grant budget.
                        if self.alloc_out_budget[decision.out_port.idx()] > 0 {
                            self.proposals[decision.out_port.idx()]
                                .push((in_port as u32, vc as u8));
                        }
                        break;
                    }
                    // Blocked. Park the head if its decision cannot
                    // change before its target port does: sticky
                    // (non-adaptive) decisions always qualify; adaptive
                    // ones only when their dependency is the port they
                    // wait for. Volatile adaptive decisions must
                    // re-probe every cycle (the recompute may pick a
                    // different output).
                    if self.route_cache {
                        let stable = !adaptive
                            || match self.arena.dep(id) {
                                RouteDep::Always => true,
                                RouteDep::Port { port, .. } => {
                                    port as usize == decision.out_port.idx()
                                }
                                RouteDep::Volatile => false,
                            };
                        if stable {
                            self.routers[r].park(in_port, vc, decision.out_port.idx());
                        }
                    }
                }
            }

            // --- Phase 2: each output port grants one proposal. ---
            let mut any = false;
            #[allow(clippy::needless_range_loop)] // index drives three parallel arrays
            for out_port in 0..radix {
                if self.proposals[out_port].is_empty() || self.alloc_out_budget[out_port] == 0 {
                    continue;
                }
                let winner = self.arbitrate_output(r, out_port);
                let Some((in_port, vc)) = winner else { continue };
                self.commit_grant(r, in_port as usize, vc as usize, out_port);
                self.alloc_in_budget[in_port as usize] -= 1;
                self.alloc_out_budget[out_port] -= 1;
                self.alloc_vc_granted[in_port as usize * vc_stride + vc as usize] = true;
                // Advance the input port's RR pointer past the winner.
                let vcs = self.routers[r].inputs[in_port as usize].len() as u32;
                self.routers[r].in_rr[in_port as usize] = (vc as u32 + 1) % vcs;
                any = true;
            }
            if any {
                self.last_progress = self.cycle;
            } else {
                break;
            }
        }
    }

    /// Pick the winning proposal for `out_port` under the configured
    /// arbiter policy. Proposals were pre-filtered for feasibility, but
    /// feasibility is re-checked at commit time by the caller via
    /// `can_accept` (earlier grants in this cycle may have consumed space).
    fn arbitrate_output(&mut self, r: usize, out_port: usize) -> Option<(u32, u8)> {
        let props = &self.proposals[out_port];
        let router = &self.routers[r];
        let arena = &self.arena;
        let still_feasible = |&(ip, vc): &(u32, u8)| -> bool {
            match router.inputs[ip as usize][vc as usize].front_entry() {
                Some((id, size)) => match arena.decision(id) {
                    Some(d) => router.can_accept(d.out_port, d.out_vc, size),
                    None => false,
                },
                None => false,
            }
        };
        let params = self.topo.params();
        let rr = router.out_rr[out_port];
        let radix = params.radix();
        let key_rr = |ip: u32| (ip + radix - rr) % radix;
        let pick = match self.cfg.arbiter {
            ArbiterPolicy::RoundRobin => props
                .iter()
                .filter(|p| still_feasible(p))
                .min_by_key(|&&(ip, _)| key_rr(ip))
                .copied(),
            ArbiterPolicy::TransitPriority => {
                let class = |ip: u32| match params.port_kind(Port(ip)) {
                    PortKind::Injection => 1u32,
                    _ => 0u32,
                };
                props
                    .iter()
                    .filter(|p| still_feasible(p))
                    .min_by_key(|&&(ip, _)| (class(ip), key_rr(ip)))
                    .copied()
            }
            ArbiterPolicy::AgeBased => props
                .iter()
                .filter(|p| still_feasible(p))
                .min_by_key(|&&(ip, vc)| {
                    let gen = router.inputs[ip as usize][vc as usize]
                        .front()
                        .map(|id| arena.cold(id).header.gen_cycle)
                        .unwrap_or(u64::MAX);
                    (gen, key_rr(ip))
                })
                .copied(),
        };
        if let Some((ip, _)) = pick {
            self.routers[r].out_rr[out_port] = (ip + 1) % radix;
        }
        pick
    }

    /// Move the granted packet from its input VC to the output buffer,
    /// reserving downstream credit and returning upstream credit.
    fn commit_grant(&mut self, r: usize, in_port: usize, vc: usize, out_port: usize) {
        let params = *self.topo.params();
        let (id, size) = self.routers[r].pop_input(in_port, vc);
        if self.routers[r].input_count == 0 {
            clear_bit(&mut self.alloc_active, r);
        }
        // If the VC's next head is still inside the pipeline, sleep the
        // VC until its exact eligibility cycle.
        if let Some(next) = self.routers[r].inputs[in_port][vc].front() {
            let elig = self.arena.eligible_at(next);
            if elig > self.cycle {
                self.routers[r].sleep(in_port, vc);
                self.wheel.schedule(
                    elig - self.cycle,
                    Event::HeadWake {
                        router: self.routers[r].id(),
                        port: Port(in_port as u32),
                        vc: vc as u8,
                    },
                );
            }
        }
        let decision = self.arena.take_decision(id).expect("granted head has decision");
        debug_assert_eq!(decision.out_port.idx(), out_port);
        let was_misrouted;
        {
            // One cold-slot touch per grant: wait accounting and the
            // committed route state.
            let wait = self.cycle.saturating_sub(self.arena.eligible_at(id));
            let pkt = self.arena.cold_mut(id);
            match params.port_kind(Port(in_port as u32)) {
                PortKind::Injection => pkt.waits.injection += wait,
                PortKind::Local => pkt.waits.local += wait,
                PortKind::Global => pkt.waits.global += wait,
            }
            pkt.traversal += self.cfg.pipeline_latency;
            was_misrouted = pkt.route.global_misrouted;
            pkt.route = decision.info;
            pkt.out_enq_at = self.cycle;
        }
        // An escape-path grant is the false→true transition of the
        // misrouting flag: this grant first diverted the packet onto a
        // non-minimal global path.
        if decision.info.global_misrouted && !was_misrouted {
            self.counters.escape_grants += 1;
        }

        // Fairness counters: packets leaving an injection input. The input
        // port of an injection grant *is* the node's slot on its router.
        if params.port_kind(Port(in_port as u32)) == PortKind::Injection {
            self.counters.injected_per_router[r] += 1;
            self.counters.injected_per_node[r * params.p as usize + in_port] += 1;
        }

        // Reserve downstream credit (transit outputs only).
        if !self.routers[r].credits[out_port].is_empty() {
            self.routers[r].reserve_credit(out_port, decision.out_vc as usize, size);
        }
        // The queue feeding a global link just grew (staged packet +
        // reserved credit): PiggyBack's view of this router is stale.
        if params.port_kind(Port(out_port as u32)) == PortKind::Global {
            self.mark_global_dirty(r);
        }

        // Return credit upstream for the input space just freed. An
        // upstream router outside this slice gets its credit through the
        // outbox (cross-shard interception point #1); only global-link
        // ports can cross a group — and therefore shard — boundary.
        let flat = r * params.radix() as usize + in_port;
        let latency = self.latencies[flat];
        match self.peers[flat] {
            PortTarget::Node(node) => {
                self.wheel.schedule(
                    latency,
                    Event::NodeCredit { node, vc: vc as u8, phits: size },
                );
            }
            PortTarget::Router { router, port } => {
                if self.owns_router(router) {
                    self.wheel.schedule(
                        latency,
                        Event::Credit { router, port, vc: vc as u8, phits: size },
                    );
                } else {
                    self.outbox.credits.push(RemoteCredit {
                        router,
                        port,
                        vc: vc as u8,
                        phits: size,
                        delay: latency,
                    });
                }
            }
        }

        self.routers[r].stage_output(
            out_port,
            Staged { pkt: id, size, out_vc: decision.out_vc },
        );
        set_bit(&mut self.tx_active, r);
    }

    /// Start link transmissions from this router's staged output ports,
    /// walking the ready-output bitmask instead of scanning all `radix`
    /// buffers (ascending port order, as before).
    fn transmit_outputs(&mut self, r: usize) {
        debug_assert!(self.routers[r].staged_count > 0, "idle router on tx work list");
        let params = *self.topo.params();
        let radix = params.radix() as usize;
        // Snapshot: `pop_output` may clear a bit of this mask, but only
        // for the port just processed.
        let mut ready = self.routers[r].out_ready;
        while ready != 0 {
            let out_port = ready.trailing_zeros() as usize;
            ready &= ready - 1;
            if self.routers[r].outputs[out_port].link_free_at > self.cycle {
                continue;
            }
            let staged = self.routers[r].pop_output(out_port);
            let size = staged.size;
            let flat = r * radix + out_port;
            let latency = self.latencies[flat];
            // Output-side waiting, attributed by output-port kind
            // (ejection counts as local — it is intra-"last-hop" HoL).
            let pkt = self.arena.cold_mut(staged.pkt);
            let wait = self.cycle - pkt.out_enq_at;
            match params.port_kind(Port(out_port as u32)) {
                PortKind::Injection | PortKind::Local => pkt.waits.local += wait,
                PortKind::Global => pkt.waits.global += wait,
            }
            self.routers[r].outputs[out_port].link_free_at = self.cycle + size as u64;
            self.routers[r].release_output(out_port, size);
            if params.port_kind(Port(out_port as u32)) == PortKind::Global {
                self.counters.global_phits += size as u64;
                self.mark_global_dirty(r);
            }
            match self.peers[flat] {
                PortTarget::Node(node) => {
                    self.arena.cold_mut(staged.pkt).traversal += latency + size as u64;
                    self.wheel.schedule(
                        latency + size as u64,
                        Event::ArriveNode { node, pkt: staged.pkt },
                    );
                }
                PortTarget::Router { router, port } => {
                    self.arena.cold_mut(staged.pkt).traversal += latency;
                    if self.owns_router(router) {
                        self.wheel.schedule(
                            latency,
                            Event::ArriveRouter {
                                router,
                                port,
                                vc: staged.out_vc,
                                pkt: staged.pkt,
                                size,
                            },
                        );
                    } else {
                        // Cross-shard interception point #2: the packet
                        // leaves this slice's arena and travels to the
                        // owner as a value; the controller re-homes it at
                        // the cycle barrier. Traversal was already
                        // charged above, exactly as for a local hop.
                        let packet = self.arena.snapshot(staged.pkt);
                        self.arena.free(staged.pkt);
                        self.live_packets -= 1;
                        self.outbox.flits.push(RemoteFlit {
                            router,
                            port,
                            vc: staged.out_vc,
                            size,
                            delay: latency,
                            packet,
                        });
                    }
                }
            }
        }
        if self.routers[r].staged_count == 0 {
            clear_bit(&mut self.tx_active, r);
        }
    }

    // ------------------------------------------------------------------
    // Route-decision cache
    // ------------------------------------------------------------------

    /// Whether the recorded dependency of `id`'s cached decision still
    /// holds at router `r` (see [`RouteDep`]).
    #[inline]
    fn dep_valid(&self, r: usize, id: PacketId) -> bool {
        match self.arena.dep(id) {
            RouteDep::Volatile => false,
            RouteDep::Always => true,
            RouteDep::Port { port, epoch } => {
                self.routers[r].port_epoch(Port(port as u32)) == epoch
            }
        }
    }

    /// Shadow check for a reused adaptive decision: recompute the route
    /// from scratch and assert it matches the cached decision. Compiled
    /// only under `debug_assertions` or the `shadow-verify` feature.
    ///
    /// The recompute is safe precisely because reuse is restricted to
    /// dependency-valid decisions, which by the [`RouteDep`] contract were
    /// produced on RNG-free, state-mutation-free paths — so the recompute
    /// is pure and perturbs nothing.
    #[cfg(any(debug_assertions, feature = "shadow-verify"))]
    fn shadow_verify_reuse(
        &mut self,
        r: usize,
        in_port: usize,
        vc: usize,
        id: PacketId,
        cached: Decision,
        policy: &mut P,
    ) {
        let cold = self.arena.cold(id);
        let (hdr, info) = (cold.header, cold.route);
        let (fresh, fresh_dep) =
            policy.route_with_deps(&self.routers[r], Port(in_port as u32), hdr, info);
        assert_eq!(
            cached, fresh,
            "route cache divergence: reused decision != fresh recompute at \
             cycle {} router {r} in(port={in_port},vc={vc}) pkt {} (dep {:?}, fresh dep {:?})",
            self.cycle,
            hdr.id,
            self.arena.dep(id),
            fresh_dep,
        );
        debug_assert!(
            !matches!(fresh_dep, RouteDep::Volatile),
            "route cache reused a decision whose recompute is volatile at \
             cycle {} router {r} pkt {}",
            self.cycle,
            hdr.id,
        );
    }

    /// Shadow check: verify every route-cache invariant against the
    /// underlying state. O(network); intended for tests (mirrors
    /// [`Self::assert_work_lists_match_full_scan`]). Panics with a
    /// diagnostic on the first divergence. Specifically, per router:
    ///
    /// * `probe_ready` equals the number of ready, unparked VCs;
    /// * every parked VC is ready (non-empty) and registered in the
    ///   waiter mask of the port it parked on;
    /// * every parked head is eligible, holds a decision for exactly the
    ///   port it parked on, and that (port, VC) still cannot accept it —
    ///   a parked head that *could* proceed is a lost wakeup;
    /// * under an adaptive policy, the parked head's dependency is
    ///   non-volatile and currently valid, and a pure recompute agrees
    ///   with the cached decision.
    pub fn assert_route_cache_coherent(&mut self) {
        let mut policy = self.policy.take().expect("policy detached (shard slice)");
        self.assert_route_cache_coherent_with(&mut policy);
        self.policy = Some(policy);
    }

    /// [`Self::assert_route_cache_coherent`] with the policy supplied by
    /// the sharded controller.
    pub(crate) fn assert_route_cache_coherent_with(&mut self, policy: &mut P) {
        let adaptive = policy.adaptive_reroute();
        let radix = self.topo.params().radix() as usize;
        for r in 0..self.routers.len() {
            let mut expect_ready = 0u32;
            for in_port in 0..radix {
                let ready = self.routers[r].in_ready[in_port];
                let parked = self.routers[r].in_parked[in_port];
                let sleeping = self.routers[r].in_sleeping[in_port];
                assert_eq!(
                    parked & !ready,
                    0,
                    "parked VC without resident packet at router {r} port {in_port}, cycle {}",
                    self.cycle
                );
                assert_eq!(
                    sleeping & !ready,
                    0,
                    "sleeping VC without resident packet at router {r} port {in_port}, cycle {}",
                    self.cycle
                );
                assert_eq!(
                    sleeping & parked,
                    0,
                    "VC both sleeping and parked at router {r} port {in_port}, cycle {}",
                    self.cycle
                );
                let mut smask = sleeping;
                while smask != 0 {
                    let vc = smask.trailing_zeros() as usize;
                    smask &= smask - 1;
                    let (id, _) = self.routers[r].inputs[in_port][vc]
                        .front_entry()
                        .expect("sleeping bit set on empty VC");
                    assert!(
                        self.arena.eligible_at(id) > self.cycle,
                        "sleeping head already eligible (missed wake) at router {r} \
                         in(port={in_port},vc={vc}), cycle {}",
                        self.cycle
                    );
                }
                expect_ready += (ready & !parked & !sleeping).count_ones();
                let mut mask = parked;
                while mask != 0 {
                    let vc = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    let target = self.routers[r]
                        .parked_target(Port(in_port as u32), vc as u8)
                        .expect("parked bit set without parked_on target");
                    assert!(
                        self.routers[r].waiters[target.idx()] & (1u64 << in_port) != 0,
                        "parked head not in waiter mask of its target port at \
                         router {r} in(port={in_port},vc={vc}) -> out {}, cycle {}",
                        target.0,
                        self.cycle
                    );
                    let (id, size) = self.routers[r].inputs[in_port][vc]
                        .front_entry()
                        .expect("parked bit set on empty VC");
                    assert!(
                        self.arena.eligible_at(id) <= self.cycle,
                        "parked head not yet eligible at router {r} \
                         in(port={in_port},vc={vc}), cycle {}",
                        self.cycle
                    );
                    let d = self
                        .arena
                        .decision(id)
                        .expect("parked head without a cached decision");
                    assert_eq!(
                        d.out_port, target,
                        "parked head's decision targets a different port at \
                         router {r} in(port={in_port},vc={vc}), cycle {}",
                        self.cycle
                    );
                    assert!(
                        !self.routers[r].can_accept(d.out_port, d.out_vc, size),
                        "lost wakeup: parked head could proceed at router {r} \
                         in(port={in_port},vc={vc}) -> out {}, cycle {}",
                        d.out_port.0,
                        self.cycle
                    );
                    if adaptive {
                        assert!(
                            !matches!(self.arena.dep(id), RouteDep::Volatile),
                            "volatile decision parked at router {r} \
                             in(port={in_port},vc={vc}), cycle {}",
                            self.cycle
                        );
                        assert!(
                            self.dep_valid(r, id),
                            "parked head's dependency went stale without an \
                             unpark at router {r} in(port={in_port},vc={vc}), cycle {}",
                            self.cycle
                        );
                        #[cfg(any(debug_assertions, feature = "shadow-verify"))]
                        self.shadow_verify_reuse(r, in_port, vc, id, d, policy);
                    }
                }
            }
            assert_eq!(
                self.routers[r].probe_ready(),
                expect_ready,
                "probe_ready counter diverged at router {r}, cycle {}",
                self.cycle
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Decision, PacketHeader, RouteInfo};
    use df_topology::{Arrangement, DragonflyParams};

    /// Minimal-only test policy: local hop to exit router, global hop,
    /// local hop to destination router, ejection.
    struct MinOnly {
        topo: Topology,
    }

    impl RoutingPolicy for MinOnly {
        fn route(
            &mut self,
            router: &RouterState,
            _in_port: Port,
            hdr: PacketHeader,
            mut info: RouteInfo,
        ) -> Decision {
            let params = self.topo.params();
            let me = router.id();
            let dst_router = hdr.dst.router(params);
            let (out_port, out_vc, is_global) = if dst_router == me {
                (params.injection_port(hdr.dst.slot(params)), 0, false)
            } else if dst_router.group(params) == me.group(params) {
                (
                    params.local_port(me.local_index(params), dst_router.local_index(params)),
                    info.local_hops,
                    false,
                )
            } else {
                let (exit, j) =
                    self.topo.exit_to_group(me.group(params), dst_router.group(params));
                if exit == me {
                    (params.global_port(j), info.global_hops, true)
                } else {
                    (
                        params.local_port(me.local_index(params), exit.local_index(params)),
                        info.local_hops,
                        false,
                    )
                }
            };
            if is_global {
                info.global_hops += 1;
            } else if params.port_kind(out_port) == PortKind::Local {
                info.local_hops += 1;
            }
            Decision { out_port, out_vc, info }
        }

        fn name(&self) -> &'static str {
            "test-min"
        }
    }

    fn small_net() -> Network<MinOnly, crate::policy::NullSink> {
        let params = DragonflyParams::figure1();
        let topo = Topology::new(params, Arrangement::Palmtree);
        let policy = MinOnly { topo: topo.clone() };
        let cfg = EngineConfig::paper(ArbiterPolicy::RoundRobin, 3);
        Network::new(topo, cfg, policy, crate::policy::NullSink)
    }

    #[test]
    fn single_packet_same_group_delivered() {
        let mut net = small_net();
        // Node 0 (router 0) to a node on router 1, same group.
        let dst = NodeId(2); // router 1, slot 0 (p=2)
        assert!(net.offer(NodeId(0), dst));
        assert!(net.drain(2000), "packet should be delivered");
        assert_eq!(net.counters().delivered_packets, 1);
        assert_eq!(net.counters().delivered_phits, 8);
    }

    #[test]
    fn single_packet_cross_group_delivered() {
        let mut net = small_net();
        let nodes = net.topology().params().nodes();
        assert!(net.offer(NodeId(0), NodeId(nodes - 1)));
        assert!(net.drain(5000));
        assert_eq!(net.counters().delivered_packets, 1);
    }

    #[test]
    fn latency_identity_holds() {
        let params = DragonflyParams::figure1();
        let topo = Topology::new(params, Arrangement::Palmtree);
        let policy = MinOnly { topo: topo.clone() };
        let cfg = EngineConfig::paper(ArbiterPolicy::RoundRobin, 3);
        let records = std::cell::RefCell::new(Vec::new());
        {
            let sink = |rec: &DeliveredRecord| records.borrow_mut().push(*rec);
            let mut net = Network::new(topo, cfg, policy, sink);
            for i in 0..10u32 {
                net.offer(NodeId(i % 72), NodeId((i * 7 + 13) % 72));
            }
            assert!(net.drain(10_000));
        }
        let records = records.into_inner();
        assert_eq!(records.len(), 10);
        for rec in &records {
            assert_eq!(
                rec.latency(),
                rec.traversal + rec.waits.total(),
                "every cycle of a packet's life must be accounted exactly once: {rec:?}"
            );
            // Minimal routing ⇒ no misrouting latency.
            assert_eq!(rec.misroute_latency(), 0);
        }
    }

    #[test]
    fn unloaded_latency_matches_min_traversal() {
        let params = DragonflyParams::figure1();
        let topo = Topology::new(params, Arrangement::Palmtree);
        let policy = MinOnly { topo: topo.clone() };
        let cfg = EngineConfig::paper(ArbiterPolicy::RoundRobin, 3);
        let records = std::cell::RefCell::new(Vec::new());
        {
            let sink = |rec: &DeliveredRecord| records.borrow_mut().push(*rec);
            let mut net = Network::new(topo, cfg, policy, sink);
            net.offer(NodeId(0), NodeId(70));
            assert!(net.drain(10_000));
        }
        let rec = records.into_inner()[0];
        // A single packet in an empty network: zero queueing.
        assert_eq!(rec.waits.total(), 0);
        assert_eq!(rec.latency(), rec.min_traversal);
    }

    #[test]
    fn injection_counters_attribute_to_source_router() {
        let mut net = small_net();
        net.offer(NodeId(0), NodeId(6)); // source router 0
        net.offer(NodeId(5), NodeId(0)); // source router 2 (p=2)
        assert!(net.drain(5000));
        assert_eq!(net.counters().injected_per_router[0], 1);
        assert_eq!(net.counters().injected_per_router[2], 1);
        // Per-node attribution: node 0 = router 0 slot 0, node 5 = router 2
        // slot 1 (p = 2).
        assert_eq!(net.counters().injected_per_node[0], 1);
        assert_eq!(net.counters().injected_per_node[5], 1);
        assert_eq!(net.counters().injected_per_node.iter().sum::<u64>(), 2);
    }

    #[test]
    fn many_packets_all_delivered() {
        let mut net = small_net();
        let nodes = net.topology().params().nodes();
        let mut offered = 0;
        for round in 0..20u32 {
            for n in 0..nodes {
                if (n + round) % 3 == 0 {
                    let dst = (n * 31 + round * 7 + 1) % nodes;
                    if dst != n && net.offer(NodeId(n), NodeId(dst)) {
                        offered += 1;
                    }
                }
            }
            net.step();
        }
        assert!(net.drain(50_000), "network must drain");
        assert_eq!(net.counters().delivered_packets, offered);
    }

    #[test]
    fn credits_fully_restored_after_drain() {
        // Credit conservation: once the network drains, every credit
        // counter must be back at its capacity and every buffer empty.
        let mut net = small_net();
        let nodes = net.topology().params().nodes();
        for round in 0..10u32 {
            for n in 0..nodes {
                let dst = (n * 7 + round * 13 + 1) % nodes;
                if dst != n {
                    net.offer(NodeId(n), NodeId(dst));
                }
            }
            net.step();
        }
        assert!(net.drain(100_000));
        // Let straggler credit returns land.
        net.run(300);
        for r in &net.routers {
            assert_eq!(r.input_packets(), 0);
            assert_eq!(r.output_packets(), 0);
            for (port, creds) in r.credits.iter().enumerate() {
                assert_eq!(
                    creds, &r.credit_caps[port],
                    "credits leaked at router {:?} port {port}",
                    r.id()
                );
                assert_eq!(
                    r.downstream_occupied(Port(port as u32)),
                    0,
                    "cached downstream occupancy out of sync at {:?} port {port}",
                    r.id()
                );
            }
            assert!(r.in_ready.iter().all(|&m| m == 0), "stale ready bits");
        }
        for node in &net.nodes {
            assert!(node.queue.is_empty());
            let total: u32 = node.credits.iter().sum();
            assert_eq!(total, net.cfg.injection_input_buffer * net.cfg.vcs_injection as u32);
        }
        assert_eq!(net.events_pending(), 0);
        // Arena integrity: every slot freed, capacity bounded by the peak.
        assert_eq!(net.arena_live(), 0, "arena leaked packets");
        assert!(net.arena_capacity() > 0);
    }

    #[test]
    fn arena_capacity_stabilizes_in_steady_state() {
        // Once warm, offer/deliver cycles must reuse freed slots instead
        // of growing the slab: no per-packet allocation in steady state.
        let mut net = small_net();
        let nodes = net.topology().params().nodes();
        for round in 0..40u32 {
            for n in (0..nodes).step_by(3) {
                net.offer(NodeId(n), NodeId((n + 7 + round) % nodes));
            }
            net.step();
        }
        assert!(net.drain(50_000));
        let warm_capacity = net.arena_capacity();
        // Same workload again: the arena must not grow.
        for round in 0..40u32 {
            for n in (0..nodes).step_by(3) {
                net.offer(NodeId(n), NodeId((n + 7 + round) % nodes));
            }
            net.step();
        }
        assert!(net.drain(50_000));
        assert_eq!(
            net.arena_capacity(),
            warm_capacity,
            "steady-state run grew the arena (per-packet allocation)"
        );
        assert_eq!(net.arena_live(), 0);
    }

    #[test]
    fn speedup_bounds_grants_per_output() {
        // With speedup 2, an output can accept at most 2 packets per
        // cycle; the output buffer (4 packets) can therefore never
        // overflow even under a burst from many inputs — push a dense
        // burst through one ejection port and rely on the buffer::push
        // overflow panic to catch violations.
        let mut net = small_net();
        // 16 packets from different sources to the same destination node.
        for i in 0..16u32 {
            net.offer(NodeId(2 * i % 72), NodeId(1));
        }
        assert!(net.drain(50_000));
        assert_eq!(net.counters().delivered_packets, 16);
    }

    #[test]
    fn counters_reset_clears_window() {
        let mut net = small_net();
        net.offer(NodeId(0), NodeId(6));
        net.drain(5000);
        assert_eq!(net.counters().delivered_packets, 1);
        net.reset_counters();
        assert_eq!(net.counters().delivered_packets, 0);
        assert_eq!(net.counters().cycles, 0);
        assert!(net.counters().injected_per_router.iter().all(|&c| c == 0));
    }
}
