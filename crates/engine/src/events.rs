//! A fixed-horizon event wheel for link arrivals and credit returns.
//!
//! All engine events have a bounded delay (at most one global-link latency
//! plus serialization), so a circular calendar indexed by `cycle % size`
//! gives O(1) schedule/drain with no heap allocation churn: slot vectors
//! are recycled.

use crate::arena::PacketId;
use df_topology::{NodeId, Port, RouterId};

/// A scheduled event. Events are small `Copy` values: packets travel by
/// arena handle, so the wheel never owns packet data.
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// Packet head arrives at a router input VC.
    ArriveRouter {
        /// Receiving router.
        router: RouterId,
        /// Input port.
        port: Port,
        /// Input VC.
        vc: u8,
        /// The packet.
        pkt: PacketId,
        /// Packet size in phits, carried in the event so the arrival
        /// handler never reads the packet's cold arena slot.
        size: u32,
    },
    /// Packet tail delivered to its destination node.
    ArriveNode {
        /// Destination node.
        node: NodeId,
        /// The packet.
        pkt: PacketId,
    },
    /// Credits returned to a router's output port (downstream space freed).
    Credit {
        /// Router owning the output port.
        router: RouterId,
        /// The output port.
        port: Port,
        /// Downstream VC the credits belong to.
        vc: u8,
        /// Phits freed.
        phits: u32,
    },
    /// Credits returned to a node's injection link.
    NodeCredit {
        /// The node.
        node: NodeId,
        /// Injection VC the credits belong to.
        vc: u8,
        /// Phits freed.
        phits: u32,
    },
    /// A sleeping input-VC head reaches its `eligible_at` cycle: the VC
    /// becomes probe-able again. Scheduled whenever a packet becomes the
    /// head of its VC while still inside the router pipeline, so the
    /// allocator never polls ineligible heads.
    HeadWake {
        /// Router owning the input VC.
        router: RouterId,
        /// Input port.
        port: Port,
        /// Input VC.
        vc: u8,
    },
}

/// Circular event calendar.
#[derive(Debug)]
pub struct EventWheel {
    slots: Vec<Vec<Event>>,
    /// Scratch vector recycled between drains.
    scratch: Vec<Event>,
    now: u64,
    pending: usize,
}

impl EventWheel {
    /// Wheel able to schedule up to `horizon` cycles ahead.
    pub fn new(horizon: u64) -> Self {
        let size = (horizon + 1).next_power_of_two() as usize;
        Self {
            slots: (0..size).map(|_| Vec::new()).collect(),
            scratch: Vec::new(),
            now: 0,
            pending: 0,
        }
    }

    /// Schedule `ev` to fire `delay` cycles from now (`delay >= 1`).
    ///
    /// # Panics
    /// Panics if `delay` is zero or exceeds the horizon.
    pub fn schedule(&mut self, delay: u64, ev: Event) {
        assert!(delay >= 1, "events must be scheduled in the future");
        assert!(
            (delay as usize) < self.slots.len(),
            "delay {delay} exceeds wheel horizon {}",
            self.slots.len()
        );
        let idx = ((self.now + delay) as usize) & (self.slots.len() - 1);
        self.slots[idx].push(ev);
        self.pending += 1;
    }

    /// Advance to the next cycle and take every event due then. The
    /// returned vector must be handed back via [`Self::recycle`].
    pub fn advance(&mut self) -> Vec<Event> {
        self.now += 1;
        let idx = (self.now as usize) & (self.slots.len() - 1);
        let mut out = std::mem::take(&mut self.scratch);
        debug_assert!(out.is_empty());
        std::mem::swap(&mut out, &mut self.slots[idx]);
        self.pending -= out.len();
        out
    }

    /// Return a drained vector for reuse.
    pub fn recycle(&mut self, mut v: Vec<Event>) {
        v.clear();
        self.scratch = v;
    }

    /// Current cycle of the wheel.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Events still scheduled (packets/credits in flight on links).
    pub fn pending(&self) -> usize {
        self.pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn credit_ev(phits: u32) -> Event {
        Event::Credit { router: RouterId(0), port: Port(0), vc: 0, phits }
    }

    #[test]
    fn events_fire_at_exact_delay() {
        let mut w = EventWheel::new(110);
        w.schedule(3, credit_ev(1));
        w.schedule(1, credit_ev(2));
        let e1 = w.advance(); // cycle 1
        assert_eq!(e1.len(), 1);
        assert!(matches!(e1[0], Event::Credit { phits: 2, .. }));
        w.recycle(e1);
        let e2 = w.advance(); // cycle 2
        assert!(e2.is_empty());
        w.recycle(e2);
        let e3 = w.advance(); // cycle 3
        assert_eq!(e3.len(), 1);
        assert!(matches!(e3[0], Event::Credit { phits: 1, .. }));
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn wraparound_preserves_events() {
        let mut w = EventWheel::new(7);
        for round in 0..100u32 {
            w.schedule(5, credit_ev(round));
            for step in 0..5 {
                let evs = w.advance();
                if step == 4 {
                    assert_eq!(evs.len(), 1, "round {round}");
                } else {
                    assert!(evs.is_empty());
                }
                w.recycle(evs);
            }
        }
    }

    #[test]
    #[should_panic(expected = "future")]
    fn zero_delay_rejected() {
        let mut w = EventWheel::new(8);
        w.schedule(0, credit_ev(0));
    }

    #[test]
    fn pending_counts_in_flight() {
        let mut w = EventWheel::new(16);
        w.schedule(2, credit_ev(0));
        w.schedule(2, credit_ev(1));
        w.schedule(4, credit_ev(2));
        assert_eq!(w.pending(), 3);
        let evs = w.advance();
        w.recycle(evs);
        let evs = w.advance();
        assert_eq!(evs.len(), 2);
        w.recycle(evs);
        assert_eq!(w.pending(), 1);
    }
}
