//! Engine configuration: the router/link micro-architecture parameters of
//! the paper's Table I.

use serde::{Deserialize, Serialize};

/// Output-arbiter policy of the separable allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArbiterPolicy {
    /// Plain round-robin among all requesters (paper §V-C, "without
    /// transit-over-injection priority").
    RoundRobin,
    /// Transit requests always beat injection requests; round-robin within
    /// each class (paper §V-A/B, "similar to Blue Gene systems").
    TransitPriority,
    /// Oldest packet (smallest generation cycle) wins. This is the *age
    /// arbitration* explicit-fairness mechanism (Abts & Weisser, SC'07)
    /// that the paper names as future work; we implement it as the main
    /// extension.
    AgeBased,
}

/// Opt-in windowed-telemetry settings.
///
/// Telemetry is read-only instrumentation: enabling it never changes
/// what the simulation computes (same-seed summaries stay bit-identical,
/// guarded by the golden-digest harness), it only snapshots the counters
/// the hot path already maintains into per-window rows. `None` on
/// [`EngineConfig::telemetry`] means zero cost: no recorder is
/// allocated and the per-cycle hook is a single branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetrySpec {
    /// Width of one timeline window, in cycles.
    pub window_cycles: u64,
    /// Sample network-scope gauges (link utilization, escape grants,
    /// probe-ready heads, port-epoch bumps) each window.
    pub sample_network: bool,
    /// Sample per-job rows (offered/injected/delivered, windowed
    /// throughput and latency) each window.
    pub sample_jobs: bool,
}

impl TelemetrySpec {
    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.window_cycles == 0 {
            return Err("telemetry window_cycles must be positive".into());
        }
        Ok(())
    }
}

impl Default for TelemetrySpec {
    /// 1000-cycle windows, sampling both network gauges and job rows.
    fn default() -> Self {
        TelemetrySpec { window_cycles: 1_000, sample_network: true, sample_jobs: true }
    }
}

/// Micro-architecture and flow-control parameters.
///
/// Defaults mirror the paper's Table I; [`EngineConfig::paper`] is the
/// canonical constructor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Packet size in phits (Table I: 8).
    pub packet_size: u32,
    /// Router pipeline latency in cycles (Table I: 5).
    pub pipeline_latency: u64,
    /// Internal speedup: maximum grants per port per cycle (Table I: 2×).
    pub speedup: u32,
    /// Local (intra-group) link latency in cycles (Table I: 10).
    pub local_link_latency: u64,
    /// Global (inter-group) link latency in cycles (Table I: 100).
    pub global_link_latency: u64,
    /// Node-to-router and router-to-node link latency in cycles.
    pub injection_link_latency: u64,
    /// Input buffer capacity per VC at local ports, in phits (Table I: 32).
    pub local_input_buffer: u32,
    /// Input buffer capacity per VC at global ports, in phits (Table I: 256).
    pub global_input_buffer: u32,
    /// Input buffer capacity per VC at injection ports, in phits.
    pub injection_input_buffer: u32,
    /// Output buffer capacity per port, in phits (Table I: 32).
    pub output_buffer: u32,
    /// Virtual channels at injection ports (Table I: 3).
    pub vcs_injection: u8,
    /// Virtual channels at local ports (Table I: 3 for in-transit adaptive,
    /// 4 for oblivious / source-adaptive Valiant paths).
    pub vcs_local: u8,
    /// Virtual channels at global ports (Table I: 2).
    pub vcs_global: u8,
    /// Output-arbiter policy.
    pub arbiter: ArbiterPolicy,
    /// Bound on each node's source queue, in packets. Generation into a
    /// full queue is discarded (still counted as offered load), keeping
    /// memory bounded far beyond saturation.
    pub max_node_queue: usize,
    /// Opt-in windowed telemetry; `None` (the default) disables it at
    /// zero cost.
    pub telemetry: Option<TelemetrySpec>,
}

impl EngineConfig {
    /// Table I parameters with the given arbiter policy and the number of
    /// local VCs required by the routing mechanism in use (3 for in-transit
    /// adaptive, 4 for oblivious and source-adaptive).
    pub fn paper(arbiter: ArbiterPolicy, vcs_local: u8) -> Self {
        Self {
            packet_size: 8,
            pipeline_latency: 5,
            speedup: 2,
            local_link_latency: 10,
            global_link_latency: 100,
            injection_link_latency: 1,
            local_input_buffer: 32,
            global_input_buffer: 256,
            injection_input_buffer: 32,
            output_buffer: 32,
            vcs_injection: 3,
            vcs_local,
            vcs_global: 2,
            arbiter,
            max_node_queue: 64,
            telemetry: None,
        }
    }

    /// Validate internal consistency (buffers hold at least one packet,
    /// at least one VC everywhere).
    pub fn validate(&self) -> Result<(), String> {
        if self.packet_size == 0 {
            return Err("packet_size must be nonzero".into());
        }
        for (name, cap) in [
            ("local_input_buffer", self.local_input_buffer),
            ("global_input_buffer", self.global_input_buffer),
            ("injection_input_buffer", self.injection_input_buffer),
            ("output_buffer", self.output_buffer),
        ] {
            if cap < self.packet_size {
                return Err(format!(
                    "{name} ({cap} phits) cannot hold one {}-phit packet",
                    self.packet_size
                ));
            }
        }
        if self.vcs_injection == 0 || self.vcs_local == 0 || self.vcs_global == 0 {
            return Err("every port class needs at least one VC".into());
        }
        if self.vcs_injection > 32 || self.vcs_local > 32 || self.vcs_global > 32 {
            return Err("at most 32 VCs per port (ready-list bitmask width)".into());
        }
        if self.speedup == 0 {
            return Err("speedup must be at least 1".into());
        }
        if let Some(telemetry) = &self.telemetry {
            telemetry.validate()?;
        }
        Ok(())
    }

    /// Longest event horizon needed by the wheel: the slowest link plus
    /// serialization, plus slack.
    pub(crate) fn max_event_delay(&self) -> u64 {
        self.global_link_latency
            .max(self.local_link_latency)
            .max(self.injection_link_latency)
            + self.packet_size as u64
            + 2
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::paper(ArbiterPolicy::TransitPriority, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_valid() {
        assert!(EngineConfig::paper(ArbiterPolicy::RoundRobin, 3).validate().is_ok());
        assert!(EngineConfig::paper(ArbiterPolicy::TransitPriority, 4).validate().is_ok());
    }

    #[test]
    fn undersized_buffer_rejected() {
        let c = EngineConfig { output_buffer: 4, ..EngineConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_vcs_rejected() {
        let c = EngineConfig { vcs_global: 0, ..EngineConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_telemetry_window_rejected() {
        let spec = TelemetrySpec { window_cycles: 0, ..TelemetrySpec::default() };
        let c = EngineConfig { telemetry: Some(spec), ..EngineConfig::default() };
        assert!(c.validate().is_err());
        let c = EngineConfig { telemetry: Some(TelemetrySpec::default()), ..c };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn event_horizon_covers_global_link() {
        let c = EngineConfig::default();
        assert!(c.max_event_delay() >= 108);
    }
}
