//! Packets and their in-flight routing/accounting state.

use df_topology::{GroupId, NodeId, Port};
use serde::{Deserialize, Serialize};

/// Monotonic packet sequence number (unique per simulation). Not to be
/// confused with [`crate::arena::PacketId`], the reusable arena handle of
/// a live packet.
pub type PacketSeq = u64;

/// Which leg of a (possibly non-minimal) route the packet is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Heading (minimally) towards the Valiant intermediate destination.
    ToIntermediate,
    /// Heading minimally towards the final destination.
    ToDestination,
}

/// Routing state carried by every packet. The engine only stores it; all
/// interpretation happens in the routing policies (`df-routing`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteInfo {
    /// Current route leg.
    pub phase: Phase,
    /// Valiant-style intermediate node, if the packet was diverted.
    pub intermediate: Option<NodeId>,
    /// Whether the source-routing decision has been taken (source-adaptive
    /// and oblivious mechanisms decide exactly once, at injection).
    pub source_decided: bool,
    /// Whether an in-transit global misroute has been committed.
    pub global_misrouted: bool,
    /// Whether a local misroute has been taken in the current group (OLM
    /// allows at most one per group).
    pub local_misrouted: bool,
    /// Group of the router that last forwarded the packet, used to reset
    /// `local_misrouted` when the packet changes group.
    pub last_group: GroupId,
    /// Local hops taken so far (drives deadlock-free VC selection).
    pub local_hops: u8,
    /// Global hops taken so far (drives deadlock-free VC selection).
    pub global_hops: u8,
}

impl RouteInfo {
    /// Fresh state for a packet about to be injected at `src_group`.
    pub fn new(src_group: GroupId) -> Self {
        Self {
            phase: Phase::ToDestination,
            intermediate: None,
            source_decided: false,
            global_misrouted: false,
            local_misrouted: false,
            last_group: src_group,
            local_hops: 0,
            global_hops: 0,
        }
    }
}

/// Immutable packet identity, copied out for routing decisions so the
/// policy never needs a borrow into router buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketHeader {
    /// Unique sequence number.
    pub id: PacketSeq,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Size in phits.
    pub size: u32,
    /// Cycle the packet was generated (entered the source queue).
    pub gen_cycle: u64,
}

/// Cycle-accounting buckets, matching the paper's Figure 3 breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitBreakdown {
    /// Waiting at the source queue and the injection-port input buffer.
    pub injection: u64,
    /// Waiting at local-port transit queues (input or output side).
    pub local: u64,
    /// Waiting at global-port transit queues (input or output side).
    pub global: u64,
}

impl WaitBreakdown {
    /// Total queued cycles.
    pub fn total(&self) -> u64 {
        self.injection + self.local + self.global
    }
}

/// A packet in flight — the *joined* view of one arena slot.
///
/// In-flight storage is a structure-of-arrays split (see
/// [`crate::arena::PacketArena`]): `eligible_at` and `decision` live in
/// hot parallel arrays probed by the allocator every cycle, everything
/// else in a cold [`crate::arena::PacketCold`] record. This struct is the
/// assembly type used at insertion ([`Packet::new`]) and for diagnostic
/// snapshots; the hot path never materializes it.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    /// Identity and endpoints.
    pub header: PacketHeader,
    /// Routing state (interpreted by `df-routing`).
    pub route: RouteInfo,
    /// Accumulated queueing cycles.
    pub waits: WaitBreakdown,
    /// Pure traversal cycles so far: links crossed and router pipelines,
    /// excluding all queueing. Compared against the minimal-path traversal
    /// to isolate the misrouting component.
    pub traversal: u64,
    /// Cycle the head becomes eligible for allocation at the current
    /// router (arrival + pipeline). Maintained by the engine.
    pub eligible_at: u64,
    /// Cycle the packet entered the current output buffer (output-side
    /// wait accounting). Maintained by the engine.
    pub out_enq_at: u64,
    /// Decided output for the current hop, if any. Cleared on every
    /// arrival; set by the routing policy; consumed by the allocator.
    pub decision: Option<Decision>,
}

/// What a cached routing [`Decision`] depended on, recorded by the
/// engine's route-decision cache when the decision is computed (see
/// [`crate::RoutingPolicy::route_with_deps`]). The cache reuses an
/// adaptive policy's decision only while its dependency is unchanged, and
/// parks blocked heads whose decision is stable until the dependency's
/// port is touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteDep {
    /// The decision depended on state the engine cannot track — it
    /// consumed RNG or mutated policy state. Never reusable; blocked
    /// heads with a volatile adaptive decision re-probe every cycle.
    Volatile,
    /// The decision is independent of congestion (e.g. ejection at the
    /// destination router). Always reusable.
    Always,
    /// The decision read only the congestion of `port`, captured at
    /// `epoch` of that port's change counter
    /// ([`crate::RouterState::port_epoch`]): reusable while the router's
    /// current epoch for the port still equals `epoch`.
    Port {
        /// Output port whose congestion the decision read.
        port: u8,
        /// The port's change epoch at read time.
        epoch: u32,
    },
}

/// A routing decision for the current hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decision {
    /// Output port at the current router.
    pub out_port: Port,
    /// VC to use on the downstream input buffer (ignored for ejection).
    pub out_vc: u8,
    /// Updated routing state to commit on grant.
    pub info: RouteInfo,
}

impl Packet {
    /// Create a freshly generated packet.
    pub fn new(id: PacketSeq, src: NodeId, dst: NodeId, size: u32, gen_cycle: u64, src_group: GroupId) -> Self {
        Self {
            header: PacketHeader { id, src, dst, size, gen_cycle },
            route: RouteInfo::new(src_group),
            waits: WaitBreakdown::default(),
            traversal: 0,
            eligible_at: gen_cycle,
            out_enq_at: 0,
            decision: None,
        }
    }
}

/// Everything known about a packet at delivery; consumed by stats sinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveredRecord {
    /// Identity and endpoints.
    pub header: PacketHeader,
    /// Delivery cycle (tail phit at the destination node).
    pub delivered_cycle: u64,
    /// Pure traversal cycles of the path actually taken (links, pipelines,
    /// serialization at delivery).
    pub traversal: u64,
    /// Pure traversal cycles of the minimal path (the "base latency").
    pub min_traversal: u64,
    /// Queueing breakdown.
    pub waits: WaitBreakdown,
    /// Local hops taken.
    pub local_hops: u8,
    /// Global hops taken.
    pub global_hops: u8,
}

impl DeliveredRecord {
    /// End-to-end latency in cycles.
    pub fn latency(&self) -> u64 {
        self.delivered_cycle - self.header.gen_cycle
    }

    /// Extra traversal cycles due to non-minimal routing.
    pub fn misroute_latency(&self) -> u64 {
        self.traversal - self.min_traversal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_packet_state() {
        let p = Packet::new(7, NodeId(0), NodeId(5), 8, 100, GroupId(0));
        assert_eq!(p.header.id, 7);
        assert_eq!(p.route.phase, Phase::ToDestination);
        assert!(!p.route.source_decided);
        assert_eq!(p.waits.total(), 0);
        assert!(p.decision.is_none());
    }

    #[test]
    fn latency_identity_fields() {
        let rec = DeliveredRecord {
            header: PacketHeader { id: 1, src: NodeId(0), dst: NodeId(9), size: 8, gen_cycle: 50 },
            delivered_cycle: 400,
            traversal: 250,
            min_traversal: 130,
            waits: WaitBreakdown { injection: 60, local: 30, global: 10 },
            local_hops: 3,
            global_hops: 2,
        };
        assert_eq!(rec.latency(), 350);
        assert_eq!(rec.misroute_latency(), 120);
        // total = traversal + waits must hold when the engine accounts
        // every cycle exactly once.
        assert_eq!(rec.latency(), rec.traversal + rec.waits.total());
    }
}
