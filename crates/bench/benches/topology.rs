//! Micro-benchmarks: topology construction and wiring queries.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use df_topology::{Arrangement, DragonflyParams, GroupId, NodeId, Topology};

fn bench_topology(c: &mut Criterion) {
    let params = DragonflyParams::paper();

    c.bench_function("topology/build_paper_scale", |b| {
        b.iter(|| Topology::new(black_box(params), Arrangement::Palmtree))
    });

    let topo = Topology::new(params, Arrangement::Palmtree);
    c.bench_function("topology/exit_to_group", |b| {
        let mut k = 0u32;
        b.iter(|| {
            k = (k + 1) % 72;
            topo.exit_to_group(GroupId(0), GroupId(k + 1))
        })
    });

    c.bench_function("topology/global_peer", |b| {
        let mut r = 0u32;
        b.iter(|| {
            r = (r + 1) % params.routers();
            topo.global_peer(df_topology::RouterId(r), r % params.h)
        })
    });

    c.bench_function("topology/min_path_links", |b| {
        let mut n = 0u32;
        b.iter(|| {
            n = (n + 709) % params.nodes();
            topo.min_path_links(NodeId(n), NodeId((n * 13 + 7) % params.nodes()))
        })
    });
}

criterion_group!(benches, bench_topology);
criterion_main!(benches);
