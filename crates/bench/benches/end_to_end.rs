//! End-to-end benchmark: a short but complete warm-up + measurement
//! simulation per routing mechanism under ADVc — the unit of work every
//! figure harness repeats.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dragonfly_core::prelude::*;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for mechanism in [
        MechanismSpec::Min,
        MechanismSpec::ObliviousRrg,
        MechanismSpec::SourceCrg,
        MechanismSpec::InTransitMm,
    ] {
        group.bench_with_input(
            BenchmarkId::new("advc_0.3", mechanism.label()),
            &mechanism,
            |b, &m| {
                b.iter(|| {
                    let mut cfg = SimConfig::small(
                        m,
                        ArbiterPolicy::TransitPriority,
                        PatternSpec::AdvConsecutive { spread: None },
                        0.3,
                    );
                    cfg.params = DragonflyParams::figure1();
                    cfg.warmup_cycles = 500;
                    cfg.measure_cycles = 1_000;
                    run_single(&cfg)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
