//! Micro-benchmarks: traffic-pattern destination generation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use df_topology::{DragonflyParams, NodeId};
use df_traffic::{AdvConsecutive, Adversarial, BernoulliInjector, Traffic, Uniform};

fn bench_traffic(c: &mut Criterion) {
    let params = DragonflyParams::paper();

    c.bench_function("traffic/uniform_dest", |b| {
        let mut t = Uniform::new(params, 1);
        let mut n = 0u32;
        b.iter(|| {
            n = (n + 1) % params.nodes();
            black_box(t.dest(NodeId(n)))
        })
    });

    c.bench_function("traffic/adv1_dest", |b| {
        let mut t = Adversarial::new(params, 1, 2);
        let mut n = 0u32;
        b.iter(|| {
            n = (n + 1) % params.nodes();
            black_box(t.dest(NodeId(n)))
        })
    });

    c.bench_function("traffic/advc_dest", |b| {
        let mut t = AdvConsecutive::new(params, 3);
        let mut n = 0u32;
        b.iter(|| {
            n = (n + 1) % params.nodes();
            black_box(t.dest(NodeId(n)))
        })
    });

    c.bench_function("traffic/bernoulli_fire", |b| {
        let mut inj = BernoulliInjector::new(0.4, 8, 4);
        let mut n = 0u32;
        b.iter(|| {
            n = (n + 1) % params.nodes();
            black_box(inj.fire(n))
        })
    });
}

criterion_group!(benches, bench_traffic);
criterion_main!(benches);
