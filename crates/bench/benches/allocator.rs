//! Micro-benchmark: allocation pressure — cycle cost when every input VC
//! of a router has a head contending for few outputs (worst case for the
//! separable batch allocator), measured across arbiter policies, plus the
//! saturated-ADVc steady state the route-decision cache targets (blocked
//! adaptive heads everywhere — the allocate-phase hotspot).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use df_engine::{ArbiterPolicy, EngineConfig, Network, NullSink};
use df_routing::MechanismSpec;
use df_topology::{Arrangement, DragonflyParams, NodeId, Topology};
use df_traffic::{AdvConsecutive, Traffic};

/// Build a single-group-bottleneck hotspot: all nodes of group 0 send to
/// the same remote group, saturating the one exit link and keeping every
/// allocator in group 0 busy arbitrating.
fn hotspot_network(
    arbiter: ArbiterPolicy,
) -> Network<Box<dyn df_engine::RoutingPolicy>, NullSink> {
    let params = DragonflyParams::small();
    let topo = Topology::new(params, Arrangement::Palmtree);
    let cfg = EngineConfig::paper(arbiter, 3);
    let policy: Box<dyn df_engine::RoutingPolicy> =
        MechanismSpec::Min.build(topo.clone(), &cfg, 5);
    let mut net = Network::new(topo, cfg, policy, NullSink);
    let per_group = params.a * params.p;
    for round in 0..40u32 {
        for n in 0..per_group {
            let dst = per_group + (n + round) % per_group; // group 0 → group 1
            net.offer(NodeId(n), NodeId(dst));
        }
        net.step();
    }
    net
}

/// The tentpole workload of the route-decision cache: the whole small
/// network saturated under ADVc with in-transit adaptive routing, so
/// every group's exit link is a standing bottleneck and nearly all VC
/// heads are blocked adaptive decisions. Steady state is reached during
/// warm-up; the measured body is one loaded network cycle.
fn saturated_advc_network() -> (
    Network<Box<dyn df_engine::RoutingPolicy>, NullSink>,
    AdvConsecutive,
) {
    let params = DragonflyParams::small();
    let topo = Topology::new(params, Arrangement::Palmtree);
    let cfg = EngineConfig::paper(ArbiterPolicy::TransitPriority, 3);
    let policy: Box<dyn df_engine::RoutingPolicy> =
        MechanismSpec::InTransitMm.build(topo.clone(), &cfg, 5);
    let mut net = Network::new(topo, cfg, policy, NullSink);
    let mut pattern = AdvConsecutive::new(params, 11);
    for round in 0..2_000u32 {
        offer_advc_round(&mut net, &mut pattern, params.nodes(), round);
        net.step();
    }
    (net, pattern)
}

/// Offer ~40% of nodes (deterministic stride, rotating phase) one ADVc
/// packet each — the saturating load of the acceptance benchmark.
fn offer_advc_round(
    net: &mut Network<Box<dyn df_engine::RoutingPolicy>, NullSink>,
    pattern: &mut AdvConsecutive,
    nodes: u32,
    round: u32,
) {
    for n in 0..nodes {
        if (n + round) % 5 < 2 {
            let src = NodeId(n);
            net.offer(src, pattern.dest(src));
        }
    }
}

fn bench_allocator(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocator");
    group.bench_with_input(
        BenchmarkId::new("saturated_advc_cycle", "in_transit_mm"),
        &(),
        |b, _| {
            let (mut net, mut pattern) = saturated_advc_network();
            let nodes = net.topology().params().nodes();
            let mut round = 2_000u32;
            b.iter(|| {
                round = round.wrapping_add(1);
                offer_advc_round(&mut net, &mut pattern, nodes, round);
                net.step()
            })
        },
    );

    for (arbiter, name) in [
        (ArbiterPolicy::RoundRobin, "round_robin"),
        (ArbiterPolicy::TransitPriority, "transit_priority"),
        (ArbiterPolicy::AgeBased, "age_based"),
    ] {
        group.bench_with_input(BenchmarkId::new("hotspot_cycle", name), &arbiter, |b, &arb| {
            let mut net = hotspot_network(arb);
            let params = *net.topology().params();
            let per_group = params.a * params.p;
            let mut round = 0u32;
            b.iter(|| {
                round = round.wrapping_add(1);
                for n in 0..per_group {
                    net.offer(NodeId(n), NodeId(per_group + (n + round) % per_group));
                }
                net.step()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allocator);
criterion_main!(benches);
