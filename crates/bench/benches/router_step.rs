//! Micro-benchmark: full-network cycle cost at idle and under load
//! (the simulator's inner loop).

use criterion::{criterion_group, criterion_main, Criterion};
use df_engine::{ArbiterPolicy, EngineConfig, Network, NullSink, ShardedNetwork};
use df_routing::MechanismSpec;
use df_topology::{Arrangement, DragonflyParams, NodeId, Topology};

fn loaded_network(
    params: DragonflyParams,
    load_rounds: u32,
) -> Network<Box<dyn df_engine::RoutingPolicy>, NullSink> {
    let topo = Topology::new(params, Arrangement::Palmtree);
    let cfg = EngineConfig::paper(ArbiterPolicy::TransitPriority, 3);
    let policy: Box<dyn df_engine::RoutingPolicy> =
        MechanismSpec::InTransitMm.build(topo.clone(), &cfg, 5);
    let mut net = Network::new(topo, cfg, policy, NullSink);
    for round in 0..load_rounds {
        for n in 0..params.nodes() {
            let dst = (n + round * 37 + params.a * params.p) % params.nodes();
            net.offer(NodeId(n), NodeId(dst));
        }
        net.step();
    }
    net
}

fn loaded_sharded_network(
    params: DragonflyParams,
    shards: u32,
    load_rounds: u32,
) -> ShardedNetwork<Box<dyn df_engine::RoutingPolicy + Send>, NullSink> {
    let topo = Topology::new(params, Arrangement::Palmtree);
    let cfg = EngineConfig::paper(ArbiterPolicy::TransitPriority, 3);
    let policy = MechanismSpec::InTransitMm.build(topo.clone(), &cfg, 5);
    let mut net = ShardedNetwork::new(topo, cfg, policy, NullSink, shards);
    for round in 0..load_rounds {
        for n in 0..params.nodes() {
            let dst = (n + round * 37 + params.a * params.p) % params.nodes();
            net.offer(NodeId(n), NodeId(dst));
        }
        net.step();
    }
    net
}

fn bench_step(c: &mut Criterion) {
    let small = DragonflyParams::small();

    c.bench_function("engine/cycle_idle_342_nodes", |b| {
        let mut net = loaded_network(small, 0);
        b.iter(|| net.step())
    });

    c.bench_function("engine/cycle_idle_5256_nodes", |b| {
        // The work-list-driven scheduler makes the idle cycle O(active
        // entities), so paper scale should idle nearly as cheaply as the
        // reduced network despite 15× the nodes.
        let mut net = loaded_network(DragonflyParams::paper(), 0);
        b.iter(|| net.step())
    });

    c.bench_function("engine/cycle_loaded_342_nodes", |b| {
        let mut net = loaded_network(small, 20);
        b.iter(|| {
            // Keep the network loaded while measuring.
            for n in (0..small.nodes()).step_by(9) {
                net.offer(NodeId(n), NodeId((n + 60) % small.nodes()));
            }
            net.step()
        })
    });

    c.bench_function("engine/cycle_loaded_5256_nodes", |b| {
        let paper = DragonflyParams::paper();
        let mut net = loaded_network(paper, 5);
        b.iter(|| {
            for n in (0..paper.nodes()).step_by(17) {
                net.offer(NodeId(n), NodeId((n + 433) % paper.nodes()));
            }
            net.step()
        })
    });

    c.bench_function("engine/router_step_sharded_5256", |b| {
        // Two shards on one CPU: this prices the group-slicing and
        // cycle-barrier overhead against engine/cycle_loaded_5256_nodes,
        // not parallel speed-up (CI has a single core). bench_trend's
        // 1 µs noise floor keeps the delta reported but non-gating when
        // the barrier cost sits in scheduler-jitter territory.
        let paper = DragonflyParams::paper();
        let mut net = loaded_sharded_network(paper, 2, 5);
        b.iter(|| {
            for n in (0..paper.nodes()).step_by(17) {
                net.offer(NodeId(n), NodeId((n + 433) % paper.nodes()));
            }
            net.step()
        })
    });
}

criterion_group!(benches, bench_step);
criterion_main!(benches);
