//! Shared harness code for the figure/table regeneration binaries.
//!
//! Every binary accepts the same core flags:
//!
//! * `--paper-scale` — run the full 5,256-node network of Table I
//!   (slow; default is the reduced h=3, 342-node network whose bottleneck
//!   structure is identical),
//! * `--priority transit|none|age` — output-arbiter policy,
//! * `--pattern un|adv1|advc` — traffic pattern (where applicable),
//! * `--quick` — single seed, coarser load grid (smoke runs),
//! * `--seeds N` — number of averaged seeds (default 3, as in the paper),
//! * `--out PATH` — also dump the raw results as JSON.

use dragonfly_core::prelude::*;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::PathBuf;

/// Parsed common flags.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Full-scale (h=6) network instead of the reduced default.
    pub paper_scale: bool,
    /// Arbiter policy selected via `--priority`.
    pub arbiter: ArbiterPolicy,
    /// Pattern selected via `--pattern` (default ADVc).
    pub pattern: PatternSpec,
    /// Single-seed, coarse-grid smoke mode.
    pub quick: bool,
    /// Seeds to average.
    pub seeds: Vec<u64>,
    /// Optional JSON output path.
    pub out: Option<PathBuf>,
}

impl Default for CommonArgs {
    fn default() -> Self {
        Self {
            paper_scale: false,
            arbiter: ArbiterPolicy::TransitPriority,
            pattern: PatternSpec::AdvConsecutive { spread: None },
            quick: false,
            seeds: DEFAULT_SEEDS.to_vec(),
            out: None,
        }
    }
}

impl CommonArgs {
    /// Parse `std::env::args`, exiting with a message on unknown flags.
    pub fn parse() -> Self {
        let mut args = Self::default();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--paper-scale" => args.paper_scale = true,
                "--quick" => {
                    args.quick = true;
                    args.seeds = vec![DEFAULT_SEEDS[0]];
                }
                "--priority" => {
                    let v = it.next().unwrap_or_default();
                    args.arbiter = match v.as_str() {
                        "transit" => ArbiterPolicy::TransitPriority,
                        "none" => ArbiterPolicy::RoundRobin,
                        "age" => ArbiterPolicy::AgeBased,
                        other => die(&format!("unknown --priority {other}")),
                    };
                }
                "--pattern" => {
                    let v = it.next().unwrap_or_default();
                    args.pattern = match v.as_str() {
                        "un" => PatternSpec::Uniform,
                        "adv1" => PatternSpec::Adversarial { offset: 1 },
                        "advc" => PatternSpec::AdvConsecutive { spread: None },
                        other => die(&format!("unknown --pattern {other}")),
                    };
                }
                "--seeds" => {
                    let n: usize = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--seeds needs a number"));
                    args.seeds = (0..n as u64).map(|i| DEFAULT_SEEDS[0] + i * 31).collect();
                }
                "--out" => {
                    args.out = Some(PathBuf::from(
                        it.next().unwrap_or_else(|| die("--out needs a path")),
                    ));
                }
                other => die(&format!("unknown flag {other}")),
            }
        }
        args
    }

    /// Base configuration for this harness.
    pub fn base_config(&self, mechanism: MechanismSpec, load: f64) -> SimConfig {
        if self.paper_scale {
            SimConfig::paper(mechanism, self.arbiter, self.pattern.clone(), load)
        } else {
            SimConfig::small(mechanism, self.arbiter, self.pattern.clone(), load)
        }
    }

    /// Load grid: the standard 20-point grid, or 6 points in quick mode.
    pub fn load_grid(&self) -> Vec<f64> {
        if self.quick {
            vec![0.1, 0.2, 0.3, 0.4, 0.6, 0.8]
        } else {
            standard_load_grid()
        }
    }

    /// Human-readable description of the arbiter for headers.
    pub fn priority_label(&self) -> &'static str {
        match self.arbiter {
            ArbiterPolicy::TransitPriority => "transit-over-injection priority",
            ArbiterPolicy::RoundRobin => "no transit priority (round-robin)",
            ArbiterPolicy::AgeBased => "age-based arbitration",
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Print a one-line error and exit 1. For runtime failures (I/O,
/// serialization, simulation errors); usage errors exit 2 via each
/// binary's own `die`. Keeps CLI failures to a single stderr line
/// instead of an unwrap backtrace.
pub fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// One line of a `--timeline out.jsonl` stream: the run coordinates plus
/// one closed telemetry window. The vendored serde has no
/// `#[serde(flatten)]`, so the window row nests under `window` — see
/// `docs/OBSERVABILITY.md` for the full schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineLine {
    /// Scenario name.
    pub scenario: String,
    /// Mechanism label of the run.
    pub mechanism: String,
    /// Master seed of the run.
    pub seed: u64,
    /// The closed window.
    pub window: WindowRow,
}

/// A streaming sink for [`dragonfly_core::run_scenario_timeline`]: each
/// closed window is appended to `file` as one compact JSON line (and
/// flushed, so a consumer tailing the file sees rows as they close).
pub fn timeline_sink(
    mut file: std::fs::File,
    scenario: String,
    mechanism: String,
    seed: u64,
) -> TimelineSink {
    Box::new(move |row| {
        let line = TimelineLine {
            scenario: scenario.clone(),
            mechanism: mechanism.clone(),
            seed,
            window: row.clone(),
        };
        let text = serde_json::to_string(&line)
            .unwrap_or_else(|e| fail(&format!("serialize timeline line: {e}")));
        writeln!(file, "{text}")
            .unwrap_or_else(|e| fail(&format!("write timeline line: {e}")));
        file.flush().unwrap_or_else(|e| fail(&format!("flush timeline line: {e}")));
    })
}

/// Create (truncate) a `--timeline` JSONL output file.
pub fn create_timeline_file(path: &PathBuf) -> Result<std::fs::File, String> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    std::fs::File::create(path).map_err(|e| format!("create {}: {e}", path.display()))
}

/// Write any serializable value as pretty JSON.
pub fn write_json<T: Serialize>(path: &PathBuf, value: &T) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    let json =
        serde_json::to_string_pretty(value).map_err(|e| format!("serialize results: {e}"))?;
    std::fs::write(path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

/// Print a latency/throughput sweep as two aligned text tables, mirroring
/// the paper's paired plots.
pub fn print_sweep(mechanism_labels: &[&str], sweeps: &[Vec<AveragedResult>]) {
    assert_eq!(mechanism_labels.len(), sweeps.len());
    println!("\n== Average packet latency (cycles) vs offered load ==");
    print!("{:>6}", "load");
    for m in mechanism_labels {
        print!("{m:>13}");
    }
    println!();
    let points = sweeps[0].len();
    for i in 0..points {
        print!("{:>6.2}", sweeps[0][i].load);
        for s in sweeps {
            print!("{:>13.1}", s[i].avg_latency);
        }
        println!();
    }
    println!("\n== Accepted load (phits/node/cycle) vs offered load ==");
    print!("{:>6}", "load");
    for m in mechanism_labels {
        print!("{m:>13}");
    }
    println!();
    for i in 0..points {
        print!("{:>6.2}", sweeps[0][i].load);
        for s in sweeps {
            print!("{:>13.4}", s[i].throughput);
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args_mirror_paper_protocol() {
        let a = CommonArgs::default();
        assert_eq!(a.seeds.len(), 3);
        assert_eq!(a.arbiter, ArbiterPolicy::TransitPriority);
        assert!(matches!(a.pattern, PatternSpec::AdvConsecutive { spread: None }));
    }

    #[test]
    fn base_config_scales() {
        let mut a = CommonArgs::default();
        let small = a.base_config(MechanismSpec::Min, 0.4);
        assert_eq!(small.params.nodes(), 342);
        a.paper_scale = true;
        let full = a.base_config(MechanismSpec::Min, 0.4);
        assert_eq!(full.params.nodes(), 5256);
    }

    #[test]
    fn quick_grid_is_subset() {
        let a = CommonArgs { quick: true, ..CommonArgs::default() };
        assert!(a.load_grid().len() < standard_load_grid().len());
    }
}
