//! Diagnostic: watch the ADVc bottleneck router's global-port congestion
//! and injection progress over time (not a paper figure), plus a
//! per-phase wall-clock breakdown of the engine cycle (deliver / policy /
//! inject / allocate / transmit) to direct hot-path optimization work.
//!
//! ```text
//! dbg_bottleneck [crg|rrg|mm] [--live] [--json PATH] [--shards N]
//! ```
//!
//! * positional mechanism — `crg`, `rrg`, or the default `mm`,
//! * `--live` — enable windowed telemetry and print each window's
//!   delivered/escape/probe rates *as the window closes* (plus a trailing
//!   5-window delivered rate from a `RateWindow`), so starvation onset
//!   and the allocate-phase hotspot are visible while they happen,
//! * `--json PATH` — archive the per-chunk phase breakdowns and the run
//!   total as JSON next to the bench artifacts,
//! * `--shards N` — run on the group-sharded engine with `N` shards; the
//!   phase breakdown then includes the cycle-barrier merge (folded into
//!   the transmit phase) and the congestion trace is bit-identical to
//!   the serial engine's.

use df_bench::{fail, write_json};
use dragonfly_core::df_engine::{PhaseProfile, RouterState, TelemetrySpec};
use dragonfly_core::df_stats::RateWindow;
use dragonfly_core::prelude::*;
use serde::Serialize;
use std::path::PathBuf;

/// Archived phase breakdowns (`--json`): one profile per 1000-cycle
/// chunk plus the run total.
#[derive(Debug, Serialize)]
struct PhaseReport {
    mechanism: String,
    chunk_cycles: u64,
    chunks: Vec<PhaseProfile>,
    total: PhaseProfile,
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: dbg_bottleneck [crg|rrg|mm] [--live] [--json PATH] [--shards N]");
    std::process::exit(2);
}

fn main() {
    let mut mech = MechanismSpec::InTransitMm;
    let mut live = false;
    let mut json: Option<PathBuf> = None;
    let mut shards: Option<u32> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "crg" => mech = MechanismSpec::InTransitCrg,
            "rrg" => mech = MechanismSpec::InTransitRrg,
            "mm" => mech = MechanismSpec::InTransitMm,
            "--live" => live = true,
            "--json" => {
                json = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| die("--json needs a path")),
                ));
            }
            "--shards" => {
                shards = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| die("--shards needs a positive number")),
                );
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    let mut cfg = SimConfig::small(
        mech,
        ArbiterPolicy::TransitPriority,
        PatternSpec::AdvConsecutive { spread: None },
        0.4,
    );
    const WINDOW: u64 = 1_000;
    if live {
        cfg.telemetry = Some(TelemetrySpec { window_cycles: WINDOW, ..TelemetrySpec::default() });
    }
    if shards.is_some() {
        cfg.shards = shards;
    }
    let mut sim = Simulator::new(&cfg);
    let params = cfg.params;
    let a = params.a;
    let bottleneck = (a - 1) as usize; // router 5 of group 0
    println!("mech={} bottleneck=R{bottleneck}", mech.label());
    if live {
        // Streaming sink: one line per closed window, printed mid-run.
        // The trailing rate smooths the last five windows through an
        // exact ring-of-buckets counter.
        let mut trailing = RateWindow::new(WINDOW, 5);
        sim.set_timeline_sink(Box::new(move |row| {
            trailing.record(row.start_cycle, row.delivered_packets);
            println!(
                "live w{:>3} [{:>6},{:>6}) thr={:.4} util={:.3} esc/cyc={:.4} \
                 probe_ready={:>4} epoch_bumps={:>6} trail5_pkts/cyc={:.3}",
                row.window,
                row.start_cycle,
                row.end_cycle,
                row.throughput,
                row.link_utilization,
                row.escape_grant_rate,
                row.probe_ready_heads,
                row.port_epoch_bumps,
                trailing.rate(),
            );
        }));
        // Arm the recorder from cycle 0: this diagnostic has no warm-up
        // phase, the whole run is the measurement.
        sim.begin_measurement();
    }
    let mut total = PhaseProfile::default();
    let mut chunks = Vec::new();
    for t in 0..30 {
        let mut chunk = PhaseProfile::default();
        for _ in 0..WINDOW {
            sim.step_profiled(&mut chunk);
        }
        let net = sim.network();
        let counters = net.counters();
        let inj_b = counters.injected_per_router[bottleneck];
        let inj_others: u64 = counters.injected_per_router[..a as usize]
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != bottleneck)
            .map(|(_, &c)| c)
            .sum();
        let r: &RouterState = net.router(RouterId(bottleneck as u32));
        // classify waiting heads: input kind x decided-output kind
        let mut transit_to_global = 0;
        let mut transit_to_local = 0;
        let mut inj_to_global = 0;
        let mut inj_waiting = 0;
        use dragonfly_core::df_topology::{PortKind, PortLayout};
        for q in 0..params.radix() {
            let kind_in = params.port_kind(Port(q));
            let vcs = match kind_in { PortKind::Injection => 3, PortKind::Local => 3, PortKind::Global => 2 };
            for v in 0..vcs {
                if let Some(id) = r.head(Port(q), v) {
                    let pk = net.packet_at(RouterId(bottleneck as u32), id);
                    if let Some(d) = pk.decision {
                        let kout = params.port_kind(d.out_port);
                        match (kind_in, kout) {
                            (PortKind::Injection, PortKind::Global) => inj_to_global += 1,
                            (PortKind::Injection, _) => inj_waiting += 1,
                            (_, PortKind::Global) => transit_to_global += 1,
                            (_, PortKind::Local) => transit_to_local += 1,
                            _ => {}
                        }
                    } else { if kind_in == PortKind::Injection { inj_waiting += 1; } }
                }
            }
        }
        let occs: Vec<String> = (0..params.h)
            .map(|j| {
                let port = Port(params.p + params.a - 1 + j);
                format!("{:.2}", r.output_congestion(port))
            })
            .collect();
        println!(
            "t={:>6} inj_R{bottleneck}={inj_b:>7} inj_mean_others={:>9.1} thr={:.4} in_flight={:>6} gocc={:?} t2g={transit_to_global} t2l={transit_to_local} i2g={inj_to_global} iw={inj_waiting}",
            (t + 1) * WINDOW,
            inj_others as f64 / (a - 1) as f64,
            counters.throughput(params.nodes()),
            net.in_flight(),
            occs,
        );
        let phases: Vec<String> = chunk
            .phases()
            .iter()
            .map(|(label, ns)| format!("{label}={:.2}µs", *ns as f64 / 1e3 / chunk.cycles as f64))
            .collect();
        println!(
            "          cycle={:.2}µs [{}]",
            chunk.total_ns() as f64 / 1e3 / chunk.cycles as f64,
            phases.join(" "),
        );
        total.absorb(&chunk);
        chunks.push(chunk);
    }
    println!(
        "phase totals over {} cycles (mean {:.2}µs/cycle):",
        total.cycles,
        total.total_ns() as f64 / 1e3 / total.cycles as f64
    );
    for (label, ns) in total.phases() {
        println!(
            "  {label:<9} {:>8.2}µs/cycle  {:>5.1}%",
            ns as f64 / 1e3 / total.cycles as f64,
            ns as f64 / total.total_ns() as f64 * 100.0,
        );
    }
    if let Some(path) = &json {
        let report = PhaseReport {
            mechanism: mech.label().to_string(),
            chunk_cycles: WINDOW,
            chunks,
            total,
        };
        write_json(path, &report).unwrap_or_else(|e| fail(&e));
    }
}
