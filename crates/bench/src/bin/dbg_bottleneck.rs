//! Diagnostic: watch the ADVc bottleneck router's global-port congestion
//! and injection progress over time (not a paper figure), plus a
//! per-phase wall-clock breakdown of the engine cycle (deliver / policy /
//! inject / allocate / transmit) to direct hot-path optimization work.

use dragonfly_core::prelude::*;
use dragonfly_core::df_engine::{PhaseProfile, RouterState};

fn main() {
    let mech = match std::env::args().nth(1).as_deref() {
        Some("crg") => MechanismSpec::InTransitCrg,
        Some("rrg") => MechanismSpec::InTransitRrg,
        _ => MechanismSpec::InTransitMm,
    };
    let cfg = SimConfig::small(
        mech,
        ArbiterPolicy::TransitPriority,
        PatternSpec::AdvConsecutive { spread: None },
        0.4,
    );
    let mut sim = Simulator::new(&cfg);
    let params = cfg.params;
    let a = params.a;
    let bottleneck = (a - 1) as usize; // router 5 of group 0
    println!("mech={} bottleneck=R{bottleneck}", mech.label());
    let mut total = PhaseProfile::default();
    for t in 0..30 {
        let mut chunk = PhaseProfile::default();
        for _ in 0..1000 {
            sim.step_profiled(&mut chunk);
        }
        let net = sim.network();
        let counters = net.counters();
        let inj_b = counters.injected_per_router[bottleneck];
        let inj_others: u64 = counters.injected_per_router[..a as usize]
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != bottleneck)
            .map(|(_, &c)| c)
            .sum();
        let r: &RouterState = net.router(RouterId(bottleneck as u32));
        // classify waiting heads: input kind x decided-output kind
        let mut transit_to_global = 0;
        let mut transit_to_local = 0;
        let mut inj_to_global = 0;
        let mut inj_waiting = 0;
        use dragonfly_core::df_topology::{PortKind, PortLayout};
        for q in 0..params.radix() {
            let kind_in = params.port_kind(Port(q));
            let vcs = match kind_in { PortKind::Injection => 3, PortKind::Local => 3, PortKind::Global => 2 };
            for v in 0..vcs {
                if let Some(id) = r.head(Port(q), v) {
                    let pk = net.packet(id);
                    if let Some(d) = pk.decision {
                        let kout = params.port_kind(d.out_port);
                        match (kind_in, kout) {
                            (PortKind::Injection, PortKind::Global) => inj_to_global += 1,
                            (PortKind::Injection, _) => inj_waiting += 1,
                            (_, PortKind::Global) => transit_to_global += 1,
                            (_, PortKind::Local) => transit_to_local += 1,
                            _ => {}
                        }
                    } else { if kind_in == PortKind::Injection { inj_waiting += 1; } }
                }
            }
        }
        let occs: Vec<String> = (0..params.h)
            .map(|j| {
                let port = Port(params.p + params.a - 1 + j);
                format!("{:.2}", r.output_congestion(port))
            })
            .collect();
        println!(
            "t={:>6} inj_R{bottleneck}={inj_b:>7} inj_mean_others={:>9.1} thr={:.4} in_flight={:>6} gocc={:?} t2g={transit_to_global} t2l={transit_to_local} i2g={inj_to_global} iw={inj_waiting}",
            (t + 1) * 1000,
            inj_others as f64 / (a - 1) as f64,
            counters.throughput(params.nodes()),
            net.in_flight(),
            occs,
        );
        let phases: Vec<String> = chunk
            .phases()
            .iter()
            .map(|(label, ns)| format!("{label}={:.2}µs", *ns as f64 / 1e3 / chunk.cycles as f64))
            .collect();
        println!(
            "          cycle={:.2}µs [{}]",
            chunk.total_ns() as f64 / 1e3 / chunk.cycles as f64,
            phases.join(" "),
        );
        total.absorb(&chunk);
    }
    println!(
        "phase totals over {} cycles (mean {:.2}µs/cycle):",
        total.cycles,
        total.total_ns() as f64 / 1e3 / total.cycles as f64
    );
    for (label, ns) in total.phases() {
        println!(
            "  {label:<9} {:>8.2}µs/cycle  {:>5.1}%",
            ns as f64 / 1e3 / total.cycles as f64,
            ns as f64 / total.total_ns() as f64 * 100.0,
        );
    }
}
