//! The scenario job server: run a [`df_service::Service`] on a local
//! Unix socket until a `shutdown` request arrives.
//!
//! ```text
//! cargo run --release -p df-bench --bin df-serve -- --socket /tmp/df.sock \
//!     --event-log bench-results/service_events.jsonl
//! ```
//!
//! Flags:
//!
//! * `--socket PATH` — Unix socket to listen on (default `df-service.sock`),
//! * `--workers N` — worker threads (default 2),
//! * `--queue-depth N` — admission cap on queued jobs (default 16),
//! * `--cache-capacity N` — result-cache entries, 0 disables (default 256),
//! * `--max-retries N` — retries after a panicking attempt (default 2),
//! * `--progress-cycles N` — cycles between `progress` events (default 1000),
//! * `--event-log PATH` — append every event of every connection as JSON
//!   lines (the artifact CI archives),
//! * `--state-dir PATH` — durable state root: completed results spill
//!   here and reload (digest-verified) after a restart, and in-flight
//!   sweeps checkpoint per `(cell, seed)` unit so a killed server
//!   resumes instead of recomputing (docs/SERVICE.md "Durability").
//!
//! Submit jobs with `df-submit`; see `docs/SERVICE.md` for the protocol.

use df_bench::fail;
use df_service::{serve, Service, ServiceConfig};
use std::path::PathBuf;
use std::sync::Arc;

struct Args {
    socket: PathBuf,
    event_log: Option<PathBuf>,
    cfg: ServiceConfig,
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: df-serve [--socket PATH] [--workers N] [--queue-depth N] \
         [--cache-capacity N] [--max-retries N] [--progress-cycles N] [--event-log PATH] \
         [--state-dir PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        socket: PathBuf::from("df-service.sock"),
        event_log: None,
        cfg: ServiceConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    let number = |it: &mut dyn Iterator<Item = String>, flag: &str| -> usize {
        it.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| die(&format!("{flag} needs a number")))
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--socket" => {
                args.socket =
                    PathBuf::from(it.next().unwrap_or_else(|| die("--socket needs a path")));
            }
            "--event-log" => {
                args.event_log =
                    Some(PathBuf::from(it.next().unwrap_or_else(|| die("--event-log needs a path"))));
            }
            "--state-dir" => {
                args.cfg.state_dir =
                    Some(PathBuf::from(it.next().unwrap_or_else(|| die("--state-dir needs a path"))));
            }
            "--workers" => args.cfg.workers = number(&mut it, "--workers").max(1),
            "--queue-depth" => args.cfg.queue_depth = number(&mut it, "--queue-depth"),
            "--cache-capacity" => args.cfg.cache_capacity = number(&mut it, "--cache-capacity"),
            "--max-retries" => args.cfg.max_retries = number(&mut it, "--max-retries") as u32,
            "--progress-cycles" => {
                args.cfg.progress_cycles = number(&mut it, "--progress-cycles") as u64
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    eprintln!(
        "df-serve: listening on {} ({} workers, queue depth {}, cache {} entries, \
         {} retries)",
        args.socket.display(),
        args.cfg.workers,
        args.cfg.queue_depth,
        args.cfg.cache_capacity,
        args.cfg.max_retries,
    );
    let state_dir = args.cfg.state_dir.clone();
    let service = Arc::new(
        Service::open(args.cfg)
            .unwrap_or_else(|e| fail(&format!("open state dir: {e}"))),
    );
    if let Some(dir) = &state_dir {
        let report = service.startup_report();
        eprintln!(
            "df-serve: state dir {} — recovered {} cached result(s), quarantined {}",
            dir.display(),
            report.entries.len(),
            report.quarantined.len(),
        );
    }
    serve(service, &args.socket, args.event_log.as_deref())
        .unwrap_or_else(|e| fail(&format!("serve on {}: {e}", args.socket.display())));
    // Graceful exit: the accept loop only returns after a `shutdown`
    // request drained every in-flight job.
    let _ = std::fs::remove_file(&args.socket);
    eprintln!("df-serve: drained and stopped");
}
