//! Scenario runner CLI: load a multi-job scenario from JSON, run it under
//! every mechanism it names (rayon over mechanism × seed), and emit
//! per-job and per-router throughput/latency/fairness results.
//!
//! ```text
//! cargo run --release -p df-bench --bin scenario -- scenarios/interference_advc_vs_uniform.json
//! cargo run --release -p df-bench --bin scenario -- --quick scenarios/paper_job_anatomy.json
//! ```
//!
//! Flags:
//!
//! * `--seeds N` — seeds to average (default 3),
//! * `--quick` — single seed and a reduced cycle budget (CI smoke),
//! * `--out PATH` — write the full result (including per-seed runs) as JSON,
//! * `--record-trace PATH` — additionally record the generation stream of
//!   the first mechanism × first seed as a replayable JSON trace,
//! * `--timeline PATH` — additionally run every mechanism × the first
//!   seed with windowed telemetry on, streaming one JSONL row per window
//!   into `PATH` as it closes (see `docs/OBSERVABILITY.md`),
//! * `--shards N` — run each cell on the group-sharded engine with `N`
//!   shards (clamped to the group count). Output is bit-identical to the
//!   serial engine for any `N` (see `docs/DETERMINISM.md`); overrides the
//!   spec's `shards` field and `DF_TEST_SHARDS`.
//!
//! The seed-averaged summary is always printed to stdout as JSON (after
//! the human-readable tables), so downstream tooling can consume the run
//! without extra flags.

use df_bench::{create_timeline_file, fail, timeline_sink, write_json};
use dragonfly_core::prelude::*;
use std::path::PathBuf;

struct Args {
    scenario: String,
    seeds: Vec<u64>,
    quick: bool,
    out: Option<PathBuf>,
    record_trace: Option<String>,
    timeline: Option<PathBuf>,
    shards: Option<u32>,
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: scenario [--seeds N] [--quick] [--out PATH] [--record-trace PATH] \
         [--timeline PATH] [--shards N] SCENARIO.json"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        scenario: String::new(),
        seeds: Vec::new(),
        quick: false,
        out: None,
        record_trace: None,
        timeline: None,
        shards: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--seeds" => {
                let n: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--seeds needs a positive number"));
                args.seeds = (0..n).map(|i| DEFAULT_SEEDS[0] + i * 31).collect();
            }
            "--out" => {
                args.out = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| die("--out needs a path")),
                ));
            }
            "--record-trace" => {
                args.record_trace =
                    Some(it.next().unwrap_or_else(|| die("--record-trace needs a path")));
            }
            "--timeline" => {
                args.timeline = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| die("--timeline needs a path")),
                ));
            }
            "--shards" => {
                args.shards = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| die("--shards needs a positive number")),
                );
            }
            other if !other.starts_with('-') && args.scenario.is_empty() => {
                args.scenario = other.to_string();
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    if args.scenario.is_empty() {
        die("missing scenario file");
    }
    // Seed defaulting is order-independent: --quick only trims the seed
    // set when --seeds was not given explicitly.
    if args.seeds.is_empty() {
        args.seeds =
            if args.quick { vec![DEFAULT_SEEDS[0]] } else { DEFAULT_SEEDS.to_vec() };
    }
    args
}

fn main() {
    let args = parse_args();
    let mut spec = ScenarioSpec::load(&args.scenario).unwrap_or_else(|e| die(&e));
    if args.quick {
        spec.warmup_cycles = spec.warmup_cycles.min(2_000);
        spec.measure_cycles = spec.measure_cycles.min(4_000);
    }
    if args.shards.is_some() {
        spec.shards = args.shards;
    }
    spec.validate(args.seeds[0]).unwrap_or_else(|e| die(&e));

    eprintln!(
        "scenario `{}`: {} nodes, {} jobs, {} mechanisms, {} seeds, {}+{} cycles",
        spec.name,
        spec.params.nodes(),
        spec.jobs.len(),
        spec.mechanisms.len(),
        args.seeds.len(),
        spec.warmup_cycles,
        spec.measure_cycles,
    );
    for job in &spec.jobs {
        eprintln!(
            "  job `{}`: {} pattern, {} injection, load {}",
            job.name,
            job.pattern.label(),
            job.injection.label(),
            job.load
        );
    }

    if let Some(path) = &args.record_trace {
        // One recorder per job: each job's stream replays independently
        // through `InjectionSpec::Trace`. Multi-job scenarios get one
        // trace file per job (`PATH.jobN.json`).
        let mut recorders = vec![TraceRecorder::new(); spec.jobs.len()];
        run_scenario_once(&spec, spec.mechanisms[0], args.seeds[0], Some(&mut recorders))
            .unwrap_or_else(|e| fail(&e.to_string()));
        for (j, recorder) in recorders.iter().enumerate() {
            let job_path = if recorders.len() == 1 {
                path.clone()
            } else {
                format!("{path}.job{j}.json")
            };
            recorder.save(&job_path).unwrap_or_else(|e| fail(&e));
            eprintln!(
                "recorded {} events of job `{}` under {} to {job_path}",
                recorder.events().len(),
                spec.jobs[j].name,
                spec.mechanisms[0].label(),
            );
        }
    }

    if let Some(path) = &args.timeline {
        // Windowed-telemetry pass: every mechanism under the first seed,
        // sequentially, appending to one JSONL stream. Separate from the
        // aggregate runs below so the summary stays untouched by
        // instrumentation (it is bit-identical anyway, but the timeline
        // pass costs extra wall-clock only when requested).
        let file = create_timeline_file(path).unwrap_or_else(|e| fail(&e));
        for &mechanism in &spec.mechanisms {
            let sink = timeline_sink(
                file.try_clone()
                    .unwrap_or_else(|e| fail(&format!("clone timeline handle: {e}"))),
                spec.name.clone(),
                mechanism.label().to_string(),
                args.seeds[0],
            );
            let run = run_scenario_timeline(&spec, mechanism, args.seeds[0], sink)
                .unwrap_or_else(|e| fail(&e.to_string()));
            eprintln!(
                "timeline: {} windows of `{}` under {} appended to {}",
                run.timeline.as_ref().map_or(0, Vec::len),
                spec.name,
                mechanism.label(),
                path.display()
            );
        }
    }

    let result = run_scenario(&spec, &args.seeds).unwrap_or_else(|e| fail(&e.to_string()));

    for m in &result.mechanisms {
        println!("\n== {} ==", m.mechanism);
        println!(
            "  network: accepted {:.4} phits/node/cycle, latency {:.1} cycles, router CoV {:.4}",
            m.throughput, m.avg_latency, m.router_cov
        );
        println!(
            "  {:>12} {:>6} {:>9} {:>9} {:>10} {:>8} {:>8} {:>8} {:>9} {:>9} {:>8}",
            "job", "nodes", "offered", "accepted", "latency", "p50", "p95", "p99", "min inj",
            "max/min", "CoV"
        );
        for j in &m.per_job {
            let pct = |p: Option<f64>| match p {
                Some(v) => format!("{v:.0}"),
                None => "-".to_string(),
            };
            println!(
                "  {:>12} {:>6} {:>9.4} {:>9.4} {:>10.1} {:>8} {:>8} {:>8} {:>9.1} {:>9.2} {:>8.4}",
                j.job,
                j.nodes,
                j.offered,
                j.throughput,
                j.avg_latency,
                pct(j.p50_latency),
                pct(j.p95_latency),
                pct(j.p99_latency),
                j.min_injections,
                j.max_min_ratio,
                j.cov
            );
        }
    }

    if let Some(out) = &args.out {
        write_json(out, &result).unwrap_or_else(|e| fail(&e));
    }

    println!(
        "\n{}",
        serde_json::to_string_pretty(&result.summary())
            .unwrap_or_else(|e| fail(&format!("serialize summary: {e}")))
    );
}
