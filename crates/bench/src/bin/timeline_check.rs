//! CI validator for `--timeline` JSONL streams: every line must parse as
//! a [`TimelineLine`] and, within each (scenario, mechanism, seed) run,
//! the windows must form a gap-free, zero-based sequence of non-empty
//! cycle ranges.
//!
//! ```text
//! timeline_check out.jsonl [more.jsonl ...]
//! ```
//!
//! Exits 1 on the first malformed line or broken window chain, 0 when
//! every stream checks out (printing a per-run window count).

use df_bench::TimelineLine;
use std::collections::BTreeMap;

fn die(msg: &str) -> ! {
    eprintln!("timeline_check: {msg}");
    std::process::exit(1);
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: timeline_check FILE.jsonl [FILE.jsonl ...]");
        std::process::exit(2);
    }
    // run key -> (next expected window index, next expected start cycle, rows seen)
    let mut runs: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    let mut lines = 0u64;
    for path in &paths {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("read {path}: {e}")));
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            if raw.trim().is_empty() {
                continue;
            }
            let line: TimelineLine = serde_json::from_str(raw)
                .unwrap_or_else(|e| die(&format!("{path}:{lineno}: not a timeline row: {e}")));
            lines += 1;
            let w = &line.window;
            if w.end_cycle <= w.start_cycle {
                die(&format!(
                    "{path}:{lineno}: empty window [{}, {})",
                    w.start_cycle, w.end_cycle
                ));
            }
            let key = format!("{} / {} / seed {}", line.scenario, line.mechanism, line.seed);
            let entry = runs.entry(key.clone()).or_insert((0, w.start_cycle, 0));
            if w.window != entry.0 {
                die(&format!(
                    "{path}:{lineno}: {key}: window index {} (expected {})",
                    w.window, entry.0
                ));
            }
            if w.start_cycle != entry.1 {
                die(&format!(
                    "{path}:{lineno}: {key}: window {} starts at {} but previous ended at {}",
                    w.window, w.start_cycle, entry.1
                ));
            }
            *entry = (w.window + 1, w.end_cycle, entry.2 + 1);
        }
    }
    if lines == 0 {
        die("no timeline rows found");
    }
    for (key, (_, _, rows)) in &runs {
        println!("ok: {key}: {rows} contiguous windows");
    }
    println!("{} rows across {} runs: all contiguous", lines, runs.len());
}
