//! Sweep harness CLI: load a [`SweepSpec`] grid from JSON, expand its
//! axes, run every cell × seed (rayon over the whole grid), and emit a
//! long-format result table for replotting the paper's figures.
//!
//! ```text
//! cargo run --release -p df-bench --bin sweep -- scenarios/sweep_unfairness_grid.json
//! cargo run --release -p df-bench --bin sweep -- --quick --csv /tmp/grid.csv \
//!     scenarios/sweep_unfairness_grid.json
//! ```
//!
//! Flags:
//!
//! * `--seeds N` — seeds per cell (default 3),
//! * `--quick` — single seed and a reduced cycle budget (CI smoke),
//! * `--out PATH` — write the table as JSON,
//! * `--csv PATH` — write the table as CSV,
//! * `--timeline PATH` — additionally re-run the first cell under the
//!   first seed with windowed telemetry on, streaming one JSONL row per
//!   window into `PATH` (see `docs/OBSERVABILITY.md`),
//! * `--shards N` — run every cell on the group-sharded engine with `N`
//!   shards (clamped to the group count). The table is bit-identical to
//!   the serial engine's for any `N` (see `docs/DETERMINISM.md`).
//!
//! The table is deterministic: the same sweep file and seed set produce a
//! bit-identical JSON/CSV artifact regardless of how cells were scheduled
//! across threads (CI runs the bundled grid twice and compares md5s).
//! A compact per-cell summary grid is printed to stdout.

use df_bench::{create_timeline_file, fail, timeline_sink, write_json};
use dragonfly_core::prelude::*;
use std::path::PathBuf;

struct Args {
    sweep: String,
    seeds: Vec<u64>,
    quick: bool,
    out: Option<PathBuf>,
    csv: Option<PathBuf>,
    timeline: Option<PathBuf>,
    shards: Option<u32>,
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: sweep [--seeds N] [--quick] [--out PATH] [--csv PATH] [--timeline PATH] \
         [--shards N] SWEEP.json"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        sweep: String::new(),
        seeds: Vec::new(),
        quick: false,
        out: None,
        csv: None,
        timeline: None,
        shards: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--seeds" => {
                let n: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--seeds needs a positive number"));
                args.seeds = (0..n).map(|i| DEFAULT_SEEDS[0] + i * 31).collect();
            }
            "--out" => {
                args.out =
                    Some(PathBuf::from(it.next().unwrap_or_else(|| die("--out needs a path"))));
            }
            "--csv" => {
                args.csv =
                    Some(PathBuf::from(it.next().unwrap_or_else(|| die("--csv needs a path"))));
            }
            "--timeline" => {
                args.timeline = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| die("--timeline needs a path")),
                ));
            }
            "--shards" => {
                args.shards = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| die("--shards needs a positive number")),
                );
            }
            other if !other.starts_with('-') && args.sweep.is_empty() => {
                args.sweep = other.to_string();
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    if args.sweep.is_empty() {
        die("missing sweep file");
    }
    if args.seeds.is_empty() {
        args.seeds = if args.quick { vec![DEFAULT_SEEDS[0]] } else { DEFAULT_SEEDS.to_vec() };
    }
    args
}

fn main() {
    let args = parse_args();
    let mut spec = SweepSpec::load(&args.sweep).unwrap_or_else(|e| die(&e));
    if args.quick {
        spec.base.warmup_cycles = spec.base.warmup_cycles.min(1_000);
        spec.base.measure_cycles = spec.base.measure_cycles.min(2_000);
    }
    if args.shards.is_some() {
        // Cells inherit the base spec, so one assignment shards the grid.
        spec.base.shards = args.shards;
    }
    let cells = spec.expand().unwrap_or_else(|e| die(&e));
    eprintln!(
        "sweep `{}`: {} nodes, {} jobs, {} cells, {} seeds, {}+{} cycles per cell",
        spec.name,
        spec.base.params.nodes(),
        spec.base.jobs.len(),
        cells.len(),
        args.seeds.len(),
        spec.base.warmup_cycles,
        spec.base.measure_cycles,
    );

    if let Some(path) = &args.timeline {
        // Windowed-telemetry pass on the first cell × first seed: the
        // sweep table itself stays telemetry-free (its artifacts are
        // digest-gated), the timeline is a side stream.
        let cell = &cells[0];
        let file = create_timeline_file(path).unwrap_or_else(|e| fail(&e));
        let sink = timeline_sink(
            file,
            format!("{}:cell{}", spec.name, cell.index),
            cell.mechanism.label().to_string(),
            args.seeds[0],
        );
        let run = run_scenario_timeline(&cell.scenario, cell.mechanism, args.seeds[0], sink)
            .unwrap_or_else(|e| fail(&e.to_string()));
        eprintln!(
            "timeline: {} windows of cell {} under {} written to {}",
            run.timeline.as_ref().map_or(0, Vec::len),
            cell.index,
            cell.mechanism.label(),
            path.display()
        );
    }

    let table = run_sweep(&spec, &args.seeds).unwrap_or_else(|e| fail(&e.to_string()));

    // Compact per-cell grid: seed-averaged network throughput/latency and
    // the worst per-job injection CoV (the unfairness signal).
    println!(
        "{:>5} {:>12} {:>6} {:>14} {:>8} {:>10} {:>10} {:>10}",
        "cell", "mechanism", "load", "placement", "pattern", "accepted", "latency", "job CoV"
    );
    for cell in &cells {
        let net: Vec<&SweepRow> = table
            .rows
            .iter()
            .filter(|r| r.cell == cell.index && r.scope == "network")
            .collect();
        let jobs: Vec<&SweepRow> = table
            .rows
            .iter()
            .filter(|r| r.cell == cell.index && r.scope != "network")
            .collect();
        let n = net.len() as f64;
        let thr = net.iter().map(|r| r.throughput).sum::<f64>() / n;
        let lat = net.iter().map(|r| r.avg_latency).sum::<f64>() / n;
        let worst_cov = jobs.iter().map(|r| r.cov).fold(0.0f64, f64::max);
        println!(
            "{:>5} {:>12} {:>6.3} {:>14} {:>8} {:>10.4} {:>10.1} {:>10.4}",
            cell.index,
            cell.mechanism.label(),
            net[0].load,
            cell.placement.as_deref().unwrap_or("base"),
            cell.pattern.as_deref().unwrap_or("base"),
            thr,
            lat,
            worst_cov,
        );
    }
    eprintln!("{} rows (cell x seed x scope)", table.rows.len());

    if let Some(out) = &args.out {
        write_json(out, &table).unwrap_or_else(|e| fail(&e));
    }
    if let Some(csv) = &args.csv {
        if let Some(dir) = csv.parent() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| fail(&format!("create {}: {e}", dir.display())));
        }
        std::fs::write(csv, table.to_csv())
            .unwrap_or_else(|e| fail(&format!("write {}: {e}", csv.display())));
        eprintln!("wrote {}", csv.display());
    }
}
