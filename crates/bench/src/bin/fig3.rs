//! Figure 3: breakdown of the latency components for in-transit adaptive
//! routing with the MM global misrouting policy under ADVc traffic.
//!
//! ```text
//! cargo run --release -p df-bench --bin fig3
//! ```

use df_bench::{fail, write_json, CommonArgs};
use dragonfly_core::prelude::*;

fn main() {
    let mut args = CommonArgs::parse();
    // Figure 3 is defined for ADVc; the pattern flag is ignored here.
    args.pattern = PatternSpec::AdvConsecutive { spread: None };

    // The paper's grid starts at 0.01 and then steps by 0.05.
    let mut loads = vec![0.01];
    loads.extend(args.load_grid());

    println!(
        "Figure 3 — latency breakdown, In-Trns-MM, ADVc, {} ({} scale)",
        args.priority_label(),
        if args.paper_scale { "paper" } else { "reduced" },
    );

    let base = args.base_config(MechanismSpec::InTransitMm, 0.0);
    let sweep = sweep_loads(&base, &loads, &args.seeds);

    println!(
        "\n{:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "load", "base", "misroute", "local_q", "global_q", "inject_q", "total"
    );
    for pt in &sweep {
        let [base_c, mis, lq, gq, inj] = pt.components;
        println!(
            "{:>6.2} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            pt.load, base_c, mis, lq, gq, inj, pt.avg_latency
        );
    }

    if let Some(out) = &args.out {
        write_json(out, &sweep).unwrap_or_else(|e| fail(&e));
    }
}
