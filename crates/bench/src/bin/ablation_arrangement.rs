//! Extension B: global-link arrangement ablation. ADVc's total
//! minimal/non-minimal overlap at a single bottleneck router is a
//! property of the palmtree arrangement; this harness measures how the
//! consecutive and random arrangements change the fairness picture under
//! the same traffic.
//!
//! ```text
//! cargo run --release -p df-bench --bin ablation_arrangement
//! ```

use df_bench::{fail, write_json, CommonArgs};
use dragonfly_core::prelude::*;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct ArrangementRow {
    arrangement: String,
    mechanism: String,
    total_overlap_groups: u32,
    min_inj: f64,
    max_min: f64,
    cov: f64,
    throughput: f64,
}

fn main() {
    let mut args = CommonArgs::parse();
    args.pattern = PatternSpec::AdvConsecutive { spread: None };
    let load = 0.4;

    let arrangements = [
        (Arrangement::Palmtree, "palmtree"),
        (Arrangement::Consecutive, "consecutive"),
        (Arrangement::Random { seed: 12345 }, "random"),
    ];
    let mechanisms = [MechanismSpec::InTransitMm, MechanismSpec::ObliviousRrg];

    println!(
        "Ablation — arrangement vs ADVc fairness @ {load}, {} ({} scale)",
        args.priority_label(),
        if args.paper_scale { "paper" } else { "reduced" },
    );

    let cells: Vec<((Arrangement, &str), MechanismSpec)> = arrangements
        .iter()
        .flat_map(|&arr| mechanisms.iter().map(move |&m| (arr, m)))
        .collect();
    let rows: Vec<ArrangementRow> = cells
        .par_iter()
        .map(|&((arr, arr_label), m)| {
            let mut cfg = args.base_config(m, load);
            cfg.arrangement = arr;
            // How many groups route all h consecutive destinations through
            // one router under this arrangement?
            let topo = Topology::new(cfg.params, arr);
            let overlap = (0..cfg.params.groups())
                .filter(|&g| topo.advc_overlap_is_total(GroupId(g)))
                .count() as u32;
            let avg = run_averaged(&cfg, &args.seeds);
            eprintln!("done: {arr_label} / {}", m.label());
            ArrangementRow {
                arrangement: arr_label.to_string(),
                mechanism: m.label().to_string(),
                total_overlap_groups: overlap,
                min_inj: avg.fairness.min,
                max_min: avg.fairness.max_min_ratio,
                cov: avg.fairness.cov,
                throughput: avg.throughput,
            }
        })
        .collect();

    println!(
        "\n{:>12} {:>12} {:>9} {:>10} {:>10} {:>8} {:>10}",
        "arrangement", "mechanism", "overlap", "Min inj", "Max/Min", "CoV", "thr"
    );
    for r in &rows {
        println!(
            "{:>12} {:>12} {:>9} {:>10.2} {:>10.3} {:>8.4} {:>10.4}",
            r.arrangement, r.mechanism, r.total_overlap_groups, r.min_inj, r.max_min, r.cov,
            r.throughput
        );
    }

    if let Some(out) = &args.out {
        write_json(out, &rows).unwrap_or_else(|e| fail(&e));
    }
}
