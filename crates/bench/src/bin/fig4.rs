//! Figure 4 (and Figure 6 with `--priority none`): number of injected
//! packets per router in a group of the Dragonfly network under ADVc
//! traffic at 0.4 phits/(node·cycle).
//!
//! ```text
//! cargo run --release -p df-bench --bin fig4 -- --priority transit
//! cargo run --release -p df-bench --bin fig4 -- --priority none
//! ```

use df_bench::{fail, write_json, CommonArgs};
use dragonfly_core::prelude::*;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Fig4Row {
    mechanism: String,
    /// Injections of every router of group 0 (R0..R{a-1}).
    group0: Vec<f64>,
    /// Injections averaged per within-group router index over all groups.
    per_index_mean: Vec<f64>,
}

fn main() {
    let mut args = CommonArgs::parse();
    args.pattern = PatternSpec::AdvConsecutive { spread: None };
    let load = 0.4;

    println!(
        "Figure 4/6 — injected packets per router (group 0), ADVc @ {load}, {} ({} scale)",
        args.priority_label(),
        if args.paper_scale { "paper" } else { "reduced" },
    );

    let rows: Vec<Fig4Row> = MechanismSpec::PAPER_SET
        .par_iter()
        .map(|&m| {
            let cfg = args.base_config(m, load);
            let avg = run_averaged(&cfg, &args.seeds);
            let a = avg.injected_per_router.len() / cfg.params.groups() as usize;
            let group0 = avg.injected_per_router[..a].to_vec();
            let groups = avg.injected_per_router.len() / a;
            let mut per_index = vec![0.0; a];
            for g in 0..groups {
                for (i, acc) in per_index.iter_mut().enumerate() {
                    *acc += avg.injected_per_router[g * a + i];
                }
            }
            per_index.iter_mut().for_each(|v| *v /= groups as f64);
            eprintln!("done: {}", m.label());
            Fig4Row { mechanism: m.label().to_string(), group0, per_index_mean: per_index }
        })
        .collect();

    let a = rows[0].group0.len();
    print!("\n{:>12}", "mechanism");
    for i in 0..a {
        print!("{:>9}", format!("R{i}"));
    }
    println!("   (group 0; bottleneck is R{} under palmtree)", a - 1);
    for row in &rows {
        print!("{:>12}", row.mechanism);
        for v in &row.group0 {
            print!("{v:>9.0}");
        }
        println!();
    }

    print!("\n{:>12}", "mechanism");
    for i in 0..a {
        print!("{:>9}", format!("R{i}"));
    }
    println!("   (mean over all groups, per router index)");
    for row in &rows {
        print!("{:>12}", row.mechanism);
        for v in &row.per_index_mean {
            print!("{v:>9.1}");
        }
        println!();
    }

    if let Some(out) = &args.out {
        write_json(out, &rows).unwrap_or_else(|e| fail(&e));
    }
}
