//! Figure 2 (and Figure 5 with `--priority none`): average packet latency
//! and accepted load vs offered load for every routing mechanism, under
//! UN / ADV+1 / ADVc traffic.
//!
//! ```text
//! cargo run --release -p df-bench --bin fig2 -- --pattern advc --priority transit
//! cargo run --release -p df-bench --bin fig2 -- --pattern un --priority none --quick
//! ```

use df_bench::{fail, print_sweep, write_json, CommonArgs};
use dragonfly_core::prelude::*;

fn main() {
    let args = CommonArgs::parse();
    let loads = args.load_grid();

    // The paper plots MIN as the reference under UN and the oblivious
    // non-minimal mechanisms under adversarial patterns; we always include
    // MIN plus the seven-mechanism set.
    let mechanisms: Vec<MechanismSpec> = std::iter::once(MechanismSpec::Min)
        .chain(MechanismSpec::PAPER_SET)
        .collect();

    println!(
        "Figure 2/5 — {} traffic, {} ({} scale, {} seeds)",
        args.pattern.label(),
        args.priority_label(),
        if args.paper_scale { "paper" } else { "reduced" },
        args.seeds.len(),
    );

    let mut labels = Vec::new();
    let mut sweeps = Vec::new();
    for m in &mechanisms {
        let base = args.base_config(*m, 0.0);
        let sweep = sweep_loads(&base, &loads, &args.seeds);
        eprintln!("done: {}", m.label());
        labels.push(m.label());
        sweeps.push(sweep);
    }

    print_sweep(&labels, &sweeps);

    if let Some(out) = &args.out {
        write_json(out, &sweeps).unwrap_or_else(|e| fail(&e));
    }
}
