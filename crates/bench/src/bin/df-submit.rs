//! Client for the scenario job service: submit a scenario or sweep to a
//! running `df-serve`, stream its structured events to stderr, and map
//! the job's terminal event onto the exit code.
//!
//! ```text
//! cargo run --release -p df-bench --bin df-submit -- --socket /tmp/df.sock \
//!     --quick --out /tmp/result.json scenarios/interference_advc_vs_uniform.json
//! cargo run --release -p df-bench --bin df-submit -- --socket /tmp/df.sock --shutdown
//! ```
//!
//! Flags:
//!
//! * `--socket PATH` — the server's socket (default `df-service.sock`),
//! * `--sweep` — the spec file is a [`SweepSpec`] grid, not a scenario,
//! * `--seeds N` — seeds to run (default: the paper's three-seed protocol),
//! * `--quick` — single seed and a reduced cycle budget (CI smoke),
//! * `--deadline-ms MS` — per-attempt wall-clock deadline,
//! * `--fault JSON` — a [`df_service::FaultSpec`] object (tests/CI only),
//! * `--out PATH` — write the result document (completed or cached) here
//!   instead of stdout,
//! * `--rows PATH` — append each `sweep_rows` event's rows here as JSON
//!   lines while the sweep runs (the incremental-row stream),
//! * `--no-wait` — submit and exit 0 without waiting for a terminal event,
//! * `--ping` / `--shutdown` / `--cancel JOB` — control requests.
//!
//! Against a `df-serve --state-dir` server, a resubmission after a crash
//! also streams `recovered` (units reloaded from the job's checkpoint —
//! these do *not* re-emit `sweep_rows`) before recomputing only the
//! unfinished cells.
//!
//! Exit codes:
//!
//! | code | meaning |
//! |------|---------|
//! | 0 | `completed`, `cached`, `pong`, or `shutting_down` |
//! | 2 | usage error or `protocol_error` |
//! | 3 | `rejected_overload` (admission queue full) |
//! | 4 | `timed_out` (deadline exceeded) |
//! | 5 | `cancelled` |
//! | 6 | `failed` (retries exhausted) or `rejected` (bad spec) |
//! | 1 | I/O failure (connect, read, write) |

use df_bench::fail;
use df_service::{FaultSpec, JobEvent, Request, SubmitOptions};
use df_workload::{ScenarioSpec, SweepSpec};
use dragonfly_core::DEFAULT_SEEDS;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

enum Action {
    Submit { spec_file: String, sweep: bool },
    Ping,
    Shutdown,
    Cancel(u64),
}

struct Args {
    socket: PathBuf,
    action: Action,
    seeds: Option<Vec<u64>>,
    quick: bool,
    deadline_ms: Option<u64>,
    fault: Option<FaultSpec>,
    out: Option<PathBuf>,
    rows: Option<PathBuf>,
    no_wait: bool,
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: df-submit [--socket PATH] [--sweep] [--seeds N] [--quick] \
         [--deadline-ms MS] [--fault JSON] [--out PATH] [--rows PATH] [--no-wait] SPEC.json\n\
         \x20      df-submit [--socket PATH] --ping | --shutdown | --cancel JOB\n\
         exit codes: 0 completed/cached/pong/shutting-down · 3 rejected-overload · \
         4 timed-out · 5 cancelled · 6 failed/rejected · 2 usage/protocol · 1 I/O"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        socket: PathBuf::from("df-service.sock"),
        action: Action::Submit { spec_file: String::new(), sweep: false },
        seeds: None,
        quick: false,
        deadline_ms: None,
        fault: None,
        out: None,
        rows: None,
        no_wait: false,
    };
    let mut sweep = false;
    let mut spec_file = String::new();
    let mut control: Option<Action> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--socket" => {
                args.socket =
                    PathBuf::from(it.next().unwrap_or_else(|| die("--socket needs a path")));
            }
            "--sweep" => sweep = true,
            "--quick" => args.quick = true,
            "--seeds" => {
                let n: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--seeds needs a positive number"));
                args.seeds = Some((0..n).map(|i| DEFAULT_SEEDS[0] + i * 31).collect());
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--deadline-ms needs a number")),
                );
            }
            "--fault" => {
                let json = it.next().unwrap_or_else(|| die("--fault needs a JSON object"));
                args.fault = Some(
                    serde_json::from_str(&json)
                        .unwrap_or_else(|e| die(&format!("bad --fault JSON: {e}"))),
                );
            }
            "--out" => {
                args.out =
                    Some(PathBuf::from(it.next().unwrap_or_else(|| die("--out needs a path"))));
            }
            "--rows" => {
                args.rows =
                    Some(PathBuf::from(it.next().unwrap_or_else(|| die("--rows needs a path"))));
            }
            "--no-wait" => args.no_wait = true,
            "--ping" => control = Some(Action::Ping),
            "--shutdown" => control = Some(Action::Shutdown),
            "--cancel" => {
                let job = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--cancel needs a job id"));
                control = Some(Action::Cancel(job));
            }
            other if !other.starts_with('-') && spec_file.is_empty() => {
                spec_file = other.to_string();
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    args.action = match control {
        Some(action) => {
            if !spec_file.is_empty() {
                die("control requests take no spec file");
            }
            action
        }
        None => {
            if spec_file.is_empty() {
                die("missing spec file");
            }
            Action::Submit { spec_file, sweep }
        }
    };
    if args.quick && args.seeds.is_none() {
        args.seeds = Some(vec![DEFAULT_SEEDS[0]]);
    }
    args
}

/// Build the submit request, applying `--quick`'s cycle trim (the same
/// budgets as the `scenario` / `sweep` CLIs, so CI smoke jobs stay fast).
fn submit_request(spec_file: &str, sweep: bool, args: &Args) -> Request {
    let options = SubmitOptions {
        seeds: args.seeds.clone(),
        deadline_ms: args.deadline_ms,
        fault: args.fault,
    };
    if sweep {
        let mut spec = SweepSpec::load(spec_file).unwrap_or_else(|e| die(&e));
        if args.quick {
            spec.base.warmup_cycles = spec.base.warmup_cycles.min(1_000);
            spec.base.measure_cycles = spec.base.measure_cycles.min(2_000);
        }
        Request::SubmitSweep { spec, options }
    } else {
        let mut spec = ScenarioSpec::load(spec_file).unwrap_or_else(|e| die(&e));
        if args.quick {
            spec.warmup_cycles = spec.warmup_cycles.min(2_000);
            spec.measure_cycles = spec.measure_cycles.min(4_000);
        }
        Request::SubmitScenario { spec, options }
    }
}

/// Append one `sweep_rows` event's rows to the `--rows` file as JSON
/// lines, one row per line, as they stream in.
fn append_rows(path: &PathBuf, rows: &[dragonfly_core::SweepRow]) {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| fail(&format!("create {}: {e}", dir.display())));
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .unwrap_or_else(|e| fail(&format!("open {}: {e}", path.display())));
    for row in rows {
        let line = serde_json::to_string(row)
            .unwrap_or_else(|e| fail(&format!("serialize row: {e}")));
        writeln!(file, "{line}").unwrap_or_else(|e| fail(&format!("write {}: {e}", path.display())));
    }
}

/// Deliver a result document to `--out` or stdout.
fn deliver(result: &str, out: &Option<PathBuf>) {
    match out {
        Some(path) => {
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| fail(&format!("create {}: {e}", dir.display())));
            }
            std::fs::write(path, result)
                .unwrap_or_else(|e| fail(&format!("write {}: {e}", path.display())));
            eprintln!("wrote {}", path.display());
        }
        None => println!("{result}"),
    }
}

fn main() {
    let args = parse_args();
    let request = match &args.action {
        Action::Submit { spec_file, sweep } => submit_request(spec_file, *sweep, &args),
        Action::Ping => Request::Ping,
        Action::Shutdown => Request::Shutdown,
        Action::Cancel(job) => Request::Cancel { job: *job },
    };

    let mut stream = UnixStream::connect(&args.socket)
        .unwrap_or_else(|e| fail(&format!("connect {}: {e}", args.socket.display())));
    let reader = BufReader::new(
        stream.try_clone().unwrap_or_else(|e| fail(&format!("clone socket: {e}"))),
    );
    let line = serde_json::to_string(&request)
        .unwrap_or_else(|e| fail(&format!("serialize request: {e}")));
    writeln!(stream, "{line}").unwrap_or_else(|e| fail(&format!("send request: {e}")));
    if let Action::Cancel(_) = args.action {
        // Cancellation has no success response; a trailing ping makes
        // the round trip observable (a bad id answers protocol_error
        // first).
        let ping =
            serde_json::to_string(&Request::Ping).unwrap_or_else(|e| fail(&e.to_string()));
        writeln!(stream, "{ping}").unwrap_or_else(|e| fail(&format!("send request: {e}")));
    }
    if args.no_wait {
        // Fire-and-forget: the line is buffered in the socket, the
        // server runs the job (and caches its result) regardless.
        return;
    }

    for line in reader.lines() {
        let line = line.unwrap_or_else(|e| fail(&format!("read event: {e}")));
        if line.trim().is_empty() {
            continue;
        }
        let event: JobEvent = serde_json::from_str(&line)
            .unwrap_or_else(|e| fail(&format!("bad event line: {e}")));
        match &event {
            JobEvent::Accepted { job, queue_depth, .. } => {
                eprintln!("job {job}: accepted (queue depth {queue_depth})")
            }
            JobEvent::CacheCorrupt { job, .. } => {
                eprintln!("job {job}: cache entry failed its digest check; recomputing")
            }
            JobEvent::Started { job, attempt } => {
                eprintln!("job {job}: started (attempt {attempt})")
            }
            JobEvent::Progress { job, done_cycles, total_cycles } => {
                eprintln!("job {job}: {done_cycles}/{total_cycles} cycles")
            }
            JobEvent::Retried { job, attempt, backoff_ms, error } => {
                eprintln!("job {job}: attempt {attempt} died ({error}); retry in {backoff_ms} ms")
            }
            JobEvent::Recovered { job, cells_done, cells_total, .. } => {
                eprintln!(
                    "job {job}: recovered {cells_done}/{cells_total} unit(s) from checkpoint"
                )
            }
            JobEvent::SweepRows { job, cell, seed, rows } => {
                eprintln!("job {job}: cell {cell} seed {seed}: {} row(s)", rows.len());
                if let Some(path) = &args.rows {
                    append_rows(path, rows);
                }
            }
            JobEvent::Cached { job, digest, result, .. } => {
                eprintln!("job {job}: cached (digest {digest})");
                deliver(result, &args.out);
                std::process::exit(0);
            }
            JobEvent::Completed { job, digest, result, .. } => {
                eprintln!("job {job}: completed (digest {digest})");
                deliver(result, &args.out);
                std::process::exit(0);
            }
            JobEvent::RejectedOverload { job, queued, limit } => {
                eprintln!("job {job}: rejected, queue full ({queued}/{limit})");
                std::process::exit(3);
            }
            JobEvent::TimedOut { job, at_cycle } => {
                eprintln!("job {job}: deadline exceeded at cycle {at_cycle}");
                std::process::exit(4);
            }
            JobEvent::Cancelled { job, at_cycle } => {
                eprintln!("job {job}: cancelled at cycle {at_cycle}");
                std::process::exit(5);
            }
            JobEvent::Failed { job, attempts, error } => {
                eprintln!("job {job}: failed after {attempts} attempt(s): {error}");
                std::process::exit(6);
            }
            JobEvent::Rejected { job, error } => {
                eprintln!("job {job}: rejected: {error}");
                std::process::exit(6);
            }
            JobEvent::Pong => {
                eprintln!("pong");
                std::process::exit(0);
            }
            JobEvent::ShuttingDown { drained } => {
                eprintln!("server shutting down ({drained} jobs drained)");
                std::process::exit(0);
            }
            JobEvent::ProtocolError { error } => {
                eprintln!("protocol error: {error}");
                std::process::exit(2);
            }
        }
    }
    fail("connection closed before a terminal event");
}
