//! Perf-trajectory regression gate: merge freshly emitted criterion
//! summaries (`BENCH_<name>.json`, written when `BENCH_JSON_DIR` is set)
//! across one or more runs, diff them against the previous artifacts in
//! `bench-results/`, flag regressions, and optionally promote the merged
//! result as the new artifact.
//!
//! ```text
//! bench_trend [--threshold PCT] [--noise-floor-ns NS] [--allow-regress] \
//!             [--baseline DIR] [--promote DIR] FRESH_DIR...
//! ```
//!
//! * `FRESH_DIR...` — one directory per recorded run; several runs of
//!   the same bench target are merged per benchmark id (median of the
//!   run medians, min of mins, max of maxs). Loaded full-network cycles
//!   drift with network fill, so single runs are too noisy to gate on —
//!   `ci.sh` records four `router_step` runs and diffs the median.
//! * `--baseline DIR` — previous artifacts (default `bench-results`),
//! * `--threshold PCT` — regression tolerance on the merged median, in
//!   percent (default 10),
//! * `--noise-floor-ns NS` — ids whose old or new merged median is
//!   below this many nanoseconds are reported but never gate (default
//!   1000): on sub-microsecond bodies — the idle-cycle benches — a few
//!   ns of scheduler jitter exceeds any percentage threshold, so
//!   same-code runs would flap,
//! * `--allow-regress` — print the delta table and warn, but always
//!   exit zero (the CI escape hatch; local `ci.sh` gates by default),
//! * `--promote DIR` — on a passing (or `--allow-regress`) exit, write
//!   the merged `BENCH_<name>.json` files into `DIR`, making them the
//!   baseline for the next invocation.
//!
//! * `--history FILE` — append one JSON line per merged id to `FILE`
//!   (commit, bench, id, merged median, run count, samples), building a
//!   per-commit perf history that survives baseline promotion,
//! * `--drift K` — after appending, scan the last `K` history entries of
//!   each id for sustained same-direction drift: every step upward and
//!   the cumulative change beyond the threshold. Catches the slow leak
//!   that per-commit gating misses because each step stays under the
//!   threshold. Gates like a regression unless `--allow-regress`.
//!
//! Ids without a baseline (new benchmarks, or a first run) are reported
//! as `new` and never gate. Exit status is 1 iff any id regressed by
//! more than the threshold (or drifted, with `--drift`) and
//! `--allow-regress` was not given.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One benchmark record inside a `BENCH_<name>.json` summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchRecord {
    id: String,
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: u64,
    batch: u64,
    /// How many recorded runs the medians were merged over. `None` in
    /// raw criterion summaries and pre-existing baselines (backward
    /// compatible); set by the merge step.
    runs: Option<u64>,
}

/// One line of the `--history` JSONL file: a merged median pinned to the
/// commit it was measured at.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct HistoryLine {
    commit: String,
    bench: String,
    id: String,
    median_ns: f64,
    runs: u64,
    samples: u64,
}

/// A whole `BENCH_<name>.json` file.
#[derive(Debug, Serialize, Deserialize)]
struct BenchFile {
    bench: String,
    unit: String,
    results: Vec<BenchRecord>,
}

struct Args {
    fresh: Vec<PathBuf>,
    baseline: PathBuf,
    promote: Option<PathBuf>,
    threshold_pct: f64,
    noise_floor_ns: f64,
    allow_regress: bool,
    history: Option<PathBuf>,
    drift: Option<usize>,
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: bench_trend [--threshold PCT] [--noise-floor-ns NS] [--allow-regress] \
         [--baseline DIR] [--promote DIR] [--history FILE] [--drift K] FRESH_DIR..."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut fresh: Vec<PathBuf> = Vec::new();
    let mut baseline = PathBuf::from("bench-results");
    let mut promote = None;
    let mut threshold_pct = 10.0;
    let mut noise_floor_ns = 1_000.0;
    let mut allow_regress = false;
    let mut history = None;
    let mut drift = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t: &f64| t > 0.0)
                    .unwrap_or_else(|| die("--threshold needs a positive percentage"));
            }
            "--noise-floor-ns" => {
                noise_floor_ns = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t: &f64| t >= 0.0)
                    .unwrap_or_else(|| die("--noise-floor-ns needs a non-negative number"));
            }
            "--allow-regress" => allow_regress = true,
            "--baseline" => {
                baseline =
                    PathBuf::from(it.next().unwrap_or_else(|| die("--baseline needs a dir")));
            }
            "--promote" => {
                promote = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| die("--promote needs a dir")),
                ));
            }
            "--history" => {
                history = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| die("--history needs a file")),
                ));
            }
            "--drift" => {
                drift = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&k: &usize| k >= 2)
                        .unwrap_or_else(|| die("--drift needs a window of at least 2")),
                );
            }
            other if !other.starts_with('-') => fresh.push(PathBuf::from(other)),
            other => die(&format!("unknown flag {other}")),
        }
    }
    if fresh.is_empty() {
        die("expected at least one FRESH_DIR");
    }
    if drift.is_some() && history.is_none() {
        die("--drift needs --history (the drift window is read from the history file)");
    }
    Args { fresh, baseline, promote, threshold_pct, noise_floor_ns, allow_regress, history, drift }
}

/// Load every `BENCH_*.json` in `dir`, sorted by file name for stable
/// output. A missing or empty directory yields an empty list.
fn load_dir(dir: &Path) -> Vec<BenchFile> {
    let Ok(entries) = std::fs::read_dir(dir) else { return Vec::new() };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    paths
        .iter()
        .filter_map(|p| {
            let text = std::fs::read_to_string(p).ok()?;
            match serde_json::from_str::<BenchFile>(&text) {
                Ok(f) => Some(f),
                Err(e) => {
                    eprintln!("bench_trend: skipping unparsable {}: {e}", p.display());
                    None
                }
            }
        })
        .collect()
}

/// Merge several runs of the same bench target: per id, the median of
/// the run medians (the regression signal), the min of mins and max of
/// maxs (the observed spread), and the total sample count. Id order
/// follows the first run that contains each id.
fn merge_runs(runs: Vec<BenchFile>) -> BenchFile {
    let bench = runs[0].bench.clone();
    let unit = runs[0].unit.clone();
    let mut ids: Vec<String> = Vec::new();
    for run in &runs {
        for rec in &run.results {
            if !ids.contains(&rec.id) {
                ids.push(rec.id.clone());
            }
        }
    }
    let results = ids
        .iter()
        .map(|id| {
            let recs: Vec<&BenchRecord> = runs
                .iter()
                .flat_map(|r| r.results.iter().filter(|rec| &rec.id == id))
                .collect();
            let mut medians: Vec<f64> = recs.iter().map(|r| r.median_ns).collect();
            medians.sort_by(|a, b| a.total_cmp(b));
            let median_ns = if medians.len() % 2 == 1 {
                medians[medians.len() / 2]
            } else {
                (medians[medians.len() / 2 - 1] + medians[medians.len() / 2]) / 2.0
            };
            BenchRecord {
                id: id.clone(),
                median_ns,
                min_ns: recs.iter().map(|r| r.min_ns).fold(f64::INFINITY, f64::min),
                max_ns: recs.iter().map(|r| r.max_ns).fold(0.0, f64::max),
                samples: recs.iter().map(|r| r.samples).sum(),
                batch: recs[0].batch,
                runs: Some(recs.len() as u64),
            }
        })
        .collect();
    BenchFile { bench, unit, results }
}

/// Serialize a merged file with the same field names criterion emits
/// (via serde, so the reader and writer can never drift apart).
fn render(file: &BenchFile) -> String {
    serde_json::to_string_pretty(file).expect("bench summary serializes")
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.1} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The commit the history line is pinned to; `unknown` outside a git
/// checkout (e.g. an exported source tarball).
fn current_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Append one history line per merged id. The file is JSONL so CI can
/// archive and re-append across commits without a read-modify-write.
fn append_history(path: &Path, merged: &[BenchFile]) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", dir.display())));
        }
    }
    let commit = current_commit();
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .unwrap_or_else(|e| die(&format!("cannot open history {}: {e}", path.display())));
    let mut lines = 0u64;
    for bf in merged {
        for rec in &bf.results {
            let line = HistoryLine {
                commit: commit.clone(),
                bench: bf.bench.clone(),
                id: rec.id.clone(),
                median_ns: rec.median_ns,
                runs: rec.runs.unwrap_or(1),
                samples: rec.samples,
            };
            let text = serde_json::to_string(&line).expect("history line serializes");
            writeln!(file, "{text}")
                .unwrap_or_else(|e| die(&format!("cannot append history: {e}")));
            lines += 1;
        }
    }
    println!("bench_trend: appended {lines} history line(s) at {commit} to {}", path.display());
}

/// Scan the last `k` history entries of every id for sustained
/// same-direction upward drift: every commit-to-commit step non-negative,
/// at least one strictly positive, cumulative change beyond
/// `threshold_pct`, and the whole window above the noise floor. Returns
/// one description per drifting id.
fn check_drift(path: &Path, k: usize, threshold_pct: f64, noise_floor_ns: f64) -> Vec<String> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read history {}: {e}", path.display())));
    // (bench, id) -> (commit, median) points in append order (== commit
    // order).
    type Series = Vec<((String, String), Vec<(String, f64)>)>;
    let mut series: Series = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        if raw.trim().is_empty() {
            continue;
        }
        let line: HistoryLine = serde_json::from_str(raw).unwrap_or_else(|e| {
            die(&format!("history {}:{}: unparsable line: {e}", path.display(), i + 1))
        });
        let key = (line.bench, line.id);
        match series.iter_mut().find(|(k2, _)| *k2 == key) {
            Some((_, points)) => points.push((line.commit, line.median_ns)),
            None => series.push((key, vec![(line.commit, line.median_ns)])),
        }
    }
    let mut drifts = Vec::new();
    for ((_, id), points) in &series {
        if points.len() < k {
            continue;
        }
        let window = &points[points.len() - k..];
        let first = window[0].1;
        let last = window[k - 1].1;
        if first < noise_floor_ns || last < noise_floor_ns {
            continue;
        }
        let monotone = window.windows(2).all(|p| p[1].1 >= p[0].1) && last > first;
        let cum_pct = (last - first) / first * 100.0;
        if monotone && cum_pct > threshold_pct {
            drifts.push(format!(
                "{id}: {} -> {} ({:+.1}% over {k} commits, {} .. {})",
                fmt_ns(first),
                fmt_ns(last),
                cum_pct,
                window[0].0,
                window[k - 1].0,
            ));
        }
    }
    drifts
}

fn main() -> ExitCode {
    let args = parse_args();
    // Group the fresh files by bench target across run directories.
    let mut by_bench: Vec<(String, Vec<BenchFile>)> = Vec::new();
    for dir in &args.fresh {
        for file in load_dir(dir) {
            match by_bench.iter_mut().find(|(name, _)| *name == file.bench) {
                Some((_, runs)) => runs.push(file),
                None => by_bench.push((file.bench.clone(), vec![file])),
            }
        }
    }
    if by_bench.is_empty() {
        die("no BENCH_*.json found in the fresh dirs");
    }
    let merged: Vec<BenchFile> = by_bench
        .into_iter()
        .map(|(name, runs)| {
            let n = runs.len();
            let m = merge_runs(runs);
            if n > 1 {
                println!("bench `{name}`: merged {n} runs (median of run medians)");
            }
            m
        })
        .collect();
    let baseline = load_dir(&args.baseline);

    let mut regressions: Vec<String> = Vec::new();
    let mut low_runs: Vec<String> = Vec::new();
    println!(
        "{:<45} {:>12} {:>12} {:>9} {:>5}  status",
        "benchmark", "old median", "new median", "delta", "runs"
    );
    for file in &merged {
        let old = baseline.iter().find(|b| b.bench == file.bench);
        for rec in &file.results {
            let runs = rec.runs.unwrap_or(1);
            let old_rec = old.and_then(|b| b.results.iter().find(|r| r.id == rec.id));
            match old_rec {
                None => {
                    println!(
                        "{:<45} {:>12} {:>12} {:>9} {:>5}  new",
                        rec.id,
                        "-",
                        fmt_ns(rec.median_ns),
                        "-",
                        runs,
                    );
                }
                Some(prev) => {
                    let delta_pct = (rec.median_ns - prev.median_ns) / prev.median_ns * 100.0;
                    // Sub-floor medians never gate: a handful of ns of
                    // scheduler jitter dwarfs any percentage threshold
                    // down there, so same-code runs would flap.
                    let sub_floor =
                        prev.median_ns < args.noise_floor_ns || rec.median_ns < args.noise_floor_ns;
                    let regressed = delta_pct > args.threshold_pct && !sub_floor;
                    let status = if regressed {
                        "REGRESSED"
                    } else if sub_floor && delta_pct.abs() > args.threshold_pct {
                        "noise (sub-floor)"
                    } else if delta_pct < -args.threshold_pct {
                        "improved"
                    } else {
                        "ok"
                    };
                    println!(
                        "{:<45} {:>12} {:>12} {:>+8.1}% {:>5}  {status}",
                        rec.id,
                        fmt_ns(prev.median_ns),
                        fmt_ns(rec.median_ns),
                        delta_pct,
                        runs,
                    );
                    // A gating id merged from fewer than 4 runs rides on
                    // a noisy median — flag it so ci.sh grows the run
                    // count rather than the threshold.
                    if !sub_floor && runs < 4 {
                        low_runs.push(format!("{} ({} run(s))", rec.id, runs));
                    }
                    if regressed {
                        regressions.push(format!(
                            "{}: {} -> {} ({:+.1}%, spread {}..{})",
                            rec.id,
                            fmt_ns(prev.median_ns),
                            fmt_ns(rec.median_ns),
                            delta_pct,
                            fmt_ns(rec.min_ns),
                            fmt_ns(rec.max_ns),
                        ));
                    }
                }
            }
        }
    }

    if !low_runs.is_empty() {
        eprintln!(
            "bench_trend: warning: gating id(s) merged from fewer than 4 runs: {}",
            low_runs.join(", ")
        );
    }

    if let Some(path) = &args.history {
        append_history(path, &merged);
        if let Some(k) = args.drift {
            let drifts = check_drift(path, k, args.threshold_pct, args.noise_floor_ns);
            for d in &drifts {
                eprintln!("bench_trend: DRIFT {d}");
            }
            regressions.extend(drifts);
        }
    }

    let pass = regressions.is_empty();
    if pass {
        println!("\nbench_trend: no regression beyond {:.0}%", args.threshold_pct);
    } else {
        eprintln!(
            "\nbench_trend: {} benchmark(s) regressed or drifted beyond {:.0}%:",
            regressions.len(),
            args.threshold_pct
        );
        for r in &regressions {
            eprintln!("  {r}");
        }
        if args.allow_regress {
            eprintln!("bench_trend: --allow-regress set, exiting zero");
        }
    }
    if pass || args.allow_regress {
        if let Some(dir) = &args.promote {
            if let Err(e) = std::fs::create_dir_all(dir) {
                die(&format!("cannot create promote dir {}: {e}", dir.display()));
            }
            for file in &merged {
                let path = dir.join(format!("BENCH_{}.json", file.bench));
                match std::fs::write(&path, render(file)) {
                    Ok(()) => println!("bench_trend: promoted {}", path.display()),
                    Err(e) => die(&format!("cannot write {}: {e}", path.display())),
                }
            }
        }
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
