//! Extension A: age-based arbitration — the explicit fairness mechanism
//! the paper names as future work (Abts & Weisser, SC'07). Compares
//! fairness under ADVc @ 0.4 for the in-transit mechanisms across the
//! three arbiter policies: transit priority, plain round-robin, and
//! age-based.
//!
//! ```text
//! cargo run --release -p df-bench --bin ablation_age
//! ```

use df_bench::{fail, write_json, CommonArgs};
use dragonfly_core::prelude::*;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    mechanism: String,
    arbiter: String,
    min_inj: f64,
    max_min: f64,
    cov: f64,
    throughput: f64,
    avg_latency: f64,
}

fn main() {
    let mut args = CommonArgs::parse();
    args.pattern = PatternSpec::AdvConsecutive { spread: None };
    let load = 0.4;

    println!(
        "Ablation — arbiter policy vs fairness, ADVc @ {load} ({} scale, {} seeds)",
        if args.paper_scale { "paper" } else { "reduced" },
        args.seeds.len(),
    );

    let arbiters = [
        (ArbiterPolicy::TransitPriority, "transit-prio"),
        (ArbiterPolicy::RoundRobin, "round-robin"),
        (ArbiterPolicy::AgeBased, "age-based"),
    ];
    let mechanisms = [
        MechanismSpec::InTransitRrg,
        MechanismSpec::InTransitCrg,
        MechanismSpec::InTransitMm,
    ];

    let cells: Vec<(MechanismSpec, ArbiterPolicy, &str)> = mechanisms
        .iter()
        .flat_map(|&m| arbiters.iter().map(move |&(a, l)| (m, a, l)))
        .collect();
    let rows: Vec<AblationRow> = cells
        .par_iter()
        .map(|&(m, arb, arb_label)| {
            let mut local = args.clone();
            local.arbiter = arb;
            let avg = run_averaged(&local.base_config(m, load), &local.seeds);
            eprintln!("done: {} / {}", m.label(), arb_label);
            AblationRow {
                mechanism: m.label().to_string(),
                arbiter: arb_label.to_string(),
                min_inj: avg.fairness.min,
                max_min: avg.fairness.max_min_ratio,
                cov: avg.fairness.cov,
                throughput: avg.throughput,
                avg_latency: avg.avg_latency,
            }
        })
        .collect();

    println!(
        "\n{:>12} {:>13} {:>10} {:>10} {:>8} {:>10} {:>10}",
        "mechanism", "arbiter", "Min inj", "Max/Min", "CoV", "thr", "latency"
    );
    for r in &rows {
        println!(
            "{:>12} {:>13} {:>10.2} {:>10.3} {:>8.4} {:>10.4} {:>10.1}",
            r.mechanism, r.arbiter, r.min_inj, r.max_min, r.cov, r.throughput, r.avg_latency
        );
    }

    if let Some(out) = &args.out {
        write_json(out, &rows).unwrap_or_else(|e| fail(&e));
    }
}
