//! Table II (and Table III with `--priority none`): fairness metrics —
//! minimum injections per router, max/min ratio, and coefficient of
//! variation — under ADVc traffic at 0.4 phits/(node·cycle).
//!
//! ```text
//! cargo run --release -p df-bench --bin table2 -- --priority transit
//! cargo run --release -p df-bench --bin table2 -- --priority none
//! ```

use df_bench::{fail, write_json, CommonArgs};
use dragonfly_core::prelude::*;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct TableRow {
    mechanism: String,
    min_inj: f64,
    max_min: f64,
    cov: f64,
    jain: f64,
    throughput: f64,
}

fn main() {
    let mut args = CommonArgs::parse();
    args.pattern = PatternSpec::AdvConsecutive { spread: None };
    let load = 0.4;

    println!(
        "Table II/III — fairness metrics, ADVc @ {load}, {} ({} scale, {} seeds)",
        args.priority_label(),
        if args.paper_scale { "paper" } else { "reduced" },
        args.seeds.len(),
    );

    let rows: Vec<TableRow> = MechanismSpec::PAPER_SET
        .par_iter()
        .map(|&m| {
            let avg = run_averaged(&args.base_config(m, load), &args.seeds);
            eprintln!("done: {}", m.label());
            TableRow {
                mechanism: m.label().to_string(),
                min_inj: avg.fairness.min,
                max_min: avg.fairness.max_min_ratio,
                cov: avg.fairness.cov,
                jain: avg.fairness.jain,
                throughput: avg.throughput,
            }
        })
        .collect();

    println!(
        "\n{:>12} {:>10} {:>10} {:>8} {:>8} {:>10}",
        "mechanism", "Min inj", "Max/Min", "CoV", "Jain", "thr(phit)"
    );
    for r in &rows {
        println!(
            "{:>12} {:>10.2} {:>10.3} {:>8.4} {:>8.4} {:>10.4}",
            r.mechanism, r.min_inj, r.max_min, r.cov, r.jain, r.throughput
        );
    }

    if let Some(out) = &args.out {
        write_json(out, &rows).unwrap_or_else(|e| fail(&e));
    }
}
