//! Typed identifiers for network entities.
//!
//! All identifiers are thin `u32` newtypes so they stay `Copy` and cheap to
//! store in per-packet state, while preventing the classic "router index
//! used as group index" bug family.

use crate::params::DragonflyParams;
use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Raw index as `usize`, for table lookups.
            #[inline]
            pub fn idx(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }
    };
}

id_type!(
    /// A group of the Dragonfly network, in `0..params.groups()`.
    GroupId
);
id_type!(
    /// A router identified *globally*, in `0..params.routers()`.
    /// `RouterId = group * a + local_index`.
    RouterId
);
id_type!(
    /// A compute node identified globally, in `0..params.nodes()`.
    /// `NodeId = router * p + slot`.
    NodeId
);

/// A port of a router. Ports are laid out contiguously:
/// `[0, p)` injection, `[p, p + a - 1)` local, `[p + a - 1, radix)` global.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Port(pub u32);

impl Port {
    /// Raw index as `usize`, for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// The three classes of router port, in the order they are laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortKind {
    /// Connects a compute node to its router.
    Injection,
    /// Intra-group link to another router of the same group.
    Local,
    /// Inter-group link.
    Global,
}

impl RouterId {
    /// Build from a group and the router's index within it.
    #[inline]
    pub fn from_group_local(params: &DragonflyParams, group: GroupId, local: u32) -> Self {
        debug_assert!(local < params.a);
        RouterId(group.0 * params.a + local)
    }

    /// The group this router belongs to.
    #[inline]
    pub fn group(self, params: &DragonflyParams) -> GroupId {
        GroupId(self.0 / params.a)
    }

    /// The router's index within its group, in `0..a`.
    #[inline]
    pub fn local_index(self, params: &DragonflyParams) -> u32 {
        self.0 % params.a
    }
}

impl NodeId {
    /// Build from a router and the node's slot on it.
    #[inline]
    pub fn from_router_slot(params: &DragonflyParams, router: RouterId, slot: u32) -> Self {
        debug_assert!(slot < params.p);
        NodeId(router.0 * params.p + slot)
    }

    /// The router this node is attached to.
    #[inline]
    pub fn router(self, params: &DragonflyParams) -> RouterId {
        RouterId(self.0 / params.p)
    }

    /// The node's slot on its router, in `0..p` — also its injection port.
    #[inline]
    pub fn slot(self, params: &DragonflyParams) -> u32 {
        self.0 % params.p
    }

    /// The group this node belongs to.
    #[inline]
    pub fn group(self, params: &DragonflyParams) -> GroupId {
        self.router(params).group(params)
    }
}

/// Port-layout helpers over [`DragonflyParams`].
pub trait PortLayout {
    /// Classify a port.
    fn port_kind(&self, port: Port) -> PortKind;
    /// Injection port for node slot `s`.
    fn injection_port(&self, slot: u32) -> Port;
    /// Local port on router `r` (local index) leading to router `peer`
    /// (local index) in the same group.
    fn local_port(&self, r: u32, peer: u32) -> Port;
    /// Peer router (local index) reached through local port `port` of
    /// router `r` (local index).
    fn local_port_peer(&self, r: u32, port: Port) -> u32;
    /// Global port number `j` (`0..h`) as a router [`Port`].
    fn global_port(&self, j: u32) -> Port;
    /// The global-port index `j` of a global [`Port`].
    fn global_port_offset(&self, port: Port) -> u32;
}

impl PortLayout for DragonflyParams {
    #[inline]
    fn port_kind(&self, port: Port) -> PortKind {
        debug_assert!(port.0 < self.radix());
        if port.0 < self.p {
            PortKind::Injection
        } else if port.0 < self.p + self.a - 1 {
            PortKind::Local
        } else {
            PortKind::Global
        }
    }

    #[inline]
    fn injection_port(&self, slot: u32) -> Port {
        debug_assert!(slot < self.p);
        Port(slot)
    }

    #[inline]
    fn local_port(&self, r: u32, peer: u32) -> Port {
        debug_assert!(r != peer, "no local port to self");
        debug_assert!(r < self.a && peer < self.a);
        // Skip the router's own slot so the a-1 local ports stay dense.
        let rel = if peer < r { peer } else { peer - 1 };
        Port(self.p + rel)
    }

    #[inline]
    fn local_port_peer(&self, r: u32, port: Port) -> u32 {
        debug_assert_eq!(self.port_kind(port), PortKind::Local);
        let rel = port.0 - self.p;
        if rel < r {
            rel
        } else {
            rel + 1
        }
    }

    #[inline]
    fn global_port(&self, j: u32) -> Port {
        debug_assert!(j < self.h);
        Port(self.p + self.a - 1 + j)
    }

    #[inline]
    fn global_port_offset(&self, port: Port) -> u32 {
        debug_assert_eq!(self.port_kind(port), PortKind::Global);
        port.0 - (self.p + self.a - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DragonflyParams {
        DragonflyParams::paper()
    }

    #[test]
    fn router_group_roundtrip() {
        let p = params();
        for g in 0..p.groups() {
            for i in 0..p.a {
                let r = RouterId::from_group_local(&p, GroupId(g), i);
                assert_eq!(r.group(&p), GroupId(g));
                assert_eq!(r.local_index(&p), i);
            }
        }
    }

    #[test]
    fn node_router_roundtrip() {
        let p = params();
        for r in [0u32, 1, 875] {
            for s in 0..p.p {
                let n = NodeId::from_router_slot(&p, RouterId(r), s);
                assert_eq!(n.router(&p), RouterId(r));
                assert_eq!(n.slot(&p), s);
            }
        }
    }

    #[test]
    fn port_kinds_partition_radix() {
        let p = params();
        let mut counts = [0u32; 3];
        for q in 0..p.radix() {
            match p.port_kind(Port(q)) {
                PortKind::Injection => counts[0] += 1,
                PortKind::Local => counts[1] += 1,
                PortKind::Global => counts[2] += 1,
            }
        }
        assert_eq!(counts, [p.p, p.a - 1, p.h]);
    }

    #[test]
    fn local_port_roundtrip() {
        let p = params();
        for r in 0..p.a {
            for peer in 0..p.a {
                if r == peer {
                    continue;
                }
                let port = p.local_port(r, peer);
                assert_eq!(p.port_kind(port), PortKind::Local);
                assert_eq!(p.local_port_peer(r, port), peer);
            }
        }
    }

    #[test]
    fn global_port_roundtrip() {
        let p = params();
        for j in 0..p.h {
            let port = p.global_port(j);
            assert_eq!(p.port_kind(port), PortKind::Global);
            assert_eq!(p.global_port_offset(port), j);
        }
    }
}
