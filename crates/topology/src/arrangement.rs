//! Global-link arrangements.
//!
//! In a canonical Dragonfly every group owns `a*h = G-1` global links, one
//! to each other group. The *arrangement* decides **which router and which
//! global port** of a group handles the link to each other group. The paper
//! uses the *palmtree* arrangement (Camarero et al., TACO 2014), under which
//! the `h` groups immediately following a group all hang off one router —
//! the ADVc bottleneck.
//!
//! We describe an arrangement by a per-group bijection from the *group
//! offset* `k ∈ 1..G` (destination group `(g + k) mod G`) to a *slot*
//! `s = i*h + j ∈ 0..a*h` (router `i`, global port `j`). Any family of
//! per-group bijections yields a consistent matching because the link
//! between `g` and `g+k` is the one stored at offset `k` in `g` and at
//! offset `G-k` in `g+k`.

use serde::{Deserialize, Serialize};

/// Selects how global links are distributed among a group's routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Arrangement {
    /// The paper's arrangement: slot `i*h + j` points to group offset
    /// `G - (i*h + j + 1)`. Consequently router `a-1` owns the links to
    /// offsets `+1..+h` (the ADVc bottleneck) and router `0` owns the
    /// links to offsets `-1..-h` (the minimal-traffic receiver).
    Palmtree,
    /// Slot `i*h + j` points to offset `i*h + j + 1`: router `0` owns
    /// offsets `+1..+h`. Mirror image of palmtree; used for ablations.
    Consecutive,
    /// Per-group pseudo-random bijection seeded deterministically. Used to
    /// study whether scattering consecutive destinations across routers
    /// dissolves the ADVc bottleneck.
    Random {
        /// Seed for the per-group shuffles.
        seed: u64,
    },
}

impl Arrangement {
    /// Build the offset→slot table for group `g`.
    /// `table[k-1] = slot` for offset `k in 1..groups`.
    pub(crate) fn offset_to_slot_table(&self, g: u32, groups: u32) -> Vec<u32> {
        let links = groups - 1; // a*h
        match *self {
            Arrangement::Palmtree => (1..groups).map(|k| links - k).collect(),
            Arrangement::Consecutive => (0..links).collect(),
            Arrangement::Random { seed } => {
                let mut table: Vec<u32> = (0..links).collect();
                // Fisher-Yates with a splitmix64 stream per group, so the
                // arrangement is deterministic in (seed, g).
                let mut state = seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(g as u64 + 1));
                for i in (1..links as usize).rev() {
                    let r = splitmix64(&mut state) as usize % (i + 1);
                    table.swap(i, r);
                }
                table
            }
        }
    }
}

/// SplitMix64 step — small local PRNG so this crate stays dependency-light.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bijection(table: &[u32]) {
        let mut seen = vec![false; table.len()];
        for &s in table {
            assert!(!seen[s as usize], "slot {s} assigned twice");
            seen[s as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn palmtree_is_bijection() {
        assert_bijection(&Arrangement::Palmtree.offset_to_slot_table(0, 73));
    }

    #[test]
    fn consecutive_is_bijection() {
        assert_bijection(&Arrangement::Consecutive.offset_to_slot_table(0, 73));
    }

    #[test]
    fn random_is_bijection_every_group() {
        for g in 0..19 {
            assert_bijection(&Arrangement::Random { seed: 42 }.offset_to_slot_table(g, 19));
        }
    }

    #[test]
    fn random_is_deterministic() {
        let a = Arrangement::Random { seed: 7 }.offset_to_slot_table(3, 19);
        let b = Arrangement::Random { seed: 7 }.offset_to_slot_table(3, 19);
        assert_eq!(a, b);
    }

    #[test]
    fn random_differs_across_groups() {
        let a = Arrangement::Random { seed: 7 }.offset_to_slot_table(0, 73);
        let b = Arrangement::Random { seed: 7 }.offset_to_slot_table(1, 73);
        assert_ne!(a, b, "astronomically unlikely to coincide");
    }

    #[test]
    fn palmtree_offset_one_maps_to_last_slot() {
        // Offset +1 must be owned by router a-1, port h-1 (slot a*h - 1).
        let t = Arrangement::Palmtree.offset_to_slot_table(0, 73);
        assert_eq!(t[0], 71);
    }

    #[test]
    fn palmtree_first_h_offsets_same_router() {
        // h=6, a=12: offsets 1..=6 land in slots 71..=66, all router 11.
        let t = Arrangement::Palmtree.offset_to_slot_table(0, 73);
        for k in 1..=6usize {
            assert_eq!(t[k - 1] / 6, 11);
        }
    }
}
