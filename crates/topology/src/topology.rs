//! The assembled Dragonfly topology: wiring queries and minimal routes.

use crate::arrangement::Arrangement;
use crate::ids::{GroupId, NodeId, Port, PortKind, PortLayout, RouterId};
use crate::params::DragonflyParams;
use serde::{Deserialize, Serialize};

/// What sits at the far end of a router port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortTarget {
    /// Injection port: the attached compute node.
    Node(NodeId),
    /// Local or global port: a peer router, entered through `port`.
    Router {
        /// Peer router.
        router: RouterId,
        /// The peer's port on the shared link.
        port: Port,
    },
}

/// A fully-resolved canonical Dragonfly topology.
///
/// Construction precomputes, for every group, the bijection between group
/// offsets and global-link slots in both directions, so all wiring queries
/// are O(1) table lookups.
#[derive(Debug, Clone)]
pub struct Topology {
    params: DragonflyParams,
    arrangement: Arrangement,
    /// `offset_to_slot[g][k-1] = i*h + j` for destination group `(g+k) % G`.
    offset_to_slot: Vec<Vec<u32>>,
    /// `slot_to_offset[g][i*h + j] = k`.
    slot_to_offset: Vec<Vec<u32>>,
}

impl Topology {
    /// Build a topology for `params` under `arrangement`.
    pub fn new(params: DragonflyParams, arrangement: Arrangement) -> Self {
        let groups = params.groups();
        let links = params.global_links_per_group();
        let mut offset_to_slot = Vec::with_capacity(groups as usize);
        let mut slot_to_offset = Vec::with_capacity(groups as usize);
        for g in 0..groups {
            let table = arrangement.offset_to_slot_table(g, groups);
            debug_assert_eq!(table.len(), links as usize);
            let mut inv = vec![u32::MAX; links as usize];
            for (k_minus_1, &slot) in table.iter().enumerate() {
                inv[slot as usize] = k_minus_1 as u32 + 1;
            }
            debug_assert!(inv.iter().all(|&k| k != u32::MAX));
            offset_to_slot.push(table);
            slot_to_offset.push(inv);
        }
        Self { params, arrangement, offset_to_slot, slot_to_offset }
    }

    /// The sizing parameters.
    #[inline]
    pub fn params(&self) -> &DragonflyParams {
        &self.params
    }

    /// The arrangement in use.
    #[inline]
    pub fn arrangement(&self) -> Arrangement {
        self.arrangement
    }

    /// Group offset `(dst - src) mod G`, in `0..G`.
    #[inline]
    pub fn group_offset(&self, src: GroupId, dst: GroupId) -> u32 {
        let g = self.params.groups();
        (dst.0 + g - src.0) % g
    }

    /// The router (by global id) and global-port index `j` in group `g`
    /// owning the link to group `dst`.
    ///
    /// # Panics
    /// Panics in debug builds if `g == dst` (no self-link exists).
    #[inline]
    pub fn exit_to_group(&self, g: GroupId, dst: GroupId) -> (RouterId, u32) {
        let k = self.group_offset(g, dst);
        debug_assert!(k != 0, "no global link from a group to itself");
        let slot = self.offset_to_slot[g.idx()][(k - 1) as usize];
        let (i, j) = (slot / self.params.h, slot % self.params.h);
        (RouterId::from_group_local(&self.params, g, i), j)
    }

    /// Destination group of global port `j` on router `r`.
    #[inline]
    pub fn global_port_target_group(&self, r: RouterId, j: u32) -> GroupId {
        let g = r.group(&self.params);
        let slot = r.local_index(&self.params) * self.params.h + j;
        let k = self.slot_to_offset[g.idx()][slot as usize];
        GroupId((g.0 + k) % self.params.groups())
    }

    /// Peer endpoint (router, global-port index) of global port `j` on
    /// router `r`.
    pub fn global_peer(&self, r: RouterId, j: u32) -> (RouterId, u32) {
        let dst_group = self.global_port_target_group(r, j);
        let src_group = r.group(&self.params);
        // The same physical link is the one the peer group stores under the
        // complementary offset G - k.
        let (peer, pj) = self.exit_to_group(dst_group, src_group);
        debug_assert_eq!(self.global_port_target_group(peer, pj), src_group);
        (peer, pj)
    }

    /// Full wiring query: what is connected to `port` of `router`?
    pub fn port_target(&self, router: RouterId, port: Port) -> PortTarget {
        let p = &self.params;
        match p.port_kind(port) {
            PortKind::Injection => {
                PortTarget::Node(NodeId::from_router_slot(p, router, port.0))
            }
            PortKind::Local => {
                let my = router.local_index(p);
                let peer_local = p.local_port_peer(my, port);
                let peer =
                    RouterId::from_group_local(p, router.group(p), peer_local);
                PortTarget::Router { router: peer, port: p.local_port(peer_local, my) }
            }
            PortKind::Global => {
                let j = p.global_port_offset(port);
                let (peer, pj) = self.global_peer(router, j);
                PortTarget::Router { router: peer, port: p.global_port(pj) }
            }
        }
    }

    /// The *bottleneck router* of group `g` under ADVc traffic: the router
    /// owning the global link to group `g+1`. Under palmtree it owns the
    /// links to **all** of `g+1..g+h`.
    pub fn advc_bottleneck(&self, g: GroupId) -> RouterId {
        let next = GroupId((g.0 + 1) % self.params.groups());
        self.exit_to_group(g, next).0
    }

    /// Whether all `h` consecutive groups after `g` are reached through a
    /// single router (true for palmtree; generally false for random).
    pub fn advc_overlap_is_total(&self, g: GroupId) -> bool {
        let first = self.advc_bottleneck(g);
        (2..=self.params.h).all(|k| {
            let dst = GroupId((g.0 + k) % self.params.groups());
            self.exit_to_group(g, dst).0 == first
        })
    }

    /// Local and global link counts on the minimal path between two nodes
    /// (excluding the injection/ejection links). At most `(2, 1)`.
    pub fn min_path_links(&self, src: NodeId, dst: NodeId) -> (u32, u32) {
        let p = &self.params;
        let (sr, dr) = (src.router(p), dst.router(p));
        if sr == dr {
            return (0, 0);
        }
        let (sg, dg) = (sr.group(p), dr.group(p));
        if sg == dg {
            return (1, 0);
        }
        let (exit, j) = self.exit_to_group(sg, dg);
        let (entry, _) = self.global_peer(exit, j);
        let locals = u32::from(exit != sr) + u32::from(entry != dr);
        (locals, 1)
    }

    /// Number of link hops on the minimal path between two nodes
    /// (0 if same router — no network traversal; up to 3: local, global,
    /// local, always excluding the injection link).
    pub fn min_hops(&self, src: NodeId, dst: NodeId) -> u32 {
        let (l, g) = self.min_path_links(src, dst);
        l + g
    }

    /// Iterate over every router id.
    pub fn routers(&self) -> impl Iterator<Item = RouterId> {
        (0..self.params.routers()).map(RouterId)
    }

    /// Iterate over every node id.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.params.nodes()).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(DragonflyParams::paper(), Arrangement::Palmtree)
    }

    #[test]
    fn global_peer_is_involution() {
        let t = topo();
        for r in t.routers() {
            for j in 0..t.params().h {
                let (pr, pj) = t.global_peer(r, j);
                assert_eq!(t.global_peer(pr, pj), (r, j));
                assert_ne!(pr.group(t.params()), r.group(t.params()));
            }
        }
    }

    #[test]
    fn every_group_pair_connected_once() {
        let t = topo();
        let g = t.params().groups();
        let mut seen = vec![false; (g * g) as usize];
        for r in t.routers() {
            for j in 0..t.params().h {
                let src = r.group(t.params());
                let dst = t.global_port_target_group(r, j);
                let key = (src.0 * g + dst.0) as usize;
                assert!(!seen[key], "duplicate link {src:?}->{dst:?}");
                seen[key] = true;
            }
        }
        // All off-diagonal ordered pairs covered.
        for a in 0..g {
            for b in 0..g {
                assert_eq!(seen[(a * g + b) as usize], a != b);
            }
        }
    }

    #[test]
    fn palmtree_bottleneck_is_last_router() {
        let t = topo();
        for g in 0..t.params().groups() {
            let b = t.advc_bottleneck(GroupId(g));
            assert_eq!(b.local_index(t.params()), t.params().a - 1);
            assert!(t.advc_overlap_is_total(GroupId(g)));
        }
    }

    #[test]
    fn palmtree_receiver_is_router_zero() {
        // Traffic from g to g+1 exits via router a-1 and must *enter* group
        // g+1 at router 0 (the paper's R0 observation).
        let t = topo();
        let (exit, j) = t.exit_to_group(GroupId(0), GroupId(1));
        let (entry, _) = t.global_peer(exit, j);
        assert_eq!(entry.local_index(t.params()), 0);
    }

    #[test]
    fn random_arrangement_breaks_total_overlap() {
        let t = Topology::new(DragonflyParams::paper(), Arrangement::Random { seed: 3 });
        let total = (0..t.params().groups())
            .filter(|&g| t.advc_overlap_is_total(GroupId(g)))
            .count();
        assert_eq!(total, 0, "random arrangement should scatter consecutive groups");
    }

    #[test]
    fn port_target_symmetry() {
        let t = topo();
        for r in t.routers().take(50) {
            for q in 0..t.params().radix() {
                match t.port_target(r, Port(q)) {
                    PortTarget::Node(n) => {
                        assert_eq!(n.router(t.params()), r);
                    }
                    PortTarget::Router { router, port } => {
                        match t.port_target(router, port) {
                            PortTarget::Router { router: back, port: bp } => {
                                assert_eq!((back, bp), (r, Port(q)));
                            }
                            _ => panic!("asymmetric wiring"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn min_hops_bounds() {
        let t = Topology::new(DragonflyParams::small(), Arrangement::Palmtree);
        for s in t.nodes() {
            for d in t.nodes().step_by(17) {
                let h = t.min_hops(s, d);
                assert!(h <= 3);
                if s.router(t.params()) == d.router(t.params()) {
                    assert_eq!(h, 0);
                }
            }
        }
    }
}
