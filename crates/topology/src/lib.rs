//! # df-topology
//!
//! Canonical Dragonfly topology (Kim et al., ISCA'08) with complete graphs
//! at both hierarchy levels, as used by Fuentes et al., *"Throughput
//! Unfairness in Dragonfly Networks under Realistic Traffic Patterns"*
//! (CLUSTER 2015).
//!
//! The crate provides:
//! * [`DragonflyParams`] — the `(p, a, h)` sizing triple and derived sizes,
//! * typed identifiers ([`GroupId`], [`RouterId`], [`NodeId`], [`Port`])
//!   and the router port layout,
//! * global-link [`Arrangement`]s (palmtree, consecutive, random),
//! * [`Topology`] — O(1) wiring queries, minimal-route primitives, and the
//!   ADVc bottleneck-router query used throughout the reproduction.
//!
//! ```
//! use df_topology::{Arrangement, DragonflyParams, GroupId, Topology};
//!
//! let topo = Topology::new(DragonflyParams::paper(), Arrangement::Palmtree);
//! // Under palmtree, all h groups following group 0 hang off router a-1.
//! let bottleneck = topo.advc_bottleneck(GroupId(0));
//! assert_eq!(bottleneck.local_index(topo.params()), 11);
//! assert!(topo.advc_overlap_is_total(GroupId(0)));
//! ```

#![warn(missing_docs)]

mod arrangement;
mod ids;
mod params;
mod shard;
#[allow(clippy::module_inception)]
mod topology;

pub use arrangement::Arrangement;
pub use ids::{GroupId, NodeId, Port, PortKind, PortLayout, RouterId};
pub use params::DragonflyParams;
pub use shard::ShardPlan;
pub use topology::{PortTarget, Topology};
