//! Group→shard partitioning for sharded simulation.
//!
//! A [`ShardPlan`] splits the dragonfly's groups into `S` contiguous,
//! balanced ranges. Contiguity matters: routers and nodes are numbered
//! group-major (`RouterId = group·a + local`, `NodeId = router·p + slot`),
//! so a contiguous group range is also a contiguous router range and a
//! contiguous node range — each shard owns a *slice* of every per-router
//! and per-node array, and global arrays can be reassembled by splicing
//! the slices back at their base offsets.
//!
//! The plan is a pure function of `(groups, shards)`; it contains no
//! state of its own, so it is trivially `Copy` and can be consulted from
//! any thread.

use crate::ids::{GroupId, NodeId, RouterId};
use crate::params::DragonflyParams;
use std::ops::Range;

/// A balanced contiguous partition of dragonfly groups into shards.
///
/// Shard `s` owns groups `[s·G/S, (s+1)·G/S)` (integer division), which
/// differs in size by at most one group across shards. The inverse map
/// `shard_of_group` is closed-form (no table): group `g` lives in shard
/// `((g+1)·S − 1) / G`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    params: DragonflyParams,
    groups: u32,
    shards: u32,
}

impl ShardPlan {
    /// Build a plan for `shards` shards over `params`' groups. A request
    /// for more shards than groups is clamped (an empty shard would be
    /// pure overhead), and `0` is treated as `1`.
    pub fn new(params: DragonflyParams, shards: u32) -> Self {
        let groups = params.groups();
        Self { params, groups, shards: shards.clamp(1, groups) }
    }

    /// Number of shards in the plan (after clamping).
    #[inline]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Number of groups being partitioned.
    #[inline]
    pub fn groups(&self) -> u32 {
        self.groups
    }

    /// The sizing parameters the plan was built for.
    #[inline]
    pub fn params(&self) -> &DragonflyParams {
        &self.params
    }

    /// First group owned by shard `s` (equals `groups()` for `s == shards()`).
    #[inline]
    pub fn group_start(&self, s: u32) -> u32 {
        debug_assert!(s <= self.shards);
        ((s as u64 * self.groups as u64) / self.shards as u64) as u32
    }

    /// Groups owned by shard `s`.
    #[inline]
    pub fn group_range(&self, s: u32) -> Range<u32> {
        self.group_start(s)..self.group_start(s + 1)
    }

    /// Routers owned by shard `s` (contiguous because ids are group-major).
    #[inline]
    pub fn router_range(&self, s: u32) -> Range<u32> {
        let r = self.group_range(s);
        r.start * self.params.a..r.end * self.params.a
    }

    /// Nodes owned by shard `s` (contiguous because ids are router-major).
    #[inline]
    pub fn node_range(&self, s: u32) -> Range<u32> {
        let r = self.router_range(s);
        r.start * self.params.p..r.end * self.params.p
    }

    /// The shard owning group `g`. Closed form: the largest `s` with
    /// `group_start(s) <= g`, i.e. `((g+1)·S − 1) / G`.
    #[inline]
    pub fn shard_of_group(&self, g: GroupId) -> u32 {
        debug_assert!(g.0 < self.groups);
        (((g.0 as u64 + 1) * self.shards as u64 - 1) / self.groups as u64) as u32
    }

    /// The shard owning router `r`.
    #[inline]
    pub fn shard_of_router(&self, r: RouterId) -> u32 {
        self.shard_of_group(GroupId(r.0 / self.params.a))
    }

    /// The shard owning node `n`.
    #[inline]
    pub fn shard_of_node(&self, n: NodeId) -> u32 {
        self.shard_of_group(GroupId(n.0 / (self.params.a * self.params.p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_balanced_contiguous_and_exhaustive() {
        for params in [
            DragonflyParams::figure1(),
            DragonflyParams::small(),
            DragonflyParams::paper(),
        ] {
            let groups = params.groups();
            for shards in 1..=groups.min(16) {
                let plan = ShardPlan::new(params, shards);
                assert_eq!(plan.group_start(0), 0);
                assert_eq!(plan.group_start(shards), groups);
                let mut covered = 0;
                for s in 0..shards {
                    let r = plan.group_range(s);
                    assert_eq!(r.start, covered, "contiguous at shard {s}");
                    let len = r.end - r.start;
                    // Balanced: sizes differ by at most one.
                    assert!(len >= groups / shards && len <= groups / shards + 1);
                    covered = r.end;
                }
                assert_eq!(covered, groups);
            }
        }
    }

    #[test]
    fn shard_of_group_matches_linear_scan() {
        for params in [DragonflyParams::figure1(), DragonflyParams::paper()] {
            let groups = params.groups();
            for shards in [1, 2, 3, 5, groups] {
                let plan = ShardPlan::new(params, shards);
                for g in 0..groups {
                    let by_scan = (0..shards)
                        .find(|&s| plan.group_range(s).contains(&g))
                        .expect("every group is owned");
                    assert_eq!(plan.shard_of_group(GroupId(g)), by_scan, "g={g} S={shards}");
                }
            }
        }
    }

    #[test]
    fn router_and_node_ranges_follow_group_major_ids() {
        let params = DragonflyParams::figure1();
        let plan = ShardPlan::new(params, 2);
        // 9 groups → shard 0 owns [0,4), shard 1 owns [4,9).
        assert_eq!(plan.group_range(0), 0..4);
        assert_eq!(plan.group_range(1), 4..9);
        assert_eq!(plan.router_range(0), 0..16);
        assert_eq!(plan.router_range(1), 16..36);
        assert_eq!(plan.node_range(0), 0..32);
        assert_eq!(plan.node_range(1), 32..72);
        for r in 0..params.routers() {
            let s = plan.shard_of_router(RouterId(r));
            assert!(plan.router_range(s).contains(&r));
        }
        for n in 0..params.nodes() {
            let s = plan.shard_of_node(NodeId(n));
            assert!(plan.node_range(s).contains(&n));
        }
    }

    #[test]
    fn shard_count_is_clamped_to_groups() {
        let params = DragonflyParams::figure1();
        assert_eq!(ShardPlan::new(params, 0).shards(), 1);
        assert_eq!(ShardPlan::new(params, 9).shards(), 9);
        assert_eq!(ShardPlan::new(params, 100).shards(), 9);
        // Clamped plans still partition exhaustively with 1 group each.
        let plan = ShardPlan::new(params, 100);
        for s in 0..9 {
            assert_eq!(plan.group_range(s).len(), 1);
        }
    }
}
