//! Dragonfly sizing parameters.
//!
//! A *canonical* Dragonfly (complete graphs at both hierarchy levels) is
//! fully described by three integers, following Kim et al. (ISCA'08):
//!
//! * `p` — compute nodes attached to every router,
//! * `a` — routers per group,
//! * `h` — global (inter-group) links per router.
//!
//! For the network to be *balanced* the usual recommendation is
//! `a = 2p = 2h`; the paper's system uses `p = h = 6`, `a = 12`.

use serde::{Deserialize, Serialize};

/// Sizing parameters of a canonical Dragonfly network.
///
/// Invariants enforced by [`DragonflyParams::new`]:
/// * all parameters are nonzero,
/// * the second-level graph is complete: with `g = a*h + 1` groups, every
///   group has exactly `a*h` global links, one per other group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DragonflyParams {
    /// Nodes per router.
    pub p: u32,
    /// Routers per group.
    pub a: u32,
    /// Global links per router.
    pub h: u32,
}

impl DragonflyParams {
    /// Create a parameter set, validating basic invariants.
    ///
    /// # Panics
    /// Panics if any parameter is zero.
    pub fn new(p: u32, a: u32, h: u32) -> Self {
        assert!(p > 0 && a > 0 && h > 0, "dragonfly parameters must be nonzero");
        Self { p, a, h }
    }

    /// The paper's full-scale system: `p=6, a=12, h=6` → 73 groups,
    /// 876 routers, 5,256 nodes (Table I).
    pub fn paper() -> Self {
        Self::new(6, 12, 6)
    }

    /// A balanced reduced-scale network (`a = 2h`, `p = h`) used as the
    /// default for fast experiment runs: `p=3, a=6, h=3` → 19 groups,
    /// 114 routers, 342 nodes.
    pub fn small() -> Self {
        Self::new(3, 6, 3)
    }

    /// The minimal example of the paper's Figure 1: `p=2, a=4, h=2` →
    /// 9 groups, 36 routers, 72 nodes.
    pub fn figure1() -> Self {
        Self::new(2, 4, 2)
    }

    /// Number of groups in the canonical (maximum-size) Dragonfly:
    /// `a*h + 1`.
    #[inline]
    pub fn groups(&self) -> u32 {
        self.a * self.h + 1
    }

    /// Total number of routers: `a * groups`.
    #[inline]
    pub fn routers(&self) -> u32 {
        self.a * self.groups()
    }

    /// Total number of compute nodes: `p * a * groups`.
    #[inline]
    pub fn nodes(&self) -> u32 {
        self.p * self.routers()
    }

    /// Router radix: `p` injection + `a-1` local + `h` global ports.
    #[inline]
    pub fn radix(&self) -> u32 {
        self.p + (self.a - 1) + self.h
    }

    /// Number of local ports per router (`a - 1`).
    #[inline]
    pub fn local_ports(&self) -> u32 {
        self.a - 1
    }

    /// Global links per group (`a * h`), equals `groups - 1`.
    #[inline]
    pub fn global_links_per_group(&self) -> u32 {
        self.a * self.h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_table1() {
        let p = DragonflyParams::paper();
        assert_eq!(p.groups(), 73);
        assert_eq!(p.routers(), 876);
        assert_eq!(p.nodes(), 5256);
        assert_eq!(p.radix(), 23); // 6 injection + 11 local + 6 global
    }

    #[test]
    fn figure1_scale() {
        let p = DragonflyParams::figure1();
        assert_eq!(p.groups(), 9);
        assert_eq!(p.nodes(), 72);
    }

    #[test]
    fn small_is_balanced() {
        let p = DragonflyParams::small();
        assert_eq!(p.a, 2 * p.h);
        assert_eq!(p.p, p.h);
        assert_eq!(p.nodes(), 342);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_parameter_rejected() {
        DragonflyParams::new(0, 4, 2);
    }

    #[test]
    fn global_links_complete_graph() {
        for (p, a, h) in [(2, 4, 2), (3, 6, 3), (6, 12, 6)] {
            let d = DragonflyParams::new(p, a, h);
            assert_eq!(d.global_links_per_group(), d.groups() - 1);
        }
    }
}
