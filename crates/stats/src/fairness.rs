//! Throughput-fairness metrics (§IV-B): minimum injections, max/min
//! ratio, coefficient of variation — plus Jain's index as an extension.

use serde::{Deserialize, Serialize};

/// Fairness summary over per-router injection counts.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FairnessReport {
    /// Lowest injection count of any router ("Min inj").
    pub min: f64,
    /// Highest injection count of any router.
    pub max: f64,
    /// Mean injections per router.
    pub mean: f64,
    /// `max / min` ("Max/Min"); `f64::INFINITY` when some router injected
    /// nothing at all.
    pub max_min_ratio: f64,
    /// Coefficient of variation `σ/µ` ("CoV").
    pub cov: f64,
    /// Jain's fairness index `(Σx)² / (n·Σx²)` ∈ (0, 1]; 1 is perfectly
    /// fair. Not in the paper — included as a widely-used complement.
    pub jain: f64,
}

impl FairnessReport {
    /// Compute all metrics from per-router injection counts.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn from_counts(counts: &[f64]) -> Self {
        assert!(!counts.is_empty(), "fairness over zero routers is undefined");
        let n = counts.len() as f64;
        let sum: f64 = counts.iter().sum();
        let sum_sq: f64 = counts.iter().map(|x| x * x).sum();
        let mean = sum / n;
        let min = counts.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = counts.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let var = (sum_sq / n - mean * mean).max(0.0);
        let cov = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        let max_min_ratio = if min > 0.0 {
            max / min
        } else if max > 0.0 {
            f64::INFINITY
        } else {
            1.0
        };
        let jain = if sum_sq > 0.0 { sum * sum / (n * sum_sq) } else { 1.0 };
        Self { min, max, mean, max_min_ratio, cov, jain }
    }

    /// Convenience: from integer counters (e.g. the engine's
    /// `injected_per_router`).
    pub fn from_u64(counts: &[u64]) -> Self {
        let v: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        Self::from_counts(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_fair() {
        let r = FairnessReport::from_counts(&[100.0; 12]);
        assert_eq!(r.min, 100.0);
        assert_eq!(r.max_min_ratio, 1.0);
        assert_eq!(r.cov, 0.0);
        assert!((r.jain - 1.0).abs() < 1e-12);
    }

    #[test]
    fn starved_router_shows_up() {
        let mut counts = vec![4000.0; 12];
        counts[11] = 40.0; // starved bottleneck
        let r = FairnessReport::from_counts(&counts);
        assert_eq!(r.min, 40.0);
        assert!((r.max_min_ratio - 100.0).abs() < 1e-9);
        assert!(r.cov > 0.2);
        assert!(r.jain < 0.95);
    }

    #[test]
    fn zero_injections_give_infinite_ratio() {
        let r = FairnessReport::from_counts(&[0.0, 10.0]);
        assert!(r.max_min_ratio.is_infinite());
    }

    #[test]
    fn all_zero_is_degenerate_but_defined() {
        let r = FairnessReport::from_counts(&[0.0, 0.0]);
        assert_eq!(r.max_min_ratio, 1.0);
        assert_eq!(r.cov, 0.0);
        assert_eq!(r.jain, 1.0);
    }

    #[test]
    fn cov_distinguishes_isolated_from_widespread() {
        // One starved + one favoured router...
        let mut isolated = vec![1000.0; 12];
        isolated[0] = 100.0;
        isolated[11] = 1900.0;
        // ...versus half starving, half favoured (same total).
        let widespread: Vec<f64> =
            (0..12).map(|i| if i < 6 { 100.0 } else { 1900.0 }).collect();
        let ri = FairnessReport::from_counts(&isolated);
        let rw = FairnessReport::from_counts(&widespread);
        assert!(
            rw.cov > ri.cov * 1.5,
            "CoV must flag widespread unfairness harder: {} vs {}",
            rw.cov,
            ri.cov
        );
        // Max/Min alone cannot distinguish the two — the paper's point.
        assert_eq!(ri.max_min_ratio, rw.max_min_ratio);
    }

    #[test]
    fn from_u64_matches_f64() {
        let a = FairnessReport::from_u64(&[10, 20, 30]);
        let b = FairnessReport::from_counts(&[10.0, 20.0, 30.0]);
        assert_eq!(a.cov, b.cov);
        assert_eq!(a.min, b.min);
    }
}
