//! Sliding-window rate counters (ring of buckets) and per-window row
//! accumulation.
//!
//! [`RateWindow`] follows the ring-of-buckets idiom: the window is split
//! into `n` buckets of a fixed width in cycles, events are recorded into
//! the bucket their cycle falls in, and advancing the window clears only
//! the buckets that rotated out — so both `record` and `advance` are
//! amortized O(1) and the sum over the window is exact (no decay
//! approximation).
//!
//! [`WindowSeries`] is the complementary boundary tracker: it owns the
//! window width and the next boundary cycle, tells the caller when a
//! window has closed, and accumulates one caller-built row per window.

/// Exact sliding-window event counter over a ring of fixed-width buckets.
///
/// The window covers the last `n_buckets` *bucket-aligned* intervals of
/// `bucket_width` cycles each: after recording at cycle `c`, the sum
/// counts every event whose cycle falls in a bucket index within
/// `[c / width - n + 1, c / width]`. Cycles must be fed monotonically
/// (non-decreasing); feeding an older cycle panics in debug builds.
#[derive(Debug, Clone)]
pub struct RateWindow {
    /// Width of one bucket, in cycles.
    bucket_width: u64,
    /// Ring storage; `buckets[abs_index % len]` holds the count for the
    /// absolute bucket `abs_index`.
    buckets: Vec<u64>,
    /// Absolute index (`cycle / bucket_width`) of the newest bucket.
    head: u64,
    /// Running sum of all live buckets.
    total: u64,
}

impl RateWindow {
    /// A window of `n_buckets` buckets, each `bucket_width` cycles wide.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(bucket_width: u64, n_buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        assert!(n_buckets > 0, "need at least one bucket");
        RateWindow { bucket_width, buckets: vec![0; n_buckets], head: 0, total: 0 }
    }

    /// Total cycles the window spans.
    pub fn window_cycles(&self) -> u64 {
        self.bucket_width * self.buckets.len() as u64
    }

    /// Slide the window so the bucket containing `cycle` is the head,
    /// clearing every bucket that rotated out. Amortized O(1): each
    /// bucket is cleared at most once per rotation past it.
    pub fn advance(&mut self, cycle: u64) {
        let bucket = cycle / self.bucket_width;
        debug_assert!(bucket >= self.head, "RateWindow cycles must be monotonic");
        if bucket <= self.head {
            return;
        }
        let steps = bucket - self.head;
        let len = self.buckets.len() as u64;
        if steps >= len {
            // The whole window rotated out.
            self.buckets.iter_mut().for_each(|b| *b = 0);
            self.total = 0;
        } else {
            for abs in (self.head + 1)..=bucket {
                let slot = (abs % len) as usize;
                self.total -= self.buckets[slot];
                self.buckets[slot] = 0;
            }
        }
        self.head = bucket;
    }

    /// Record `count` events at `cycle` (advancing the window first).
    pub fn record(&mut self, cycle: u64, count: u64) {
        self.advance(cycle);
        let slot = (self.head % self.buckets.len() as u64) as usize;
        self.buckets[slot] += count;
        self.total += count;
    }

    /// Exact number of events currently inside the window.
    pub fn sum(&self) -> u64 {
        self.total
    }

    /// Events per cycle over the window span.
    pub fn rate(&self) -> f64 {
        self.total as f64 / self.window_cycles() as f64
    }
}

/// Boundary tracker that snapshots one row per closed window.
///
/// The caller polls [`WindowSeries::due`] each cycle; when it returns a
/// window descriptor, the caller builds a row for `[start, end)` and
/// [`WindowSeries::push`]es it, which advances the boundary to the next
/// window. Windows are fixed-width and gap-free by construction.
#[derive(Debug, Clone)]
pub struct WindowSeries<T> {
    width: u64,
    next_boundary: u64,
    next_index: u64,
    rows: Vec<T>,
}

impl<T> WindowSeries<T> {
    /// A series of `width`-cycle windows starting at cycle `base`.
    ///
    /// # Panics
    /// Panics if `width` is zero.
    pub fn new(width: u64, base: u64) -> Self {
        assert!(width > 0, "window width must be positive");
        WindowSeries { width, next_boundary: base + width, next_index: 0, rows: Vec::new() }
    }

    /// Window width in cycles.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// If the window ending at or before `now` has closed, its
    /// `(index, start_cycle, end_cycle)` descriptor (end exclusive).
    /// Returns `None` while the current window is still filling.
    pub fn due(&self, now: u64) -> Option<(u64, u64, u64)> {
        (now >= self.next_boundary).then(|| {
            (self.next_index, self.next_boundary - self.width, self.next_boundary)
        })
    }

    /// Descriptor for the currently filling (partial) window up to
    /// `now`, or `None` if it is empty. Used to flush the tail window
    /// at end of run so sums over rows match end-of-run totals.
    pub fn partial(&self, now: u64) -> Option<(u64, u64, u64)> {
        let start = self.next_boundary - self.width;
        (now > start).then_some((self.next_index, start, now))
    }

    /// Close the current window with `row` and open the next one.
    pub fn push(&mut self, row: T) {
        self.rows.push(row);
        self.next_boundary += self.width;
        self.next_index += 1;
    }

    /// Rows closed so far, oldest first.
    pub fn rows(&self) -> &[T] {
        &self.rows
    }

    /// Consume the series, yielding its rows.
    pub fn into_rows(self) -> Vec<T> {
        self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_sum_within_one_bucket() {
        let mut w = RateWindow::new(10, 4);
        w.record(0, 3);
        w.record(5, 2);
        assert_eq!(w.sum(), 5);
        assert_eq!(w.window_cycles(), 40);
    }

    #[test]
    fn old_buckets_rotate_out() {
        let mut w = RateWindow::new(10, 2);
        w.record(0, 7); // bucket 0
        w.record(10, 1); // bucket 1; window now buckets {0, 1}
        assert_eq!(w.sum(), 8);
        w.advance(20); // bucket 2; bucket 0 rotates out
        assert_eq!(w.sum(), 1);
        w.advance(45); // bucket 4; everything out
        assert_eq!(w.sum(), 0);
    }

    #[test]
    fn large_jump_clears_everything() {
        let mut w = RateWindow::new(5, 8);
        for c in 0..40 {
            w.record(c, 1);
        }
        assert_eq!(w.sum(), 40);
        w.advance(10_000);
        assert_eq!(w.sum(), 0);
        w.record(10_001, 2);
        assert_eq!(w.sum(), 2);
    }

    #[test]
    fn rate_is_sum_over_span() {
        let mut w = RateWindow::new(10, 10);
        w.record(99, 50);
        assert!((w.rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn series_boundaries_are_contiguous() {
        let mut s: WindowSeries<(u64, u64, u64)> = WindowSeries::new(100, 250);
        assert!(s.due(349).is_none());
        let first = s.due(350).unwrap();
        assert_eq!(first, (0, 250, 350));
        s.push(first);
        let second = s.due(455).unwrap();
        assert_eq!(second, (1, 350, 450));
        s.push(second);
        assert_eq!(s.rows().len(), 2);
    }

    #[test]
    fn series_partial_tail() {
        let mut s: WindowSeries<u64> = WindowSeries::new(100, 0);
        s.push(0); // closes [0, 100)
        assert_eq!(s.partial(100), None);
        assert_eq!(s.partial(130), Some((1, 100, 130)));
    }
}
