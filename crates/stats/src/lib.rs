//! # df-stats
//!
//! Performance and fairness metrics for the Dragonfly unfairness
//! reproduction (§IV-B of the paper):
//!
//! * [`OnlineStats`] — streaming mean/variance (Welford), mergeable for
//!   multi-seed aggregation,
//! * [`LatencyAccumulator`] — the five-component latency breakdown of
//!   Figure 3 (base, misrouting, local/global congestion, injection),
//! * [`FairnessReport`] — Min inj, Max/Min, CoV (and Jain's index),
//! * [`Histogram`] — latency distributions and quantiles,
//! * [`RateWindow`] / [`WindowSeries`] — exact sliding-window rate
//!   counters (ring of buckets) and per-window row accumulation for the
//!   timeline telemetry layer.
//!
//! The crate is deliberately engine-agnostic: it consumes plain numbers,
//! so every metric is unit-testable without running a simulation.

#![warn(missing_docs)]

mod fairness;
mod histogram;
mod latency;
mod online;
mod window;

pub use fairness::FairnessReport;
pub use histogram::Histogram;
pub use latency::LatencyAccumulator;
pub use online::OnlineStats;
pub use window::{RateWindow, WindowSeries};
