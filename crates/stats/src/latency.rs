//! Latency aggregation with the paper's five-component breakdown
//! (Figure 3): base, misrouting, local-queue, global-queue, and
//! injection-queue cycles.

use crate::online::OnlineStats;
use serde::{Deserialize, Serialize};

/// Accumulates per-packet latency components.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyAccumulator {
    /// Full end-to-end latency.
    pub total: OnlineStats,
    /// Minimal-path traversal ("Base latency").
    pub base: OnlineStats,
    /// Extra traversal from non-minimal hops ("Misrouting").
    pub misroute: OnlineStats,
    /// Queueing at local transit ports ("Congestion, local queues").
    pub local_queue: OnlineStats,
    /// Queueing at global transit ports ("Congestion, global queues").
    pub global_queue: OnlineStats,
    /// Source-queue plus injection-port queueing ("Injection queues").
    pub injection_queue: OnlineStats,
}

impl LatencyAccumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one delivered packet's components, all in cycles.
    pub fn add(&mut self, base: u64, misroute: u64, inj: u64, local: u64, global: u64) {
        let total = base + misroute + inj + local + global;
        self.total.add(total as f64);
        self.base.add(base as f64);
        self.misroute.add(misroute as f64);
        self.local_queue.add(local as f64);
        self.global_queue.add(global as f64);
        self.injection_queue.add(inj as f64);
    }

    /// Packets recorded.
    pub fn count(&self) -> u64 {
        self.total.count()
    }

    /// Mean end-to-end latency.
    pub fn mean_latency(&self) -> f64 {
        self.total.mean()
    }

    /// Mean of each component, in the paper's Figure 3 stacking order:
    /// `[base, misroute, local_queue, global_queue, injection_queue]`.
    pub fn component_means(&self) -> [f64; 5] {
        [
            self.base.mean(),
            self.misroute.mean(),
            self.local_queue.mean(),
            self.global_queue.mean(),
            self.injection_queue.mean(),
        ]
    }

    /// Merge another accumulator (multi-seed aggregation).
    pub fn merge(&mut self, other: &Self) {
        self.total.merge(&other.total);
        self.base.merge(&other.base);
        self.misroute.merge(&other.misroute);
        self.local_queue.merge(&other.local_queue);
        self.global_queue.merge(&other.global_queue);
        self.injection_queue.merge(&other.injection_queue);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_sum_to_total() {
        let mut acc = LatencyAccumulator::new();
        acc.add(130, 100, 20, 5, 3);
        acc.add(130, 0, 0, 0, 0);
        let sum: f64 = acc.component_means().iter().sum();
        assert!((sum - acc.mean_latency()).abs() < 1e-9);
        assert_eq!(acc.count(), 2);
    }

    #[test]
    fn stacking_order_matches_figure3() {
        let mut acc = LatencyAccumulator::new();
        acc.add(1, 2, 3, 4, 5);
        let [base, mis, lq, gq, inj] = acc.component_means();
        assert_eq!((base, mis, lq, gq, inj), (1.0, 2.0, 4.0, 5.0, 3.0));
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyAccumulator::new();
        a.add(100, 0, 10, 0, 0);
        let mut b = LatencyAccumulator::new();
        b.add(200, 0, 30, 0, 0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.base.mean() - 150.0).abs() < 1e-12);
        assert!((a.injection_queue.mean() - 20.0).abs() < 1e-12);
    }
}
