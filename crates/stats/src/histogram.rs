//! Fixed-width histogram for latency distributions.

use serde::{Deserialize, Serialize};

/// Histogram over `[0, bin_width * bins)` with an overflow bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bin_width: u64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// `bins` buckets of `bin_width` cycles each.
    ///
    /// # Panics
    /// Panics if `bin_width` or `bins` is zero.
    pub fn new(bin_width: u64, bins: usize) -> Self {
        assert!(bin_width > 0 && bins > 0);
        Self { bin_width, counts: vec![0; bins], overflow: 0, total: 0 }
    }

    /// Record a sample.
    pub fn add(&mut self, value: u64) {
        let idx = (value / self.bin_width) as usize;
        match self.counts.get_mut(idx) {
            Some(c) => *c += 1,
            None => self.overflow += 1,
        }
        self.total += 1;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// `(bucket_start, count)` pairs for non-empty buckets.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (i as u64 * self.bin_width, c))
    }

    /// The smallest value `v` such that at least `q` (0..=1) of samples
    /// are `<= v` (bucket upper bound). `None` only when the histogram is
    /// empty; a quantile falling in the overflow bucket clamps to the
    /// histogram range cap (`bins * bin_width`) — a lower bound on the
    /// true quantile — so the metric stays total and monotone for
    /// heavy-tailed distributions instead of conflating "tail beyond the
    /// range" with "no samples".
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some((i as u64 + 1) * self.bin_width);
            }
        }
        // In overflow: clamp to the range cap.
        Some(self.counts.len() as u64 * self.bin_width)
    }

    /// Merge another histogram of identical shape, bucket by bucket.
    ///
    /// This is the only sound way to combine partial histograms:
    /// quantiles are *not* mergeable summaries — in particular the
    /// overflow bucket clamps them to the range cap, so combining two
    /// partials' quantiles can disagree with the quantile of the union
    /// stream, while bucket-wise merging reproduces it exactly.
    ///
    /// # Panics
    /// Panics if `other` has a different bin width or bucket count.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.bin_width, other.bin_width, "bin-width mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "bucket-count mismatch");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.overflow += other.overflow;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_and_overflow() {
        let mut h = Histogram::new(10, 5);
        for v in [0, 9, 10, 49, 50, 1000] {
            h.add(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.overflow(), 2);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(0, 2), (10, 1), (40, 1)]);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new(1, 100);
        for v in 0..100 {
            h.add(v);
        }
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(0.99), Some(99));
        assert_eq!(h.quantile(1.0), Some(100));
    }

    #[test]
    fn overflow_quantiles_clamp_to_range_cap() {
        let mut h = Histogram::new(10, 5); // range [0, 50)
        for _ in 0..9 {
            h.add(5);
        }
        h.add(1_000_000); // heavy tail beyond the range
        assert_eq!(h.quantile(0.5), Some(10));
        // p99 lands on the overflow sample: clamped, not None.
        assert_eq!(h.quantile(0.99), Some(50));
        assert_eq!(h.quantile(1.0), Some(50));
    }

    #[test]
    fn empty_quantile_is_none() {
        let h = Histogram::new(1, 10);
        assert_eq!(h.quantile(0.5), None);
    }

    /// Merging two partial histograms must equal accumulating the union
    /// stream — including quantiles that land in the overflow bucket,
    /// where per-partial quantiles are clamped and therefore NOT
    /// mergeable summaries.
    #[test]
    fn merge_equals_union_stream_under_overflow_clamping() {
        let low: Vec<u64> = (0..40).collect();
        let high: Vec<u64> = (0..20).map(|i| 100_000 + i).collect(); // all overflow
        let mut a = Histogram::new(10, 5); // range [0, 50)
        let mut b = Histogram::new(10, 5);
        let mut union = Histogram::new(10, 5);
        for &v in &low {
            a.add(v);
            union.add(v);
        }
        for &v in &high {
            b.add(v);
            union.add(v);
        }
        // b alone clamps every quantile to the cap; a alone never reaches
        // it. Neither partial's summary equals the union's p50.
        assert_eq!(b.quantile(0.5), Some(50));
        assert_ne!(a.quantile(0.99), union.quantile(0.99));
        a.merge(&b);
        assert_eq!(a.total(), union.total());
        assert_eq!(a.overflow(), union.overflow());
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), union.quantile(q), "q={q}");
        }
        let merged: Vec<_> = a.nonzero_buckets().collect();
        let direct: Vec<_> = union.nonzero_buckets().collect();
        assert_eq!(merged, direct);
    }

    #[test]
    #[should_panic(expected = "bin-width mismatch")]
    fn merge_rejects_shape_mismatch() {
        let mut a = Histogram::new(10, 5);
        let b = Histogram::new(20, 5);
        a.merge(&b);
    }
}
