//! Fixed-width histogram for latency distributions.

use serde::{Deserialize, Serialize};

/// Histogram over `[0, bin_width * bins)` with an overflow bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bin_width: u64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// `bins` buckets of `bin_width` cycles each.
    ///
    /// # Panics
    /// Panics if `bin_width` or `bins` is zero.
    pub fn new(bin_width: u64, bins: usize) -> Self {
        assert!(bin_width > 0 && bins > 0);
        Self { bin_width, counts: vec![0; bins], overflow: 0, total: 0 }
    }

    /// Record a sample.
    pub fn add(&mut self, value: u64) {
        let idx = (value / self.bin_width) as usize;
        match self.counts.get_mut(idx) {
            Some(c) => *c += 1,
            None => self.overflow += 1,
        }
        self.total += 1;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// `(bucket_start, count)` pairs for non-empty buckets.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (i as u64 * self.bin_width, c))
    }

    /// The smallest value `v` such that at least `q` (0..=1) of samples
    /// are `<= v` (bucket upper bound). `None` only when the histogram is
    /// empty; a quantile falling in the overflow bucket clamps to the
    /// histogram range cap (`bins * bin_width`) — a lower bound on the
    /// true quantile — so the metric stays total and monotone for
    /// heavy-tailed distributions instead of conflating "tail beyond the
    /// range" with "no samples".
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some((i as u64 + 1) * self.bin_width);
            }
        }
        // In overflow: clamp to the range cap.
        Some(self.counts.len() as u64 * self.bin_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_and_overflow() {
        let mut h = Histogram::new(10, 5);
        for v in [0, 9, 10, 49, 50, 1000] {
            h.add(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.overflow(), 2);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(0, 2), (10, 1), (40, 1)]);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new(1, 100);
        for v in 0..100 {
            h.add(v);
        }
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(0.99), Some(99));
        assert_eq!(h.quantile(1.0), Some(100));
    }

    #[test]
    fn overflow_quantiles_clamp_to_range_cap() {
        let mut h = Histogram::new(10, 5); // range [0, 50)
        for _ in 0..9 {
            h.add(5);
        }
        h.add(1_000_000); // heavy tail beyond the range
        assert_eq!(h.quantile(0.5), Some(10));
        // p99 lands on the overflow sample: clamped, not None.
        assert_eq!(h.quantile(0.99), Some(50));
        assert_eq!(h.quantile(1.0), Some(50));
    }

    #[test]
    fn empty_quantile_is_none() {
        let h = Histogram::new(1, 10);
        assert_eq!(h.quantile(0.5), None);
    }
}
