//! Streaming moments (Welford) — numerically stable mean/variance without
//! storing samples.

use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a sample.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_match_direct() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.add(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_sample() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        s.add(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 7 % 13) as f64).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for (i, &x) in xs.iter().enumerate() {
            if i < 37 {
                a.add(x);
            } else {
                b.add(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.add(1.0);
        a.add(2.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before.mean());
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
    }
}
