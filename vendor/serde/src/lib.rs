//! Offline stand-in for the [`serde`](https://crates.io/crates/serde)
//! crate.
//!
//! The workspace builds without a crates.io mirror, so serialization is
//! provided by this vendored mini-crate instead of real serde. The design
//! is deliberately simpler than serde's zero-copy visitor architecture:
//! every type converts to and from a [`Value`] tree, and `serde_json`
//! renders that tree as JSON text. The public surface mirrors what the
//! simulator uses:
//!
//! * `#[derive(Serialize, Deserialize)]` (re-exported from the companion
//!   `serde_derive` proc-macro crate) for structs, tuple structs, and
//!   enums — including `#[serde(rename_all = "...")]` and internally
//!   tagged enums via `#[serde(tag = "...")]`,
//! * [`Serialize`] / [`Deserialize`] impls for the primitive types,
//!   `String`, `Option<T>`, `Box<T>`, `Vec<T>`, and fixed-size arrays.
//!
//! Field-level serde attributes are not supported; add them to the derive
//! macro in `serde_derive` if a future type needs them.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (a JSON-shaped tree).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer (stored when a value cannot be a `u64`).
    I64(i64),
    /// Non-negative integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object: insertion-ordered key/value pairs.
    Map(Vec<(String, Value)>),
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Build an error describing an unexpected value shape.
    pub fn unexpected(expected: &str, got: &Value) -> Self {
        Error(format!("expected {expected}, got {got:?}"))
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// Look up `name` in a map; missing keys (and non-maps) read as
    /// [`Value::Null`], which lets `Option` fields deserialize to `None`.
    pub fn get_field(&self, name: &str) -> &Value {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// The single `(key, value)` entry of an externally-tagged enum map.
    pub fn single_entry(&self) -> Result<(&str, &Value), Error> {
        match self {
            Value::Map(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), &entries[0].1))
            }
            other => Err(Error::unexpected("single-entry map", other)),
        }
    }

    /// The string under `tag` in a map (internally-tagged enums).
    pub fn tag_str(&self, tag: &str) -> Result<&str, Error> {
        match self.get_field(tag) {
            Value::Str(s) => Ok(s.as_str()),
            other => Err(Error::unexpected("string tag", other)),
        }
    }
}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Reconstruction from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- primitives -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::unexpected("bool", other)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return Err(Error::unexpected("unsigned integer", other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of i64 range")))?,
                    other => return Err(Error::unexpected("integer", other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error::unexpected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// --- containers -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::unexpected("array", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + core::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error(format!("expected array of length {N}, got {got}")))
    }
}
