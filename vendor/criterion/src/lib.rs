//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the subset this workspace's benches use — `Criterion`,
//! `benchmark_group`/`bench_function`/`bench_with_input`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — with
//! a simple measurement loop: calibrate the iteration count to a target
//! sample duration, take several samples, report the median ns/iteration.
//!
//! No statistical analysis, plots, or saved baselines. When the binary is
//! invoked with `--test` (as `cargo test` does for harness-less bench
//! targets), every benchmark body runs exactly once as a smoke test.
//!
//! ## Machine-readable summaries
//!
//! When the `BENCH_JSON_DIR` environment variable is set (and the harness
//! is measuring, not smoke-testing), [`criterion_main!`] writes
//! `BENCH_<name>.json` into that directory — `<name>` being the bench
//! target's file stem — with one record per benchmark: id, median/min/max
//! ns per iteration, sample count, and batch size. This is the perf
//! trajectory record CI archives between runs.

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One measured benchmark result, collected for the JSON summary.
struct Record {
    id: String,
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
    batch: u64,
}

static RESULTS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Measurement entry point handed to every benchmark closure.
pub struct Bencher {
    mode: Mode,
    samples: usize,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// `--test`: run the body once, measure nothing.
    Smoke,
    Measure,
}

impl Bencher {
    /// Run `f` repeatedly and record its timing.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.mode == Mode::Smoke {
            black_box(f());
            return;
        }
        // Calibrate: grow the batch until it runs for ~5 ms.
        let mut batch: u64 = 1;
        let batch_target = Duration::from_millis(5);
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= batch_target || batch >= 1 << 30 {
                break;
            }
            batch = if elapsed.is_zero() {
                batch * 100
            } else {
                (batch * 2).max(
                    (batch as u128 * batch_target.as_nanos() / elapsed.as_nanos().max(1))
                        as u64,
                )
            };
        }
        // Measure.
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            per_iter.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
        let id = CURRENT.with(|c| c.borrow().clone());
        println!(
            "{:<50} {:>12}/iter  [{} .. {}]  ({} samples of {batch})",
            id,
            fmt_ns(median),
            fmt_ns(lo),
            fmt_ns(hi),
            per_iter.len(),
        );
        RESULTS.lock().unwrap().push(Record {
            id,
            median_ns: median,
            min_ns: lo,
            max_ns: hi,
            samples: per_iter.len(),
            batch,
        });
    }
}

/// Write the collected results as `BENCH_<name>.json` under
/// `$BENCH_JSON_DIR`, if that variable is set and anything was measured.
/// Called by [`criterion_main!`] after all groups have run.
pub fn write_bench_json() {
    let Ok(dir) = std::env::var("BENCH_JSON_DIR") else { return };
    let results = RESULTS.lock().unwrap();
    if results.is_empty() {
        return;
    }
    let name = bench_target_name();
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"bench\": \"{}\",\n", escape(&name)));
    json.push_str("  \"unit\": \"ns_per_iter\",\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}, \"batch\": {}}}{}\n",
            escape(&r.id),
            r.median_ns,
            r.min_ns,
            r.max_ns,
            r.samples,
            r.batch,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    if std::fs::create_dir_all(&dir).is_err() {
        eprintln!("criterion: cannot create BENCH_JSON_DIR {dir}");
        return;
    }
    let path = format!("{dir}/BENCH_{name}.json");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("criterion: cannot write {path}: {e}"),
    }
}

/// The bench target's name: the executable's file stem with the trailing
/// `-<16 hex>` cargo hash stripped.
fn bench_target_name() -> String {
    let stem = std::env::args()
        .next()
        .and_then(|p| {
            std::path::Path::new(&p)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
        })
        .unwrap_or_else(|| "bench".to_string());
    match stem.rsplit_once('-') {
        Some((name, hash))
            if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            name.to_string()
        }
        _ => stem,
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

thread_local! {
    static CURRENT: std::cell::RefCell<String> = const { std::cell::RefCell::new(String::new()) };
}

/// Identifier for a parameterized benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter label.
    pub fn new(function: impl core::fmt::Display, parameter: impl core::fmt::Display) -> Self {
        Self { full: format!("{function}/{parameter}") }
    }
}

/// The benchmark harness.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mode = if args.iter().any(|a| a == "--test") { Mode::Smoke } else { Mode::Measure };
        // First free-standing argument (not a flag) filters by substring,
        // as with real criterion / libtest.
        let filter = args.into_iter().find(|a| !a.starts_with('-'));
        Self { mode, filter, default_samples: 10 }
    }
}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, samples: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        CURRENT.with(|c| *c.borrow_mut() = id.to_string());
        let mut b = Bencher { mode: self.mode, samples };
        f(&mut b);
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let samples = self.default_samples;
        self.run_one(id, samples, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            samples: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n);
        self
    }

    /// Benchmark `f` with a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.full);
        let samples = self.samples.unwrap_or(self.criterion.default_samples);
        self.criterion.run_one(&full, samples, |b| f(b, input));
        self
    }

    /// End the group (report formatting hook; nothing to flush here).
    pub fn finish(self) {}
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce the `main` function for a bench binary (`harness = false`).
/// After all groups have run, the collected results are written as a
/// `BENCH_<name>.json` summary if `BENCH_JSON_DIR` is set.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_bench_json();
        }
    };
}
