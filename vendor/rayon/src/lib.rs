//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon)
//! crate, covering the one pattern this workspace uses:
//!
//! ```
//! use rayon::prelude::*;
//! let squares: Vec<u64> = [1u64, 2, 3].par_iter().map(|&x| x * x).collect();
//! assert_eq!(squares, vec![1, 4, 9]);
//! ```
//!
//! Unlike a sequential shim, `collect` really fans the work out over
//! `std::thread::scope`. Work distribution is dynamic: workers claim the
//! next unprocessed index from a shared atomic counter, so a sweep whose
//! cells differ wildly in run time (e.g. simulation loads near
//! saturation) keeps every core busy until the queue is empty instead of
//! serializing behind the slowest statically assigned chunk. Output
//! order is preserved — results land in their input slot.

/// The traits to import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
    pub use crate::IntoParallelRefMutIterator;
}

/// Types that can produce a parallel iterator over `&Item`.
pub trait IntoParallelRefIterator<'a> {
    /// Element type iterated by reference.
    type Item: 'a;
    /// A parallel iterator over the collection's elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator (slice-backed).
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Apply `f` to every element in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap { items: self.items, f }
    }
}

/// A mapped parallel iterator, consumed by [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Run the map over all elements — in parallel when more than one core
    /// and more than one element are available — preserving input order.
    ///
    /// Scheduling is a work-stealing loop: each worker repeatedly claims
    /// the next index from a shared atomic counter and writes the result
    /// into that index's slot, so uneven per-element run times never
    /// leave a core idle while work remains.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;

        let n = self.items.len();
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        if workers <= 1 {
            return self.items.iter().map(&self.f).collect();
        }

        // Per-index result slots. The Mutex is uncontended (exactly one
        // worker ever claims an index) and exists only to make the
        // cross-thread writes safe; the elements here are heavyweight
        // (whole simulation runs), so the lock cost is noise.
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let f = &self.f;
        let items = self.items;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = f(&items[i]);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker thread filled every slot")
            })
            .collect()
    }
}

/// Types that can produce a parallel iterator over `&mut Item`.
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type iterated by mutable reference.
    type Item: 'a;
    /// A parallel iterator over the collection's elements, mutably.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

/// A mutable borrowed parallel iterator (slice-backed).
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Apply `f` to every element — in parallel when more than one core
    /// and more than one element are available.
    ///
    /// Uses the same atomic work-claiming scheme as [`ParMap::collect`]:
    /// each worker claims the next unprocessed index, so shards with
    /// uneven per-cycle load (e.g. a hotspot group) never leave a core
    /// idle while work remains. Each element is visited exactly once by
    /// exactly one worker.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;

        let n = self.items.len();
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        if workers <= 1 {
            for item in self.items.iter_mut() {
                f(item);
            }
            return;
        }

        // One slot per element, holding its exclusive reference. Exactly
        // one worker ever claims an index, so the locks are uncontended;
        // they exist only to make the cross-thread handoff safe.
        let slots: Vec<Mutex<&mut T>> = self.items.iter_mut().map(Mutex::new).collect();
        let next = AtomicUsize::new(0);
        let f = &f;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let mut guard = slots[i].lock().expect("element slot poisoned");
                    f(&mut *guard);
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let input: Vec<u32> = (0..1000).collect();
        let out: Vec<u32> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_arrays_and_empty_input() {
        let out: Vec<u32> = [1u32, 2, 3].par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4]);
        let empty: Vec<u32> = Vec::<u32>::new().par_iter().map(|&x| x).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn skewed_workloads_preserve_order() {
        // Early elements are the slow ones: a static chunker would finish
        // them last on worker 0 while other workers idle. The result must
        // still come back in input order.
        let input: Vec<u64> = (0..32).collect();
        let out: Vec<u64> = input
            .par_iter()
            .map(|&x| {
                if x < 4 {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                x * 3
            })
            .collect();
        assert_eq!(out, (0..32).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_visits_every_element_once() {
        let mut items: Vec<u64> = (0..257).collect();
        items.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(items, (1..258).collect::<Vec<u64>>());
        // Empty and single-element inputs take the sequential path.
        let mut empty: Vec<u64> = Vec::new();
        empty.par_iter_mut().for_each(|x| *x += 1);
        let mut one = [41u64];
        one.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(one, [42]);
    }

    #[test]
    fn par_iter_mut_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let mut items: Vec<u32> = (0..64).collect();
        items.par_iter_mut().for_each(|_| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        if cores > 1 {
            assert!(seen.lock().unwrap().len() > 1, "expected parallel execution");
        }
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let input: Vec<u32> = (0..64).collect();
        let _out: Vec<()> = input
            .par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            })
            .collect();
        let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        if cores > 1 {
            assert!(seen.lock().unwrap().len() > 1, "expected parallel execution");
        }
    }
}
