//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! [`Just`], [`any`], `prop_oneof!`, `prop::collection::vec`, the
//! `proptest!` test macro, and the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in one deliberate way: failing
//! cases are **not shrunk** — the failing input is simply reported by the
//! underlying `assert!` panic. Case generation is deterministic per test
//! (seeded from the test's name), so failures reproduce across runs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-test deterministic random source.
pub struct TestRng {
    rng: SmallRng,
}

impl TestRng {
    /// Seed deterministically from a test name (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { rng: SmallRng::seed_from_u64(h) }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.rng.next_u64()
    }

    /// Uniform draw from a half-open range.
    pub fn below(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }
}

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.sample(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Choose uniformly among `options`.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical full-range strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full range of `T` (see [`any`]).
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// Generate vectors whose elements come from `elem` and whose length
    /// is uniform in `len`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.start + rng.below(self.len.end - self.len.start);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec` resolves as in real
/// proptest's prelude.
pub mod prop {
    pub use crate::collection;
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs `cases` times with fresh deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
     $(#[test] fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Property assertion (plain `assert!` — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn map_and_oneof_compose(v in prop_oneof![
            Just(1u64),
            any::<u64>().prop_map(|x| x | 1),
        ]) {
            prop_assert!(v % 2 == 1);
        }

        #[test]
        fn vec_lengths_respect_range(xs in prop::collection::vec(0u64..10, 1..8)) {
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            for x in xs {
                prop_assert!(x < 10);
            }
        }
    }
}
