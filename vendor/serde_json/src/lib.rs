//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json):
//! renders the vendored `serde` crate's [`Value`] tree as JSON text and
//! parses JSON text back into it.
//!
//! Behavioural notes, matching real `serde_json` where it matters to this
//! workspace:
//! * floats print via Rust's shortest-roundtrip formatting, so
//!   `to_string` → `from_str` reproduces every finite `f64` exactly;
//! * non-finite floats serialize as `null` (like real `serde_json`);
//! * numbers parse as unsigned/signed integers when exact, falling back
//!   to `f64` otherwise.

use serde::{Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                let s = x.to_string();
                out.push_str(&s);
                // `to_string` prints integral floats without a decimal
                // point; keep the value typed as a float on re-parse.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `]`, found {other:?}"
                            )));
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `}}`, found {other:?}"
                            )));
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                core::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not produced by this
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error("invalid \\u code point".into()))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error(format!("bad escape \\{}", other as char)));
                        }
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let s = core::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = s.chars().next().unwrap();
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number bytes".into()))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}
