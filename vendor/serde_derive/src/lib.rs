//! Derive macros for the vendored `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! value-tree model of the sibling `serde` crate, with a hand-rolled token
//! parser (the real `syn`/`quote` stack is unavailable offline).
//!
//! Supported shapes — exactly what this workspace derives:
//! * structs with named fields,
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays),
//! * enums with unit, newtype/tuple, and struct variants,
//! * container attributes `#[serde(rename_all = "snake_case" |
//!   "kebab-case")]` and `#[serde(tag = "...")]` (internally tagged
//!   enums).
//!
//! Generics and field-level attributes are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, ser: bool) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(msg) => return compile_error(&msg),
    };
    let code = if ser { gen_serialize(&parsed) } else { gen_deserialize(&parsed) };
    match code.parse() {
        Ok(ts) => ts,
        Err(e) => compile_error(&format!("serde_derive produced invalid code: {e}")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

// ---------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------

struct Input {
    name: String,
    /// `#[serde(tag = "...")]` — internally tagged enum.
    tag: Option<String>,
    /// `#[serde(rename_all = "...")]` — variant-name convention.
    rename_all: Option<String>,
    data: Data,
}

enum Data {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with N fields.
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    /// Tuple variant with N fields.
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut tag = None;
    let mut rename_all = None;

    let mut i = 0;
    // Attributes and visibility precede the `struct` / `enum` keyword.
    let kind = loop {
        match tokens.get(i) {
            None => return Err("serde_derive: no struct or enum found".into()),
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    parse_attr(&g.stream(), &mut tag, &mut rename_all)?;
                    i += 2;
                } else {
                    return Err("serde_derive: stray `#`".into());
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
                break id.to_string();
            }
            _ => i += 1, // visibility tokens, `pub(crate)` groups, etc.
        }
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde_derive: expected type name, got {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!("serde_derive: generic type `{name}` is not supported"));
        }
    }

    let data = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(parse_named_fields(&g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_tuple_fields(&g.stream()))
            }
            other => {
                return Err(format!("serde_derive: unsupported struct body: {other:?}"));
            }
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(&g.stream())?)
            }
            other => return Err(format!("serde_derive: expected enum body, got {other:?}")),
        }
    };

    Ok(Input { name, tag, rename_all, data })
}

/// Parse the bracketed contents of one attribute, recording serde metas.
fn parse_attr(
    stream: &TokenStream,
    tag: &mut Option<String>,
    rename_all: &mut Option<String>,
) -> Result<(), String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g))) if id.to_string() == "serde" => {
            let metas: Vec<TokenTree> = g.stream().into_iter().collect();
            let mut j = 0;
            while j < metas.len() {
                let key = match &metas[j] {
                    TokenTree::Ident(id) => id.to_string(),
                    other => return Err(format!("serde_derive: bad serde meta {other:?}")),
                };
                match (metas.get(j + 1), metas.get(j + 2)) {
                    (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                        if eq.as_char() == '=' =>
                    {
                        let value = unquote(&lit.to_string())?;
                        match key.as_str() {
                            "tag" => *tag = Some(value),
                            "rename_all" => *rename_all = Some(value),
                            other => {
                                return Err(format!(
                                    "serde_derive: unsupported serde attribute `{other}`"
                                ));
                            }
                        }
                        j += 3;
                    }
                    _ => {
                        return Err(format!(
                            "serde_derive: unsupported serde attribute form at `{key}`"
                        ));
                    }
                }
                if let Some(TokenTree::Punct(p)) = metas.get(j) {
                    if p.as_char() == ',' {
                        j += 1;
                    }
                }
            }
            Ok(())
        }
        _ => Ok(()), // non-serde attribute (doc comment etc.)
    }
}

fn unquote(lit: &str) -> Result<String, String> {
    let s = lit.trim();
    if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        Ok(s[1..s.len() - 1].to_string())
    } else {
        Err(format!("serde_derive: expected string literal, got {lit}"))
    }
}

/// Field names of a named-field body (struct or struct variant).
fn parse_named_fields(stream: &TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) and friends
                    }
                }
                continue;
            }
            _ => {}
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("serde_derive: expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!("serde_derive: expected `:` after `{name}`, got {other:?}"));
            }
        }
        // Skip the type up to the next comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Number of fields in a tuple body (struct or variant).
fn count_tuple_fields(stream: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    commas + usize::from(!trailing_comma)
}

fn parse_variants(stream: &TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {
                i += 1;
                continue;
            }
            _ => {}
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("serde_derive: expected variant name, got {other:?}")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(&g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(&g.stream()))
            }
            _ => VariantFields::Unit,
        };
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Name conventions
// ---------------------------------------------------------------------

fn apply_rename(name: &str, convention: Option<&str>) -> String {
    match convention {
        None => name.to_string(),
        Some("snake_case") => casify(name, '_'),
        Some("kebab-case") => casify(name, '-'),
        Some(other) => panic!("serde_derive: unsupported rename_all convention {other:?}"),
    }
}

fn casify(name: &str, sep: char) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push(sep);
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_value(&self.{k})")).collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Data::Enum(variants) => gen_serialize_enum(input, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_serialize_enum(input: &Input, variants: &[Variant]) -> String {
    let name = &input.name;
    let mut arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        let wire = apply_rename(vname, input.rename_all.as_deref());
        let arm = if let Some(tag) = &input.tag {
            // Internally tagged: variant fields flattened next to the tag.
            match &v.fields {
                VariantFields::Unit => format!(
                    "{name}::{vname} => ::serde::Value::Map(::std::vec![\
                     (::std::string::String::from({tag:?}), \
                      ::serde::Value::Str(::std::string::String::from({wire:?})))])"
                ),
                VariantFields::Named(fields) => {
                    let binds = fields.join(", ");
                    let mut entries = vec![format!(
                        "(::std::string::String::from({tag:?}), \
                         ::serde::Value::Str(::std::string::String::from({wire:?})))"
                    )];
                    entries.extend(fields.iter().map(|f| {
                        format!(
                            "(::std::string::String::from({f:?}), \
                             ::serde::Serialize::to_value({f}))"
                        )
                    }));
                    format!(
                        "{name}::{vname} {{ {binds} }} => \
                         ::serde::Value::Map(::std::vec![{}])",
                        entries.join(", ")
                    )
                }
                VariantFields::Tuple(_) => panic!(
                    "serde_derive: tuple variant {name}::{vname} cannot be internally tagged"
                ),
            }
        } else {
            // Externally tagged.
            match &v.fields {
                VariantFields::Unit => format!(
                    "{name}::{vname} => \
                     ::serde::Value::Str(::std::string::String::from({wire:?}))"
                ),
                VariantFields::Tuple(1) => format!(
                    "{name}::{vname}(f0) => ::serde::Value::Map(::std::vec![\
                     (::std::string::String::from({wire:?}), \
                      ::serde::Serialize::to_value(f0))])"
                ),
                VariantFields::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!(
                        "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![\
                         (::std::string::String::from({wire:?}), \
                          ::serde::Value::Seq(::std::vec![{}]))])",
                        binds.join(", "),
                        items.join(", ")
                    )
                }
                VariantFields::Named(fields) => {
                    let binds = fields.join(", ");
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value({f}))"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                         (::std::string::String::from({wire:?}), \
                          ::serde::Value::Map(::std::vec![{}]))])",
                        entries.join(", ")
                    )
                }
            }
        };
        arms.push(arm);
    }
    format!("match self {{ {} }}", arms.join(", "))
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(v.get_field({f:?}))?")
                })
                .collect();
            format!(
                "::core::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Data::TupleStruct(1) => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
        ),
        Data::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Seq(items) if items.len() == {n} => \
                         ::core::result::Result::Ok({name}({})),\n\
                     other => ::core::result::Result::Err(\
                         ::serde::Error::unexpected(\"array of length {n}\", other)),\n\
                 }}",
                inits.join(", ")
            )
        }
        Data::Enum(variants) => gen_deserialize_enum(input, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> \
                 ::core::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize_enum(input: &Input, variants: &[Variant]) -> String {
    let name = &input.name;
    if let Some(tag) = &input.tag {
        let mut arms = Vec::new();
        for v in variants {
            let vname = &v.name;
            let wire = apply_rename(vname, input.rename_all.as_deref());
            let arm = match &v.fields {
                VariantFields::Unit => {
                    format!("{wire:?} => ::core::result::Result::Ok({name}::{vname})")
                }
                VariantFields::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(v.get_field({f:?}))?"
                            )
                        })
                        .collect();
                    format!(
                        "{wire:?} => ::core::result::Result::Ok({name}::{vname} {{ {} }})",
                        inits.join(", ")
                    )
                }
                VariantFields::Tuple(_) => panic!(
                    "serde_derive: tuple variant {name}::{vname} cannot be internally tagged"
                ),
            };
            arms.push(arm);
        }
        return format!(
            "match v.tag_str({tag:?})? {{\n\
                 {},\n\
                 other => ::core::result::Result::Err(::serde::Error(\
                     ::std::format!(\"unknown {name} variant {{other}}\"))),\n\
             }}",
            arms.join(",\n")
        );
    }

    // Externally tagged.
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, VariantFields::Unit))
        .map(|v| {
            let wire = apply_rename(&v.name, input.rename_all.as_deref());
            format!(
                "{wire:?} => ::core::result::Result::Ok({name}::{vn})",
                vn = v.name
            )
        })
        .collect();
    let mut data_arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        let wire = apply_rename(vname, input.rename_all.as_deref());
        match &v.fields {
            VariantFields::Unit => {}
            VariantFields::Tuple(1) => data_arms.push(format!(
                "{wire:?} => ::core::result::Result::Ok(\
                 {name}::{vname}(::serde::Deserialize::from_value(inner)?))"
            )),
            VariantFields::Tuple(n) => data_arms.push(format!(
                "{wire:?} => match inner {{\n\
                     ::serde::Value::Seq(items) if items.len() == {n} => \
                         ::core::result::Result::Ok({name}::{vname}({inits})),\n\
                     other => ::core::result::Result::Err(\
                         ::serde::Error::unexpected(\"array of length {n}\", other)),\n\
                 }}",
                inits = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )),
            VariantFields::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(inner.get_field({f:?}))?"
                        )
                    })
                    .collect();
                data_arms.push(format!(
                    "{wire:?} => ::core::result::Result::Ok({name}::{vname} {{ {} }})",
                    inits.join(", ")
                ));
            }
        }
    }

    let mut outer_arms = Vec::new();
    if !unit_arms.is_empty() {
        outer_arms.push(format!(
            "::serde::Value::Str(s) => match s.as_str() {{\n\
                 {},\n\
                 other => ::core::result::Result::Err(::serde::Error(\
                     ::std::format!(\"unknown {name} variant {{other}}\"))),\n\
             }}",
            unit_arms.join(",\n")
        ));
    }
    if !data_arms.is_empty() {
        outer_arms.push(format!(
            "m @ ::serde::Value::Map(_) => {{\n\
                 let (key, inner) = m.single_entry()?;\n\
                 match key {{\n\
                     {},\n\
                     other => ::core::result::Result::Err(::serde::Error(\
                         ::std::format!(\"unknown {name} variant {{other}}\"))),\n\
                 }}\n\
             }}",
            data_arms.join(",\n")
        ));
    }
    outer_arms.push(format!(
        "other => ::core::result::Result::Err(\
         ::serde::Error::unexpected(\"enum {name}\", other))"
    ));
    format!("match v {{ {} }}", outer_arms.join(",\n"))
}
