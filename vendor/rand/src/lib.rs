//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in environments without a crates.io mirror, so the
//! external RNG dependency is replaced by this vendored mini-crate exposing
//! exactly the subset of the `rand 0.8` API the simulator uses:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ seeded via SplitMix64, the same
//!   algorithm real `rand 0.8` uses for `SmallRng` on 64-bit targets, so
//!   seeded streams keep the same statistical profile,
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen_range`] over `Range` / `RangeInclusive` of the integer
//!   types the simulator draws (`u32`, `u64`, `usize`),
//! * [`Rng::gen_bool`].
//!
//! Anything outside this subset is intentionally absent; add it here when a
//! new caller needs it rather than pulling the full crate back in.

/// Low-level entropy source: a stream of `u64` words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a deterministic generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        // 53 uniform mantissa bits in [0, 1); strictly below p <=> success.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one sample using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 step, used for seed expansion.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    ///
    /// The same algorithm `rand 0.8` uses behind `SmallRng` on 64-bit
    /// platforms. Not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut st);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zero words from any seed, but keep the guard.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn gen_bool_edges_and_rate() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }
}
