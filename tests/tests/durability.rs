//! Property-based durability tests: no matter where a crash tears a
//! persisted file or bit rot flips a byte, the startup scan either
//! reproduces an originally-written entry byte-for-byte or refuses to
//! load the file — it never serves mangled state.
//!
//! These drive [`df_service::StateDir`] directly with synthetic
//! entries and checkpoint rows (no simulation), so hundreds of
//! corruption cases run in milliseconds.

use df_service::{digest_hex, CacheEntry, StateDir};
use dragonfly_core::SweepRow;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch state dir per proptest case (cases run
/// sequentially per test, but tests run in parallel).
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "df-durability-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn entry(result: &str) -> CacheEntry {
    CacheEntry { result: result.into(), digest: digest_hex(result.as_bytes()) }
}

fn row(cell: u32, seed: u64, latency: f64) -> SweepRow {
    SweepRow {
        cell,
        mechanism: "In-Trns-MM".into(),
        load: 0.2,
        placement: "base".into(),
        pattern: "base".into(),
        seed,
        scope: "network".into(),
        nodes: 72,
        offered: 0.2,
        throughput: 0.19,
        avg_latency: latency,
        p50_latency: None,
        p95_latency: Some(88),
        p99_latency: Some(120),
        active_cycles: 200,
        delivered_packets: 1234,
        min_injections: 0.0,
        max_min_ratio: None,
        cov: 0.1,
        jain: 0.99,
    }
}

/// The single spill file under a fresh state dir holding `key`.
fn spill_path(dir: &Path, key: &str) -> PathBuf {
    dir.join("cache").join(format!("{}.json", digest_hex(key.as_bytes())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Truncate a spill file at an arbitrary byte: the load never
    // yields a mangled entry — either the (empty-prefix) file is
    // quarantined, or nothing is reported at all.
    #[test]
    fn truncated_spill_never_loads(cut in 0usize..200, len in 1usize..400) {
        let dir = scratch("trunc");
        let state = StateDir::open(&dir).unwrap();
        let result: String = "x".repeat(len);
        state.spill("job-key", &entry(&result)).unwrap();
        let path = spill_path(&dir, "job-key");
        let bytes = std::fs::read(&path).unwrap();
        let cut = cut.min(bytes.len().saturating_sub(1));
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let report = state.load_cache();
        prop_assert!(report.entries.is_empty(), "a torn spill must never load");
        prop_assert_eq!(report.quarantined.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Flip one byte anywhere in a spill file: the entry either loads
    // byte-identical to the original (the flip hit redundant
    // whitespace — impossible in compact JSON, so in practice never)
    // or is quarantined.
    #[test]
    fn bit_flipped_spill_is_detected_or_identical(
        offset in 0usize..4096,
        bit in 0u8..8,
        len in 1usize..400,
    ) {
        let dir = scratch("flip");
        let state = StateDir::open(&dir).unwrap();
        let result: String = (0..len).map(|i| char::from(b'a' + (i % 26) as u8)).collect();
        state.spill("job-key", &entry(&result)).unwrap();
        let path = spill_path(&dir, "job-key");
        let mut bytes = std::fs::read(&path).unwrap();
        let offset = offset % bytes.len();
        bytes[offset] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        let report = state.load_cache();
        for (key, loaded) in &report.entries {
            prop_assert_eq!(key.as_str(), "job-key");
            prop_assert_eq!(loaded.result.as_str(), result.as_str(),
                "a loaded entry must be byte-identical to what was written");
        }
        prop_assert_eq!(report.entries.len() + report.quarantined.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Truncate a checkpoint file at an arbitrary byte: every unit
    // that still loads is byte-identical to one originally committed;
    // the torn tail only ever costs recomputation, never correctness.
    #[test]
    fn truncated_checkpoint_only_loses_units(cut in 0usize..6000, units in 1u32..5) {
        let dir = scratch("ckpt");
        let state = StateDir::open(&dir).unwrap();
        let mut committed = Vec::new();
        for cell in 0..units {
            let rows = vec![row(cell, 7, 40.0 + f64::from(cell))];
            state.append_checkpoint("swp", cell, 7, &rows).unwrap();
            committed.push(((cell, 7u64), rows));
        }
        let path = dir
            .join("checkpoints")
            .join(format!("{}.jsonl", digest_hex(b"swp")));
        let bytes = std::fs::read(&path).unwrap();
        let cut = cut.min(bytes.len());
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let load = state.load_checkpoint("swp");
        for (unit, rows) in &load.units {
            let original = committed.iter().find(|(u, _)| u == unit);
            prop_assert_eq!(Some(rows), original.map(|(_, r)| r),
                "recovered rows must match what was committed");
        }
        // Cutting inside line k keeps lines 0..k intact; at most one
        // line (the torn one) is dropped rather than cleanly missing.
        prop_assert!(load.units.len() + load.dropped <= units as usize);
        prop_assert!(load.dropped <= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Flip one byte anywhere in a multi-line checkpoint: recovered
    // units are always byte-identical to committed ones, and at most
    // one unit is lost.
    #[test]
    fn bit_flipped_checkpoint_drops_at_most_the_hit_line(
        offset in 0usize..8192,
        bit in 0u8..8,
        units in 1u32..5,
    ) {
        let dir = scratch("ckptflip");
        let state = StateDir::open(&dir).unwrap();
        let mut committed = Vec::new();
        for cell in 0..units {
            let rows = vec![row(cell, 7, 40.0 + f64::from(cell))];
            state.append_checkpoint("swp", cell, 7, &rows).unwrap();
            committed.push(((cell, 7u64), rows));
        }
        let path = dir
            .join("checkpoints")
            .join(format!("{}.jsonl", digest_hex(b"swp")));
        let mut bytes = std::fs::read(&path).unwrap();
        let offset = offset % bytes.len();
        bytes[offset] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        let load = state.load_checkpoint("swp");
        for (unit, rows) in &load.units {
            let original = committed.iter().find(|(u, _)| u == unit);
            prop_assert_eq!(Some(rows), original.map(|(_, r)| r));
        }
        // Flipping a newline can merge two lines (dropping both as one
        // unparseable line); any other flip damages exactly one.
        prop_assert!(load.units.len() + 2 >= units as usize);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
