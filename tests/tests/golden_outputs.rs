//! Golden-output digests: the `scenario --quick` / `sweep --quick`
//! protocols for every bundled scenario file, digested with the same MD5
//! that ci.sh applies to the CLI artifacts. Any change to simulation
//! behavior — event ordering, RNG consumption, float accumulation — shows
//! up here as a digest mismatch, so behavior-preservation is enforced by
//! `cargo test -q` and not only by the shell script.
//!
//! The digests cover the *serialized results* (the summary JSON a
//! `scenario` run prints after its tables, and the sweep table's CSV and
//! JSON artifacts), not the human-readable tables. Re-record a digest
//! only for an intentional behavior change, and say so in the commit
//! message (see `docs/DETERMINISM.md`).
//!
//! Every digest is asserted twice: once on the serial engine and once at
//! `shards: 2` on the group-sharded engine. The shard-count-invariance
//! contract (`docs/DETERMINISM.md`) says they are the same bytes, so the
//! sharded legs pin the SAME MD5s — no new goldens exist for sharded
//! runs, by design.

use dragonfly_core::prelude::*;
use integration_tests::md5_hex;

fn scenarios_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../scenarios")
}

/// Replicate the `scenario --quick` protocol: single seed, warm-up capped
/// at 2000 cycles, measurement at 4000. Digest of the seed-averaged
/// summary JSON (what the CLI prints to stdout for tooling). `shards`
/// mirrors the CLI's `--shards` override (`None` = the spec's own
/// setting, i.e. serial for the bundled files).
fn scenario_quick_digest_sharded(file: &str, shards: Option<u32>) -> String {
    let path = scenarios_dir().join(file);
    let mut spec = ScenarioSpec::load(path.to_str().unwrap()).expect("load scenario");
    spec.warmup_cycles = spec.warmup_cycles.min(2_000);
    spec.measure_cycles = spec.measure_cycles.min(4_000);
    if shards.is_some() {
        spec.shards = shards;
    }
    let result = run_scenario(&spec, &[DEFAULT_SEEDS[0]]).expect("run scenario");
    let json = serde_json::to_string_pretty(&result.summary()).expect("serialize summary");
    md5_hex(json.as_bytes())
}

fn scenario_quick_digest(file: &str) -> String {
    scenario_quick_digest_sharded(file, None)
}

/// Replicate the `sweep --quick` protocol: single seed, warm-up capped at
/// 1000 cycles, measurement at 2000. Returns digests of the CSV and JSON
/// artifacts (the pair ci.sh double-runs and byte-compares).
fn sweep_quick_digests_sharded(file: &str, shards: Option<u32>) -> (String, String) {
    let path = scenarios_dir().join(file);
    let mut spec = SweepSpec::load(path.to_str().unwrap()).expect("load sweep");
    spec.base.warmup_cycles = spec.base.warmup_cycles.min(1_000);
    spec.base.measure_cycles = spec.base.measure_cycles.min(2_000);
    if shards.is_some() {
        spec.base.shards = shards;
    }
    let table = run_sweep(&spec, &[DEFAULT_SEEDS[0]]).expect("run sweep");
    let csv = md5_hex(table.to_csv().as_bytes());
    let json_text = serde_json::to_string_pretty(&table).expect("serialize table");
    (csv, md5_hex(json_text.as_bytes()))
}

fn sweep_quick_digests(file: &str) -> (String, String) {
    sweep_quick_digests_sharded(file, None)
}

#[test]
fn golden_interference_advc_vs_uniform() {
    assert_eq!(
        scenario_quick_digest("interference_advc_vs_uniform.json"),
        "0e6ffb3aa0cf2e890cbe948633eedefa",
        "behavior drift in the interference scenario (see docs/DETERMINISM.md)"
    );
}

#[test]
fn golden_paper_job_anatomy() {
    assert_eq!(
        scenario_quick_digest("paper_job_anatomy.json"),
        "bf12a27f9d94ef4ce3cfdb41aed39283",
        "behavior drift in the job-anatomy scenario (see docs/DETERMINISM.md)"
    );
}

#[test]
fn golden_sweep_unfairness_grid() {
    let (csv, json) = sweep_quick_digests("sweep_unfairness_grid.json");
    assert_eq!(
        csv, "df045dadf249fc449c1ccc7b3ce548f8",
        "behavior drift in the sweep grid CSV (see docs/DETERMINISM.md)"
    );
    assert_eq!(
        json, "d7d9743204a4108a0e46c87d28c444a3",
        "behavior drift in the sweep grid JSON (see docs/DETERMINISM.md)"
    );
}

#[test]
fn golden_interference_advc_vs_uniform_sharded() {
    assert_eq!(
        scenario_quick_digest_sharded("interference_advc_vs_uniform.json", Some(2)),
        "0e6ffb3aa0cf2e890cbe948633eedefa",
        "sharded run must reproduce the serial golden digest byte-for-byte \
         (shard-count invariance, docs/DETERMINISM.md)"
    );
}

#[test]
fn golden_paper_job_anatomy_sharded() {
    assert_eq!(
        scenario_quick_digest_sharded("paper_job_anatomy.json", Some(2)),
        "bf12a27f9d94ef4ce3cfdb41aed39283",
        "sharded run must reproduce the serial golden digest byte-for-byte \
         (shard-count invariance, docs/DETERMINISM.md)"
    );
}

#[test]
fn golden_sweep_unfairness_grid_sharded() {
    let (csv, json) = sweep_quick_digests_sharded("sweep_unfairness_grid.json", Some(2));
    assert_eq!(
        csv, "df045dadf249fc449c1ccc7b3ce548f8",
        "sharded sweep CSV must reproduce the serial golden digest \
         (shard-count invariance, docs/DETERMINISM.md)"
    );
    assert_eq!(
        json, "d7d9743204a4108a0e46c87d28c444a3",
        "sharded sweep JSON must reproduce the serial golden digest \
         (shard-count invariance, docs/DETERMINISM.md)"
    );
}
