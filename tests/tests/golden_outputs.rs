//! Golden-output digests: the `scenario --quick` / `sweep --quick`
//! protocols for every bundled scenario file, digested with the same MD5
//! that ci.sh applies to the CLI artifacts. Any change to simulation
//! behavior — event ordering, RNG consumption, float accumulation — shows
//! up here as a digest mismatch, so behavior-preservation is enforced by
//! `cargo test -q` and not only by the shell script.
//!
//! The digests cover the *serialized results* (the summary JSON a
//! `scenario` run prints after its tables, and the sweep table's CSV and
//! JSON artifacts), not the human-readable tables. Re-record a digest
//! only for an intentional behavior change, and say so in the commit
//! message (see `docs/DETERMINISM.md`).

use dragonfly_core::prelude::*;
use integration_tests::md5_hex;

fn scenarios_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../scenarios")
}

/// Replicate the `scenario --quick` protocol: single seed, warm-up capped
/// at 2000 cycles, measurement at 4000. Digest of the seed-averaged
/// summary JSON (what the CLI prints to stdout for tooling).
fn scenario_quick_digest(file: &str) -> String {
    let path = scenarios_dir().join(file);
    let mut spec = ScenarioSpec::load(path.to_str().unwrap()).expect("load scenario");
    spec.warmup_cycles = spec.warmup_cycles.min(2_000);
    spec.measure_cycles = spec.measure_cycles.min(4_000);
    let result = run_scenario(&spec, &[DEFAULT_SEEDS[0]]).expect("run scenario");
    let json = serde_json::to_string_pretty(&result.summary()).expect("serialize summary");
    md5_hex(json.as_bytes())
}

/// Replicate the `sweep --quick` protocol: single seed, warm-up capped at
/// 1000 cycles, measurement at 2000. Returns digests of the CSV and JSON
/// artifacts (the pair ci.sh double-runs and byte-compares).
fn sweep_quick_digests(file: &str) -> (String, String) {
    let path = scenarios_dir().join(file);
    let mut spec = SweepSpec::load(path.to_str().unwrap()).expect("load sweep");
    spec.base.warmup_cycles = spec.base.warmup_cycles.min(1_000);
    spec.base.measure_cycles = spec.base.measure_cycles.min(2_000);
    let table = run_sweep(&spec, &[DEFAULT_SEEDS[0]]).expect("run sweep");
    let csv = md5_hex(table.to_csv().as_bytes());
    let json_text = serde_json::to_string_pretty(&table).expect("serialize table");
    (csv, md5_hex(json_text.as_bytes()))
}

#[test]
fn golden_interference_advc_vs_uniform() {
    assert_eq!(
        scenario_quick_digest("interference_advc_vs_uniform.json"),
        "0e6ffb3aa0cf2e890cbe948633eedefa",
        "behavior drift in the interference scenario (see docs/DETERMINISM.md)"
    );
}

#[test]
fn golden_paper_job_anatomy() {
    assert_eq!(
        scenario_quick_digest("paper_job_anatomy.json"),
        "bf12a27f9d94ef4ce3cfdb41aed39283",
        "behavior drift in the job-anatomy scenario (see docs/DETERMINISM.md)"
    );
}

#[test]
fn golden_sweep_unfairness_grid() {
    let (csv, json) = sweep_quick_digests("sweep_unfairness_grid.json");
    assert_eq!(
        csv, "df045dadf249fc449c1ccc7b3ce548f8",
        "behavior drift in the sweep grid CSV (see docs/DETERMINISM.md)"
    );
    assert_eq!(
        json, "d7d9743204a4108a0e46c87d28c444a3",
        "behavior drift in the sweep grid JSON (see docs/DETERMINISM.md)"
    );
}
