//! Shard-count-invariance suite: the group-sharded engine must produce
//! **byte-identical** serialized results for every shard count, under
//! churn schedules and across routing mechanisms (property-based), with
//! mid-run cross-shard queue coherence checked under `shadow-verify` and
//! the beyond-paper h=7 machine pinned serial-vs-sharded.
//!
//! On any mismatch the offending serial/sharded result pair is written
//! to `target/shard-diagnostics/` (the CI workflow archives that
//! directory), so a failure leaves the full JSON diff behind instead of
//! only a digest.

use dragonfly_core::df_workload::{InjectionSpec, JobSpec, PlacementSpec, ScenarioSpec};
use dragonfly_core::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;

/// Shard counts exercised against the serial baseline on the Figure 1
/// machine: 2 (uneven 5/4 group split), 3 (exact), and 9 (= #groups,
/// one group per shard — the maximal decomposition).
const SHARD_COUNTS: [u32; 3] = [2, 3, 9];

/// Mechanism axis for the property: one per decision style — fully
/// deterministic minimal, RNG-per-packet oblivious, source-adaptive
/// (PiggyBack begin-cycle state), and in-transit adaptive (per-hop RNG).
const MECHANISMS: [MechanismSpec; 4] = [
    MechanismSpec::Min,
    MechanismSpec::ObliviousCrg,
    MechanismSpec::SourceRrg,
    MechanismSpec::InTransitMm,
];

fn diagnostics_dir() -> PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../target/shard-diagnostics")
}

/// Write the mismatching result pair for post-mortem (CI archives the
/// directory) and return both paths for the panic message.
fn archive_mismatch(tag: &str, shards: u32, serial: &str, sharded: &str) -> (PathBuf, PathBuf) {
    let dir = diagnostics_dir();
    std::fs::create_dir_all(&dir).expect("create shard-diagnostics dir");
    let serial_path = dir.join(format!("{tag}-serial.json"));
    let sharded_path = dir.join(format!("{tag}-shards{shards}.json"));
    std::fs::write(&serial_path, serial).expect("write serial diagnostic");
    std::fs::write(&sharded_path, sharded).expect("write sharded diagnostic");
    (serial_path, sharded_path)
}

/// A Figure 1-scale churn scenario: jobs 0/1 time-share groups 0..3
/// around `handover`, job 2 runs groups 4..6 for the whole run. The
/// spec's own `shards` stays `None`; each run below pins its engine
/// explicitly.
fn churn_scenario(
    mechanism: MechanismSpec,
    handover: u64,
    tail: u64,
) -> ScenarioSpec {
    let job = |name: &str, first, count, (start_cycle, stop_cycle)| JobSpec {
        name: name.into(),
        placement: PlacementSpec::ConsecutiveGroups { first, count, slots: None },
        pattern: PatternSpec::Uniform,
        injection: InjectionSpec::Bernoulli,
        load: 0.25,
        start_cycle,
        stop_cycle,
    };
    ScenarioSpec {
        name: "shard-churn".into(),
        params: DragonflyParams::figure1(),
        arrangement: Arrangement::Palmtree,
        mechanisms: vec![mechanism],
        arbiter: ArbiterPolicy::TransitPriority,
        warmup_cycles: 200,
        measure_cycles: 800,
        telemetry: None,
        shards: None,
        jobs: vec![
            job("early", 0, 3, (None, Some(handover))),
            job("late", 0, 3, (Some(handover), Some(handover + tail))),
            job("steady", 4, 2, (None, None)),
        ],
    }
}

/// Run `spec` under `mechanism`/`seed` with an explicit shard count and
/// serialize the full `RunResult` (per-job tables, per-router injection
/// vectors, fairness floats — everything).
fn run_serialized(
    spec: &ScenarioSpec,
    mechanism: MechanismSpec,
    seed: u64,
    shards: u32,
) -> String {
    let mut spec = spec.clone();
    spec.shards = Some(shards);
    let result = run_scenario_once(&spec, mechanism, seed, None).expect("run scenario");
    serde_json::to_string(&result).expect("serialize RunResult")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The tentpole invariant: for a random churn schedule x mechanism x
    // seed, the serialized RunResult is byte-identical across shard
    // counts {1, 2, 3, #groups}. Serial (S=1) is the baseline; any
    // divergence archives the offending pair under target/shard-diagnostics/.
    #[test]
    fn run_results_are_byte_identical_across_shard_counts(
        handover in 100u64..900,
        tail in 1u64..200,
        seed in 0u64..1_000,
        mech_idx in 0usize..MECHANISMS.len(),
    ) {
        let mechanism = MECHANISMS[mech_idx];
        let spec = churn_scenario(mechanism, handover, tail);
        spec.validate(seed).unwrap();
        let baseline = run_serialized(&spec, mechanism, seed, 1);
        for &s in &SHARD_COUNTS {
            let sharded = run_serialized(&spec, mechanism, seed, s);
            if baseline != sharded {
                let tag = format!(
                    "churn-{}-h{handover}-t{tail}-seed{seed}",
                    mechanism.label()
                );
                let (a, b) = archive_mismatch(&tag, s, &baseline, &sharded);
                prop_assert!(
                    false,
                    "shard-count invariance violated at {s} shards \
                     (mechanism {}, handover {handover}, tail {tail}, seed {seed}); \
                     diagnostics: {} vs {}",
                    mechanism.label(),
                    a.display(),
                    b.display()
                );
            }
        }
    }
}

/// Mid-run coherence under `shadow-verify`: after every cycle of a
/// loaded 3-shard run, shard cycles must be aligned, cross-shard
/// outboxes drained, per-shard record queues flushed, and every shard's
/// incremental allocator work-lists must match a full scan (the
/// sharded mirror of `assert_work_lists_match_full_scan`). The route
/// cache is audited against a fresh policy probe every 64 cycles.
#[cfg(feature = "shadow-verify")]
#[test]
fn cross_shard_queues_cohere_mid_run() {
    use dragonfly_core::df_engine::{ArbiterPolicy, EngineConfig, NullSink, ShardedNetwork};
    use dragonfly_core::df_topology::Topology;

    let params = DragonflyParams::figure1();
    let topo = Topology::new(params, Arrangement::Palmtree);
    let cfg = EngineConfig::paper(ArbiterPolicy::TransitPriority, 3);
    let policy = MechanismSpec::InTransitMm.build(topo.clone(), &cfg, 7);
    let mut net = ShardedNetwork::new(topo, cfg, policy, NullSink, 3);
    for cycle in 0..600u64 {
        for n in 0..params.nodes() {
            if (n as u64).wrapping_mul(2654435761).wrapping_add(cycle) % 5 == 0 {
                net.offer(NodeId(n), NodeId((n + 31) % params.nodes()));
            }
        }
        net.step();
        net.assert_shards_coherent();
        if cycle % 64 == 0 {
            net.assert_route_cache_coherent();
        }
    }
    assert!(net.in_flight() > 0, "coherence run must actually carry load");
}

/// The beyond-paper machine: h=7 (p=7, a=14 — 99 groups, 9702 nodes),
/// one step past the paper's largest h=6 evaluation. The bundled
/// scenario must run to completion under the sharded engine and
/// reproduce the serial result byte-for-byte.
#[test]
fn beyond_paper_h7_scenario_is_shard_invariant() {
    let path = format!(
        "{}/../scenarios/beyond_paper_h7.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let mut spec = ScenarioSpec::load(&path).expect("load beyond_paper_h7");
    assert_eq!((spec.params.p, spec.params.a, spec.params.h), (7, 14, 7));
    assert_eq!(spec.params.groups(), 99);
    assert_eq!(spec.params.nodes(), 9_702);
    // Trimmed protocol: this is a determinism pin, not a measurement.
    spec.warmup_cycles = 100;
    spec.measure_cycles = 200;
    spec.validate(DEFAULT_SEEDS[0]).expect("valid spec");
    let mechanism = spec.mechanisms[0];
    let mut serial_spec = spec.clone();
    serial_spec.shards = Some(1);
    let result = run_scenario_once(&serial_spec, mechanism, DEFAULT_SEEDS[0], None)
        .expect("serial h=7 run");
    // The run carried real traffic (not a vacuous empty-network match).
    assert!(
        result.delivered_packets > 1_000,
        "h=7 run delivered too little ({}) to be meaningful",
        result.delivered_packets
    );
    let serial = serde_json::to_string(&result).expect("serialize RunResult");
    let sharded = run_serialized(&spec, mechanism, DEFAULT_SEEDS[0], 2);
    if serial != sharded {
        let (a, b) = archive_mismatch("beyond-paper-h7", 2, &serial, &sharded);
        panic!(
            "h=7 sharded run diverged from serial; diagnostics: {} vs {}",
            a.display(),
            b.display()
        );
    }
}

/// `shards` is an optional spec field: legacy scenario files without it
/// parse to `None` (serial / `DF_TEST_SHARDS` defaulting), and an
/// explicit value round-trips.
#[test]
fn shards_field_is_optional_and_roundtrips() {
    let spec = churn_scenario(MechanismSpec::Min, 500, 100);
    let json = spec.to_json();
    let back = ScenarioSpec::from_json(&json).unwrap();
    assert_eq!(back.shards, None);
    let mut sharded = spec;
    sharded.shards = Some(4);
    let back = ScenarioSpec::from_json(&sharded.to_json()).unwrap();
    assert_eq!(back.shards, Some(4));
}
