//! Windowed-telemetry integration tests: the `RateWindow` ring against a
//! naive reference (property-based), sum-of-windows == end-of-run totals
//! under job churn straddling window boundaries, telemetry on/off
//! bit-equality of the golden summaries, and the paper-level signal —
//! the victim job's windowed throughput collapsing under In-Trns-CRG
//! while Obl-CRG stays flat.

use dragonfly_core::df_stats::RateWindow;
use dragonfly_core::df_workload::{InjectionSpec, JobSpec, PlacementSpec, ScenarioSpec};
use dragonfly_core::prelude::*;
use integration_tests::md5_hex;
use proptest::prelude::*;

fn scenario_path(name: &str) -> String {
    format!("{}/../scenarios/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Load a bundled scenario under the `scenario --quick` cycle budget.
fn quick_spec(name: &str) -> ScenarioSpec {
    let mut spec = ScenarioSpec::load(&scenario_path(name)).expect("load scenario");
    spec.warmup_cycles = spec.warmup_cycles.min(2_000);
    spec.measure_cycles = spec.measure_cycles.min(4_000);
    spec
}

// ---------------------------------------------------------------------
// RateWindow vs naive reference (property-based)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Feed the same monotone event stream into the ring and into a flat
    // event list; after every event the ring's O(1) sum must equal the
    // reference's O(events) bucket-aligned window sum.
    #[test]
    fn rate_window_matches_naive_reference(
        width in 1u64..50,
        n_buckets in 1usize..8,
        steps in prop::collection::vec((0u64..120, 0u64..10), 1..80),
    ) {
        let mut ring = RateWindow::new(width, n_buckets);
        let mut events: Vec<(u64, u64)> = Vec::new();
        let mut cycle = 0u64;
        for (delta, count) in steps {
            cycle += delta;
            ring.record(cycle, count);
            events.push((cycle, count));
            // Reference: the window covers the bucket-aligned range
            // [bucket(cycle) - n + 1, bucket(cycle)].
            let head = cycle / width;
            let oldest = head.saturating_sub(n_buckets as u64 - 1);
            let expect: u64 = events
                .iter()
                .filter(|(c, _)| (c / width) >= oldest)
                .map(|(_, k)| k)
                .sum();
            prop_assert_eq!(ring.sum(), expect);
            let span = (width * n_buckets as u64) as f64;
            prop_assert!((ring.rate() - expect as f64 / span).abs() < 1e-12);
        }
    }
}

// ---------------------------------------------------------------------
// Sum of windows == end-of-run totals (with churn across boundaries)
// ---------------------------------------------------------------------

/// Three jobs on figure1 scale whose lifetimes straddle the 500-cycle
/// telemetry boundaries (at driver cycles 800 and 1300): `early` departs
/// mid-window at 650, `late` reuses its slots from 650 to 900, `steady`
/// runs throughout.
fn churn_spec() -> ScenarioSpec {
    let job = |name: &str, first, count, start_cycle, stop_cycle| JobSpec {
        name: name.into(),
        placement: PlacementSpec::ConsecutiveGroups { first, count, slots: None },
        pattern: PatternSpec::Uniform,
        injection: InjectionSpec::Bernoulli,
        load: 0.25,
        start_cycle,
        stop_cycle,
    };
    ScenarioSpec {
        name: "telemetry-churn".into(),
        params: DragonflyParams::figure1(),
        arrangement: Arrangement::Palmtree,
        mechanisms: vec![MechanismSpec::InTransitMm],
        arbiter: ArbiterPolicy::TransitPriority,
        warmup_cycles: 300,
        measure_cycles: 1_200,
        telemetry: Some(TelemetrySpec { window_cycles: 500, ..TelemetrySpec::default() }),
        jobs: vec![
            job("early", 0, 3, None, Some(650)),
            job("late", 0, 3, Some(650), Some(900)),
            job("steady", 4, 2, None, None),
        ],
        shards: None,
    }
}

#[test]
fn windows_sum_to_run_totals_under_churn() {
    let spec = churn_spec();
    spec.validate(DEFAULT_SEEDS[0]).expect("valid spec");
    let streamed = std::rc::Rc::new(std::cell::Cell::new(0usize));
    let counter = streamed.clone();
    let result = run_scenario_timeline(
        &spec,
        MechanismSpec::InTransitMm,
        DEFAULT_SEEDS[0],
        Box::new(move |_| counter.set(counter.get() + 1)),
    )
    .expect("run");
    let rows = result.timeline.as_ref().expect("telemetry on -> timeline present");
    assert_eq!(streamed.get(), rows.len(), "sink saw every window exactly once");

    // Gap-free, zero-based windows spanning exactly the measurement
    // phase (driver cycles 300..1500), the tail one partial.
    assert_eq!(rows.len(), 3, "1200 cycles / 500-cycle windows = 2 full + 1 partial");
    assert_eq!(rows[0].start_cycle, 300);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.window as usize, i);
        assert!(row.end_cycle > row.start_cycle);
        if i > 0 {
            assert_eq!(row.start_cycle, rows[i - 1].end_cycle);
        }
    }
    assert_eq!(rows.last().unwrap().end_cycle, 1_500);

    // Network totals: the windowed deltas must add back up to the
    // run-level counters, partial tail included.
    let injected: u64 = rows.iter().map(|r| r.injected_packets).sum();
    let delivered: u64 = rows.iter().map(|r| r.delivered_packets).sum();
    assert_eq!(injected, result.injected_per_router.iter().sum::<u64>());
    assert_eq!(delivered, result.delivered_packets);

    // Per-job totals: each job's windowed delivered/offered counts must
    // add up even though `early`/`late` start and stop mid-window.
    for job in &result.per_job {
        let windowed: u64 = rows
            .iter()
            .map(|r| {
                r.jobs
                    .iter()
                    .find(|j| j.job == job.job)
                    .expect("every window reports every job")
                    .delivered_packets
            })
            .sum();
        assert_eq!(windowed, job.delivered_packets, "job `{}`", job.job);
    }

    // `steady` owns its nodes exclusively and runs throughout, so its
    // node-level injection deltas are live in every window. (`early` and
    // `late` time-share slots, so their per-node injection columns
    // overlap by design — only their sink-side delivered counts above
    // are exact per job.)
    for row in rows.iter() {
        let steady = row.jobs.iter().find(|j| j.job == "steady").unwrap();
        assert!(
            steady.injected_packets > 0,
            "steady idle in window {} despite running throughout",
            row.window
        );
    }
}

// ---------------------------------------------------------------------
// Telemetry must not perturb the simulation (golden on/off equality)
// ---------------------------------------------------------------------

/// `scenario --quick` summary digest with telemetry forced on or off.
fn summary_digest(name: &str, telemetry: Option<TelemetrySpec>) -> String {
    let mut spec = quick_spec(name);
    spec.telemetry = telemetry;
    let result = run_scenario(&spec, &[DEFAULT_SEEDS[0]]).expect("run scenario");
    let json = serde_json::to_string_pretty(&result.summary()).expect("serialize summary");
    md5_hex(json.as_bytes())
}

#[test]
fn telemetry_on_off_summaries_are_bit_identical() {
    let window = Some(TelemetrySpec { window_cycles: 750, ..TelemetrySpec::default() });
    for name in ["interference_advc_vs_uniform.json", "paper_job_anatomy.json"] {
        assert_eq!(
            summary_digest(name, None),
            summary_digest(name, window),
            "telemetry recording changed simulation behavior in {name}"
        );
    }
}

// ---------------------------------------------------------------------
// The paper-level signal, now time-resolved
// ---------------------------------------------------------------------

/// Victim throughput per window for one mechanism on the bundled
/// interference scenario (quick protocol, 1000-cycle windows).
fn victim_trajectory(mechanism: MechanismSpec) -> Vec<f64> {
    let mut spec = quick_spec("interference_advc_vs_uniform.json");
    spec.telemetry = Some(TelemetrySpec { window_cycles: 1_000, ..TelemetrySpec::default() });
    let result =
        run_scenario_timeline(&spec, mechanism, DEFAULT_SEEDS[0], Box::new(|_| {}))
            .expect("run");
    result
        .timeline
        .expect("timeline present")
        .iter()
        .map(|r| r.jobs.iter().find(|j| j.job == "victim").expect("victim job").throughput)
        .collect()
}

#[test]
fn victim_windowed_throughput_collapses_under_crg_but_not_oblivious() {
    let crg = victim_trajectory(MechanismSpec::InTransitCrg);
    let obl = victim_trajectory(MechanismSpec::ObliviousCrg);
    assert_eq!(crg.len(), 4, "4000 measured cycles / 1000-cycle windows");
    assert_eq!(obl.len(), 4);
    let head = |t: &[f64]| (t[0] + t[1]) / 2.0;
    let tail = |t: &[f64]| (t[2] + t[3]) / 2.0;

    // In-transit CRG: transit priority progressively starves the
    // uniform victim as the adversarial aggressor fills the escape
    // paths — the back half of the run is visibly worse than the front
    // (measured ~12% at this seed; 7% leaves noise margin).
    assert!(
        tail(&crg) < 0.93 * head(&crg),
        "expected windowed starvation onset under In-Trns-CRG: head {:.4} tail {:.4}",
        head(&crg),
        tail(&crg),
    );

    // Oblivious CRG: no transit priority feedback loop, so the victim's
    // windowed throughput stays flat (within 5%).
    assert!(
        tail(&obl) > 0.95 * head(&obl),
        "expected flat windowed throughput under Obl-CRG: head {:.4} tail {:.4}",
        head(&obl),
        tail(&obl),
    );

    // And the victim is strictly better off under oblivious routing in
    // every single window, not just on average.
    for (w, (c, o)) in crg.iter().zip(&obl).enumerate() {
        assert!(o > c, "window {w}: oblivious {o:.4} <= in-transit {c:.4}");
    }
}
