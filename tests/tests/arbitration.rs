//! Arbitration-policy effects, isolated with MIN routing under ADV+1:
//! every packet of a group funnels through the exit router, so its
//! injection competes head-on with the whole group's transit.

use dragonfly_core::df_engine::ArbiterPolicy;
use dragonfly_core::df_routing::MechanismSpec;
use dragonfly_core::df_traffic::PatternSpec;
use dragonfly_core::prelude::*;
use integration_tests::{bottleneck_vs_rest, tiny_config};

fn adv1_min(arbiter: ArbiterPolicy) -> RunResult {
    // ADV+1 with MIN overloads the single exit link per group; the exit
    // router's own nodes contend with 3 transit routers' traffic.
    run_single(&tiny_config(
        MechanismSpec::Min,
        arbiter,
        PatternSpec::Adversarial { offset: 1 },
        0.4,
    ))
}

#[test]
fn transit_priority_disadvantages_the_exit_router() {
    let params = DragonflyParams::figure1();
    let prio = adv1_min(ArbiterPolicy::TransitPriority);
    let rr = adv1_min(ArbiterPolicy::RoundRobin);
    let (b_prio, rest_prio) = bottleneck_vs_rest(&prio, &params);
    let (b_rr, rest_rr) = bottleneck_vs_rest(&rr, &params);
    // Under transit priority the exit router's share must be lower than
    // under round-robin (both relative to their group peers).
    let share_prio = b_prio / rest_prio;
    let share_rr = b_rr / rest_rr;
    assert!(
        share_prio < share_rr,
        "transit priority must reduce the exit router's injection share: \
         {share_prio:.3} (priority) vs {share_rr:.3} (round-robin)"
    );
}

#[test]
fn age_based_keeps_exit_router_close_to_peers() {
    let params = DragonflyParams::figure1();
    let age = adv1_min(ArbiterPolicy::AgeBased);
    let (b, rest) = bottleneck_vs_rest(&age, &params);
    let prio = adv1_min(ArbiterPolicy::TransitPriority);
    let (bp, restp) = bottleneck_vs_rest(&prio, &params);
    assert!(
        b / rest > bp / restp,
        "age arbitration should serve the exit router better than transit \
         priority: {:.3} vs {:.3}",
        b / rest,
        bp / restp
    );
}

#[test]
fn arbitration_does_not_change_uniform_throughput_materially() {
    // Under UN at moderate load the arbiter barely matters — accepted
    // load must match offered for all three policies.
    for arbiter in [
        ArbiterPolicy::RoundRobin,
        ArbiterPolicy::TransitPriority,
        ArbiterPolicy::AgeBased,
    ] {
        let r = run_single(&tiny_config(
            MechanismSpec::Min,
            arbiter,
            PatternSpec::Uniform,
            0.3,
        ));
        assert!(
            (r.throughput - 0.3).abs() < 0.03,
            "{arbiter:?}: UN throughput {}",
            r.throughput
        );
    }
}

#[test]
fn congestion_signal_variants_all_deliver() {
    use dragonfly_core::df_engine::{EngineConfig, Network, NullSink};
    use dragonfly_core::df_routing::{CongestionSignal, GlobalMisrouting, InTransit};
    use dragonfly_core::df_topology::{Arrangement, NodeId, Topology};

    let params = DragonflyParams::figure1();
    for signal in [
        CongestionSignal::VcCredits,
        CongestionSignal::OutputBuffer,
        CongestionSignal::Combined,
    ] {
        let topo = Topology::new(params, Arrangement::Palmtree);
        let cfg = EngineConfig::paper(ArbiterPolicy::TransitPriority, 3);
        let policy = InTransit::new(topo.clone(), &cfg, GlobalMisrouting::Mm, 5)
            .with_signal(signal);
        let mut net = Network::new(topo, cfg, policy, NullSink);
        let mut pattern =
            PatternSpec::AdvConsecutive { spread: None }.build(params, 11);
        let mut offered = 0u64;
        for _ in 0..400 {
            for n in 0..params.nodes() {
                if n % 3 == 0 {
                    let src = NodeId(n);
                    let dst = pattern.dest(src);
                    if net.offer(src, dst) {
                        offered += 1;
                    }
                }
            }
            net.step();
        }
        assert!(net.drain(200_000), "{signal:?} must drain");
        assert_eq!(net.counters().delivered_packets, offered, "{signal:?}");
    }
}

/// The LRU escape variant's selection is a deterministic rotation: with
/// every CRG candidate uncongested and a congested minimal port, repeated
/// decisions at the same router cycle through the global ports in index
/// order (cold start: j = 0, 1, …, h-1, then around again).
#[test]
fn lru_escape_rotates_candidates_deterministically() {
    use dragonfly_core::df_engine::{
        EngineConfig, Network, NullSink, PacketHeader, RouteInfo, RoutingPolicy,
    };
    use dragonfly_core::df_routing::{GlobalMisrouting, InTransit};
    use dragonfly_core::df_topology::{
        Arrangement, GroupId, NodeId, PortLayout, RouterId, Topology,
    };

    let params = DragonflyParams::figure1();
    let topo = Topology::new(params, Arrangement::Palmtree);
    let me = RouterId(0);

    // A destination group reached through *another* router of group 0, so
    // router 0's minimal port is local (and congestible) while both of its
    // own global ports stay idle — every CRG escape candidate is open.
    let behind_me = [
        topo.global_port_target_group(me, 0),
        topo.global_port_target_group(me, 1),
    ];
    let dst_group = (1..params.groups())
        .map(GroupId)
        .find(|g| !behind_me.contains(g))
        .expect("figure1 has groups beyond router 0's own global links");
    let (exit, _) = topo.exit_to_group(GroupId(0), dst_group);
    assert_ne!(exit, me, "destination group must not sit behind router 0");
    let dst = NodeId(dst_group.0 * params.a * params.p);

    // Saturate router 0's local port toward the exit router: both of its
    // nodes inject minimally-routed traffic to the destination group at
    // full load, far above the 1 phit/cycle the local link drains.
    let cfg = EngineConfig::paper(ArbiterPolicy::TransitPriority, 3);
    let min_policy = MechanismSpec::Min.build(topo.clone(), &cfg, 5);
    let mut net = Network::new(topo.clone(), cfg, min_policy, NullSink);
    for _ in 0..1_500 {
        net.offer(NodeId(0), dst);
        net.offer(NodeId(1), dst);
        net.step();
    }

    // Probe a standalone LRU policy against the congested router state:
    // the same head re-decided h+2 times must walk the global ports in
    // index order, wrapping around.
    let mut lru = InTransit::new(topo, &cfg, GlobalMisrouting::Crg, 5).with_lru_escape();
    let hdr = PacketHeader { id: 0, src: NodeId(0), dst, size: 8, gen_cycle: 0 };
    let info = RouteInfo::new(GroupId(0));
    let in_port = params.injection_port(0);
    for probe in 0..(params.h + 2) {
        let d = lru.route(net.router(me), in_port, hdr, info);
        assert_eq!(
            d.out_port,
            params.global_port(probe % params.h),
            "probe {probe}: LRU escape must rotate global candidates in order"
        );
        assert!(
            d.info.global_misrouted,
            "probe {probe}: a congested minimal port must trigger the escape"
        );
    }
}

/// Table-row check for the LRU variant on the bundled interference
/// scenario (quick protocol, default seed): within the ADVc aggressor
/// job, its injection unfairness lands strictly between oblivious CRG
/// (fair, no in-transit feedback loop) and in-transit CRG (the paper's
/// unfair mechanism) on both reported metrics.
#[test]
fn lru_variant_unfairness_sits_between_crg_variants() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../scenarios/interference_advc_vs_uniform.json"
    );
    let mut spec = ScenarioSpec::load(path).expect("load interference scenario");
    spec.mechanisms = vec![
        MechanismSpec::ObliviousCrg,
        MechanismSpec::InTransitCrg,
        MechanismSpec::InTransitLru,
    ];
    spec.warmup_cycles = spec.warmup_cycles.min(2_000);
    spec.measure_cycles = spec.measure_cycles.min(4_000);
    let result = run_scenario(&spec, &[DEFAULT_SEEDS[0]]).expect("run scenario");

    let aggressor = |label: &str| {
        let m = result
            .mechanisms
            .iter()
            .find(|m| m.mechanism == label)
            .unwrap_or_else(|| panic!("mechanism {label} missing"));
        let j = m
            .per_job
            .iter()
            .find(|j| j.job == "aggressor")
            .expect("aggressor job present");
        (j.cov, j.max_min_ratio)
    };
    let (cov_obl, mm_obl) = aggressor("Obl-CRG");
    let (cov_crg, mm_crg) = aggressor("In-Trns-CRG");
    let (cov_lru, mm_lru) = aggressor("In-Trns-LRU");

    assert!(
        cov_obl < cov_lru && cov_lru < cov_crg,
        "ADVc-job injection CoV must order Obl-CRG < In-Trns-LRU < In-Trns-CRG, \
         got {cov_obl:.4} / {cov_lru:.4} / {cov_crg:.4}"
    );
    assert!(
        mm_obl < mm_lru && mm_lru < mm_crg,
        "ADVc-job max/min ratio must order Obl-CRG < In-Trns-LRU < In-Trns-CRG, \
         got {mm_obl:.4} / {mm_lru:.4} / {mm_crg:.4}"
    );
}

#[test]
fn reevaluation_mode_delivers() {
    use dragonfly_core::df_engine::{EngineConfig, Network, NullSink};
    use dragonfly_core::df_routing::{GlobalMisrouting, InTransit};
    use dragonfly_core::df_topology::{Arrangement, NodeId, Topology};

    let params = DragonflyParams::figure1();
    let topo = Topology::new(params, Arrangement::Palmtree);
    let cfg = EngineConfig::paper(ArbiterPolicy::TransitPriority, 3);
    let policy = InTransit::new(topo.clone(), &cfg, GlobalMisrouting::Crg, 5)
        .with_reevaluation(true);
    let mut net = Network::new(topo, cfg, policy, NullSink);
    let mut pattern = PatternSpec::Adversarial { offset: 1 }.build(params, 3);
    let mut offered = 0u64;
    for _ in 0..500 {
        for n in (0..params.nodes()).step_by(2) {
            let src = NodeId(n);
            let dst = pattern.dest(src);
            if net.offer(src, dst) {
                offered += 1;
            }
        }
        net.step();
    }
    assert!(net.drain(200_000));
    assert_eq!(net.counters().delivered_packets, offered);
}
