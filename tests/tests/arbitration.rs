//! Arbitration-policy effects, isolated with MIN routing under ADV+1:
//! every packet of a group funnels through the exit router, so its
//! injection competes head-on with the whole group's transit.

use dragonfly_core::df_engine::ArbiterPolicy;
use dragonfly_core::df_routing::MechanismSpec;
use dragonfly_core::df_traffic::PatternSpec;
use dragonfly_core::prelude::*;
use integration_tests::{bottleneck_vs_rest, tiny_config};

fn adv1_min(arbiter: ArbiterPolicy) -> RunResult {
    // ADV+1 with MIN overloads the single exit link per group; the exit
    // router's own nodes contend with 3 transit routers' traffic.
    run_single(&tiny_config(
        MechanismSpec::Min,
        arbiter,
        PatternSpec::Adversarial { offset: 1 },
        0.4,
    ))
}

#[test]
fn transit_priority_disadvantages_the_exit_router() {
    let params = DragonflyParams::figure1();
    let prio = adv1_min(ArbiterPolicy::TransitPriority);
    let rr = adv1_min(ArbiterPolicy::RoundRobin);
    let (b_prio, rest_prio) = bottleneck_vs_rest(&prio, &params);
    let (b_rr, rest_rr) = bottleneck_vs_rest(&rr, &params);
    // Under transit priority the exit router's share must be lower than
    // under round-robin (both relative to their group peers).
    let share_prio = b_prio / rest_prio;
    let share_rr = b_rr / rest_rr;
    assert!(
        share_prio < share_rr,
        "transit priority must reduce the exit router's injection share: \
         {share_prio:.3} (priority) vs {share_rr:.3} (round-robin)"
    );
}

#[test]
fn age_based_keeps_exit_router_close_to_peers() {
    let params = DragonflyParams::figure1();
    let age = adv1_min(ArbiterPolicy::AgeBased);
    let (b, rest) = bottleneck_vs_rest(&age, &params);
    let prio = adv1_min(ArbiterPolicy::TransitPriority);
    let (bp, restp) = bottleneck_vs_rest(&prio, &params);
    assert!(
        b / rest > bp / restp,
        "age arbitration should serve the exit router better than transit \
         priority: {:.3} vs {:.3}",
        b / rest,
        bp / restp
    );
}

#[test]
fn arbitration_does_not_change_uniform_throughput_materially() {
    // Under UN at moderate load the arbiter barely matters — accepted
    // load must match offered for all three policies.
    for arbiter in [
        ArbiterPolicy::RoundRobin,
        ArbiterPolicy::TransitPriority,
        ArbiterPolicy::AgeBased,
    ] {
        let r = run_single(&tiny_config(
            MechanismSpec::Min,
            arbiter,
            PatternSpec::Uniform,
            0.3,
        ));
        assert!(
            (r.throughput - 0.3).abs() < 0.03,
            "{arbiter:?}: UN throughput {}",
            r.throughput
        );
    }
}

#[test]
fn congestion_signal_variants_all_deliver() {
    use dragonfly_core::df_engine::{EngineConfig, Network, NullSink};
    use dragonfly_core::df_routing::{CongestionSignal, GlobalMisrouting, InTransit};
    use dragonfly_core::df_topology::{Arrangement, NodeId, Topology};

    let params = DragonflyParams::figure1();
    for signal in [
        CongestionSignal::VcCredits,
        CongestionSignal::OutputBuffer,
        CongestionSignal::Combined,
    ] {
        let topo = Topology::new(params, Arrangement::Palmtree);
        let cfg = EngineConfig::paper(ArbiterPolicy::TransitPriority, 3);
        let policy = InTransit::new(topo.clone(), &cfg, GlobalMisrouting::Mm, 5)
            .with_signal(signal);
        let mut net = Network::new(topo, cfg, policy, NullSink);
        let mut pattern =
            PatternSpec::AdvConsecutive { spread: None }.build(params, 11);
        let mut offered = 0u64;
        for _ in 0..400 {
            for n in 0..params.nodes() {
                if n % 3 == 0 {
                    let src = NodeId(n);
                    let dst = pattern.dest(src);
                    if net.offer(src, dst) {
                        offered += 1;
                    }
                }
            }
            net.step();
        }
        assert!(net.drain(200_000), "{signal:?} must drain");
        assert_eq!(net.counters().delivered_packets, offered, "{signal:?}");
    }
}

#[test]
fn reevaluation_mode_delivers() {
    use dragonfly_core::df_engine::{EngineConfig, Network, NullSink};
    use dragonfly_core::df_routing::{GlobalMisrouting, InTransit};
    use dragonfly_core::df_topology::{Arrangement, NodeId, Topology};

    let params = DragonflyParams::figure1();
    let topo = Topology::new(params, Arrangement::Palmtree);
    let cfg = EngineConfig::paper(ArbiterPolicy::TransitPriority, 3);
    let policy = InTransit::new(topo.clone(), &cfg, GlobalMisrouting::Crg, 5)
        .with_reevaluation(true);
    let mut net = Network::new(topo, cfg, policy, NullSink);
    let mut pattern = PatternSpec::Adversarial { offset: 1 }.build(params, 3);
    let mut offered = 0u64;
    for _ in 0..500 {
        for n in (0..params.nodes()).step_by(2) {
            let src = NodeId(n);
            let dst = pattern.dest(src);
            if net.offer(src, dst) {
                offered += 1;
            }
        }
        net.step();
    }
    assert!(net.drain(200_000));
    assert_eq!(net.counters().delivered_packets, offered);
}
