//! Packet-arena integrity and determinism: after any full drain the slab
//! holds zero live slots (no leaks), slot reuse keeps steady-state runs
//! allocation-free, and — property-tested across mechanisms, patterns,
//! loads and seeds — slab reuse is deterministic: the same seed yields a
//! bit-identical serialized `RunResult`.

use dragonfly_core::df_engine::{ArbiterPolicy, EngineConfig, Network, NullSink};
use dragonfly_core::df_routing::MechanismSpec;
use dragonfly_core::prelude::*;
use proptest::prelude::*;

fn figure1_net(
    mechanism: MechanismSpec,
) -> Network<Box<dyn dragonfly_core::df_engine::RoutingPolicy>, NullSink> {
    let topo = Topology::new(DragonflyParams::figure1(), Arrangement::Palmtree);
    let cfg = EngineConfig::paper(ArbiterPolicy::TransitPriority, 4);
    let policy = mechanism.build(topo.clone(), &cfg, 7);
    Network::new(topo, cfg, policy, NullSink)
}

#[test]
fn drained_network_leaves_no_live_arena_slots() {
    for mechanism in [
        MechanismSpec::Min,
        MechanismSpec::ObliviousCrg,
        MechanismSpec::SourceCrg,
    ] {
        let mut net = figure1_net(mechanism);
        let nodes = net.topology().params().nodes();
        for round in 0..30u32 {
            for n in 0..nodes {
                if (n + round) % 4 == 0 {
                    net.offer(NodeId(n), NodeId((n * 13 + round + 1) % nodes));
                }
            }
            net.step();
        }
        assert!(net.drain(100_000), "{mechanism:?} must drain");
        assert_eq!(
            net.arena_live(),
            0,
            "{mechanism:?}: arena leaked packets after drain"
        );
        assert_eq!(net.in_flight(), 0);
    }
}

#[test]
fn arena_tracks_in_flight_exactly() {
    let mut net = figure1_net(MechanismSpec::InTransitMm);
    let nodes = net.topology().params().nodes();
    for round in 0..50u32 {
        for n in (0..nodes).step_by(2) {
            net.offer(NodeId(n), NodeId((n + round * 5 + 1) % nodes));
        }
        net.step();
        assert_eq!(
            net.arena_live() as u64,
            net.in_flight(),
            "live slots must equal in-flight packets at cycle {}",
            net.cycle()
        );
    }
    assert!(net.drain(100_000));
    assert_eq!(net.arena_live(), 0);
}

#[test]
fn steady_state_reuses_slots_without_growth() {
    // Two identical waves separated by a drain: the second must fit
    // entirely in slots freed by the first.
    let mut net = figure1_net(MechanismSpec::Min);
    let nodes = net.topology().params().nodes();
    fn wave(
        net: &mut Network<Box<dyn dragonfly_core::df_engine::RoutingPolicy>, NullSink>,
        nodes: u32,
    ) {
        for round in 0..25u32 {
            for n in (0..nodes).step_by(3) {
                net.offer(NodeId(n), NodeId((n + 11 + round) % nodes));
            }
            net.step();
        }
        assert!(net.drain(50_000));
    }
    wave(&mut net, nodes);
    let warm = net.arena_capacity();
    wave(&mut net, nodes);
    assert_eq!(
        net.arena_capacity(),
        warm,
        "second wave allocated fresh slots instead of reusing the slab"
    );
}

// Slab reuse must not leak nondeterminism into results: running the
// exact same configuration twice gives a bit-identical RunResult
// (compared as serialized JSON, so every float and counter matters).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn same_seed_bit_identical_run_result(
        mech_idx in 0usize..4,
        pattern_idx in 0usize..3,
        load in 1u32..7,
        seed in 1u64..500,
    ) {
        let mechanism = [
            MechanismSpec::Min,
            MechanismSpec::ObliviousRrg,
            MechanismSpec::SourceCrg,
            MechanismSpec::InTransitCrg,
        ][mech_idx];
        let pattern = [
            PatternSpec::Uniform,
            PatternSpec::Adversarial { offset: 1 },
            PatternSpec::AdvConsecutive { spread: None },
        ][pattern_idx].clone();
        let mut cfg = SimConfig::small(
            mechanism,
            ArbiterPolicy::TransitPriority,
            pattern,
            load as f64 / 10.0,
        );
        cfg.params = DragonflyParams::figure1();
        cfg.warmup_cycles = 300;
        cfg.measure_cycles = 700;
        cfg.seed = seed;
        let a = serde_json::to_string(&run_single(&cfg)).unwrap();
        let b = serde_json::to_string(&run_single(&cfg)).unwrap();
        prop_assert_eq!(a, b, "same seed must reproduce bit-identically");
    }
}
