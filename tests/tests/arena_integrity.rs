//! Packet-arena integrity and determinism: after any full drain the slab
//! holds zero live slots (no leaks), slot reuse keeps steady-state runs
//! allocation-free, and — property-tested across mechanisms, patterns,
//! loads and seeds — slab reuse is deterministic: the same seed yields a
//! bit-identical serialized `RunResult`. Also covers the SoA split
//! (hot `eligible_at`/`decision` lanes vs the cold slot must stay views
//! of one packet), the intrusive free list (LIFO reuse without growth,
//! links threaded through vacant hot slots), and the scheduling work
//! lists (active-node/router bitsets must match a full network scan
//! every cycle).

use dragonfly_core::df_engine::{
    ArbiterPolicy, Decision, EngineConfig, Network, NullSink, Packet, PacketArena, PacketId,
    RouteInfo,
};
use dragonfly_core::df_routing::MechanismSpec;
use dragonfly_core::prelude::*;
use proptest::prelude::*;

fn figure1_net(
    mechanism: MechanismSpec,
) -> Network<Box<dyn dragonfly_core::df_engine::RoutingPolicy>, NullSink> {
    let topo = Topology::new(DragonflyParams::figure1(), Arrangement::Palmtree);
    let cfg = EngineConfig::paper(ArbiterPolicy::TransitPriority, 4);
    let policy = mechanism.build(topo.clone(), &cfg, 7);
    Network::new(topo, cfg, policy, NullSink)
}

#[test]
fn drained_network_leaves_no_live_arena_slots() {
    for mechanism in [
        MechanismSpec::Min,
        MechanismSpec::ObliviousCrg,
        MechanismSpec::SourceCrg,
    ] {
        let mut net = figure1_net(mechanism);
        let nodes = net.topology().params().nodes();
        for round in 0..30u32 {
            for n in 0..nodes {
                if (n + round) % 4 == 0 {
                    net.offer(NodeId(n), NodeId((n * 13 + round + 1) % nodes));
                }
            }
            net.step();
        }
        assert!(net.drain(100_000), "{mechanism:?} must drain");
        assert_eq!(
            net.arena_live(),
            0,
            "{mechanism:?}: arena leaked packets after drain"
        );
        assert_eq!(net.in_flight(), 0);
    }
}

#[test]
fn arena_tracks_in_flight_exactly() {
    let mut net = figure1_net(MechanismSpec::InTransitMm);
    let nodes = net.topology().params().nodes();
    for round in 0..50u32 {
        for n in (0..nodes).step_by(2) {
            net.offer(NodeId(n), NodeId((n + round * 5 + 1) % nodes));
        }
        net.step();
        assert_eq!(
            net.arena_live() as u64,
            net.in_flight(),
            "live slots must equal in-flight packets at cycle {}",
            net.cycle()
        );
    }
    assert!(net.drain(100_000));
    assert_eq!(net.arena_live(), 0);
}

#[test]
fn steady_state_reuses_slots_without_growth() {
    // Two identical waves separated by a drain: the second must fit
    // entirely in slots freed by the first.
    let mut net = figure1_net(MechanismSpec::Min);
    let nodes = net.topology().params().nodes();
    fn wave(
        net: &mut Network<Box<dyn dragonfly_core::df_engine::RoutingPolicy>, NullSink>,
        nodes: u32,
    ) {
        for round in 0..25u32 {
            for n in (0..nodes).step_by(3) {
                net.offer(NodeId(n), NodeId((n + 11 + round) % nodes));
            }
            net.step();
        }
        assert!(net.drain(50_000));
    }
    wave(&mut net, nodes);
    let warm = net.arena_capacity();
    wave(&mut net, nodes);
    assert_eq!(
        net.arena_capacity(),
        warm,
        "second wave allocated fresh slots instead of reusing the slab"
    );
}

fn probe_packet(seq: u64) -> Packet {
    Packet::new(seq, NodeId(0), NodeId(1), 8, seq * 10, GroupId(0))
}

#[test]
fn soa_hot_and_cold_lanes_stay_one_packet() {
    // Whatever is written through the hot accessors (eligible_at,
    // decision) and the cold slot must read back consistently, both
    // through the fine-grained accessors and the joined snapshot.
    let mut arena = PacketArena::new();
    let a = arena.insert(probe_packet(1));
    let b = arena.insert(probe_packet(2));
    // Insertion seeds the hot lanes from the packet.
    assert_eq!(arena.eligible_at(a), 10);
    assert_eq!(arena.eligible_at(b), 20);
    assert!(arena.decision(a).is_none());
    // Hot writes on one slot must not bleed into the neighbour.
    arena.set_eligible_at(a, 555);
    let d = Decision { out_port: Port(3), out_vc: 1, info: RouteInfo::new(GroupId(0)) };
    arena.set_decision(a, d);
    assert_eq!(arena.eligible_at(a), 555);
    assert_eq!(arena.eligible_at(b), 20);
    assert!(arena.decision(b).is_none());
    assert_eq!(arena.decision(a).unwrap().out_port, Port(3));
    // Cold writes stay cold: hot lanes unchanged.
    arena.cold_mut(a).waits.global = 99;
    arena.cold_mut(a).traversal = 7;
    assert_eq!(arena.eligible_at(a), 555);
    // The snapshot joins both halves.
    let snap = arena.snapshot(a);
    assert_eq!(snap.header.id, 1);
    assert_eq!(snap.eligible_at, 555);
    assert_eq!(snap.waits.global, 99);
    assert_eq!(snap.traversal, 7);
    assert_eq!(snap.decision.unwrap().out_vc, 1);
    // take_decision clears the hot lane without touching the cold slot.
    assert_eq!(arena.take_decision(a).unwrap().out_port, Port(3));
    assert!(arena.decision(a).is_none());
    assert_eq!(arena.cold(a).waits.global, 99);
}

#[test]
fn intrusive_free_list_reuses_lifo_without_growth() {
    // The free links live inside the vacant hot slots; reuse must be
    // LIFO and must never grow the slab while vacancies exist, across
    // interleaved insert/free waves.
    let mut arena = PacketArena::new();
    let ids: Vec<PacketId> = (0..6).map(|i| arena.insert(probe_packet(i))).collect();
    assert_eq!(arena.capacity(), 6);
    arena.free(ids[2]);
    arena.free(ids[0]);
    arena.free(ids[5]);
    assert_eq!(arena.live(), 3);
    // LIFO: most recently freed first.
    assert_eq!(arena.insert(probe_packet(10)), ids[5]);
    assert_eq!(arena.insert(probe_packet(11)), ids[0]);
    // Freeing while the chain is non-empty pushes on top.
    arena.free(ids[3]);
    assert_eq!(arena.insert(probe_packet(12)), ids[3]);
    assert_eq!(arena.insert(probe_packet(13)), ids[2]);
    assert_eq!(arena.capacity(), 6, "reuse must not grow the slab");
    // Chain exhausted: the next insert grows.
    assert_eq!(arena.insert(probe_packet(14)), PacketId(6));
    assert_eq!(arena.capacity(), 7);
    assert_eq!(arena.live(), 7);
    // Reused slots carry the fresh packet, not stale state.
    assert_eq!(arena.cold(ids[3]).header.id, 12);
    assert_eq!(arena.eligible_at(ids[3]), 120);
    assert!(arena.decision(ids[3]).is_none());
}

#[test]
fn work_lists_match_full_scan_every_cycle() {
    // Shadow test for the active-node / active-router / ready-output
    // work lists: at every cycle of a figure1-scale run (load ramp,
    // steady state, and drain), visiting exactly the flagged entities
    // must be equivalent to the full 0..routers / 0..nodes scans the
    // lists replaced — i.e. every unflagged entity is verifiably idle.
    for mechanism in [MechanismSpec::Min, MechanismSpec::InTransitCrg] {
        let mut net = figure1_net(mechanism);
        let nodes = net.topology().params().nodes();
        net.assert_work_lists_match_full_scan();
        for round in 0..60u32 {
            for n in 0..nodes {
                if (n + round) % 3 == 0 {
                    net.offer(NodeId(n), NodeId((n * 17 + round + 1) % nodes));
                }
            }
            net.step();
            net.assert_work_lists_match_full_scan();
        }
        for _ in 0..3000 {
            if net.in_flight() == 0 {
                break;
            }
            net.step();
            net.assert_work_lists_match_full_scan();
        }
        assert_eq!(net.in_flight(), 0, "{mechanism:?} must drain");
        net.assert_work_lists_match_full_scan();
    }
}

// Slab reuse must not leak nondeterminism into results: running the
// exact same configuration twice gives a bit-identical RunResult
// (compared as serialized JSON, so every float and counter matters).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn same_seed_bit_identical_run_result(
        mech_idx in 0usize..4,
        pattern_idx in 0usize..3,
        load in 1u32..7,
        seed in 1u64..500,
    ) {
        let mechanism = [
            MechanismSpec::Min,
            MechanismSpec::ObliviousRrg,
            MechanismSpec::SourceCrg,
            MechanismSpec::InTransitCrg,
        ][mech_idx];
        let pattern = [
            PatternSpec::Uniform,
            PatternSpec::Adversarial { offset: 1 },
            PatternSpec::AdvConsecutive { spread: None },
        ][pattern_idx].clone();
        let mut cfg = SimConfig::small(
            mechanism,
            ArbiterPolicy::TransitPriority,
            pattern,
            load as f64 / 10.0,
        );
        cfg.params = DragonflyParams::figure1();
        cfg.warmup_cycles = 300;
        cfg.measure_cycles = 700;
        cfg.seed = seed;
        let a = serde_json::to_string(&run_single(&cfg)).unwrap();
        let b = serde_json::to_string(&run_single(&cfg)).unwrap();
        prop_assert_eq!(a, b, "same seed must reproduce bit-identically");
    }
}
