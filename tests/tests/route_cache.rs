#![recursion_limit = "512"]
//! Route-decision-cache equivalence properties.
//!
//! The engine's route cache (adaptive decision reuse, blocked-head
//! parking, pipeline head-sleep) is a pure scheduling optimization: it
//! must never change a simulation result. These tests drive `Network`
//! directly with randomized churn schedules across every mechanism
//! family — including in-transit adaptive with per-cycle re-evaluation,
//! where cached decisions are actually reused — and assert:
//!
//! * cache-on and cache-off runs deliver bit-identical record streams;
//! * disabling and re-enabling the cache mid-run (a cold cache restart)
//!   is also bit-identical to an uninterrupted warm-cache run;
//! * the cache's internal invariants hold every cycle
//!   (`assert_route_cache_coherent`, which in debug builds also
//!   recomputes every reused decision from scratch).

use dragonfly_core::df_engine::{
    ArbiterPolicy, DeliveredRecord, EngineConfig, Network, RoutingPolicy,
};
use dragonfly_core::df_routing::{GlobalMisrouting, InTransit, MechanismSpec};
use dragonfly_core::df_topology::{Arrangement, DragonflyParams, NodeId, Topology};
use proptest::prelude::*;

/// Tiny deterministic generator for offer schedules (keeps the offer
/// stream identical across the compared runs without extra deps).
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One load phase of a churn schedule: `cycles` cycles at `load_milli`
/// offered load (per node, per mille) under destination `pattern`
/// (0 = uniform, 1 = next-group shift, 2 = hotspot on node 0's group).
type Phase = (u8, u16, u8);

fn arb_schedule() -> impl Strategy<Value = Vec<Phase>> {
    prop::collection::vec((1u8..40, 0u16..350, 0u8..3), 1..6)
}

/// How the route cache is driven over a run.
#[derive(Clone, Copy)]
enum CacheMode {
    /// Enabled throughout (the default), with periodic coherence checks.
    On,
    /// Disabled before the first cycle.
    Off,
    /// Disabled and re-enabled every `0` cycles — a cold cache restart
    /// in the middle of congested traffic.
    Churn(u64),
}

/// Run `policy` over `schedule` with offers generated from `seed`, and
/// return the delivered-record stream serialized to JSON (records carry
/// every latency/wait/hop field, so string equality is bit-identity).
fn run(
    topo: Topology,
    cfg: EngineConfig,
    policy: Box<dyn RoutingPolicy>,
    schedule: &[Phase],
    seed: u64,
    mode: CacheMode,
) -> String {
    let params = *topo.params();
    let recs = std::cell::RefCell::new(Vec::<DeliveredRecord>::new());
    {
        let sink = |r: &DeliveredRecord| recs.borrow_mut().push(*r);
        let mut net = Network::new(topo, cfg, policy, sink);
        if let CacheMode::Off = mode {
            net.set_route_cache(false);
        }
        let mut rng = XorShift::new(seed);
        let nodes = params.nodes() as u64;
        let per_group = (params.a * params.p) as u64;
        let groups = params.groups() as u64;
        let mut t = 0u64;
        for &(cycles, load_milli, pattern) in schedule {
            for _ in 0..cycles {
                t += 1;
                if let CacheMode::Churn(k) = mode {
                    if t.is_multiple_of(k) {
                        net.set_route_cache(false);
                        net.set_route_cache(true);
                    }
                }
                for n in 0..nodes {
                    if rng.below(1000) < load_milli as u64 {
                        let dst = match pattern {
                            0 => rng.below(nodes),
                            1 => {
                                let g = n / per_group;
                                ((g + 1) % groups) * per_group + rng.below(per_group)
                            }
                            _ => rng.below(per_group),
                        };
                        net.offer(NodeId(n as u32), NodeId(dst as u32));
                    }
                }
                net.step();
                if matches!(mode, CacheMode::On) && t.is_multiple_of(5) {
                    net.assert_route_cache_coherent();
                    net.assert_work_lists_match_full_scan();
                }
            }
        }
        assert!(net.drain(300_000), "network must drain");
        net.assert_route_cache_coherent();
    }
    serde_json::to_string(&recs.into_inner()).expect("serialize records")
}

fn small_topo() -> (Topology, DragonflyParams) {
    let params = DragonflyParams::figure1();
    (Topology::new(params, Arrangement::Palmtree), params)
}

/// The mechanism families under test, by proptest index. The last two
/// are the adaptive (`with_reevaluation`) variants, where the route
/// cache actually reuses decisions across cycles.
fn build_policy(idx: usize, topo: &Topology, cfg: &EngineConfig, seed: u64) -> Box<dyn RoutingPolicy> {
    const SPECS: [MechanismSpec; 5] = [
        MechanismSpec::Min,
        MechanismSpec::ObliviousCrg,
        MechanismSpec::SourceCrg,
        MechanismSpec::InTransitMm,
        MechanismSpec::InTransitLru,
    ];
    match idx {
        0..=4 => SPECS[idx].build(topo.clone(), cfg, seed),
        5 => Box::new(
            InTransit::new(topo.clone(), cfg, GlobalMisrouting::Crg, seed)
                .with_reevaluation(true),
        ),
        _ => Box::new(
            InTransit::new(topo.clone(), cfg, GlobalMisrouting::Crg, seed)
                .with_lru_escape()
                .with_reevaluation(true),
        ),
    }
}

fn vcs_for_policy(idx: usize) -> u8 {
    // Oblivious/source-adaptive Valiant paths need 4 local VCs.
    if idx == 1 || idx == 2 {
        4
    } else {
        3
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Cache-on (with per-cycle invariant checks) and cache-off runs of
    // the same seed deliver bit-identical record streams, for every
    // mechanism family including per-cycle re-evaluating adaptive ones.
    #[test]
    fn cache_on_equals_cache_off(
        policy_idx in 0usize..7,
        schedule in arb_schedule(),
        seed in 1u64..u64::MAX,
        rr_arbiter in any::<bool>(),
    ) {
        let (topo, _) = small_topo();
        let arbiter = if rr_arbiter { ArbiterPolicy::RoundRobin } else { ArbiterPolicy::TransitPriority };
        let cfg = EngineConfig::paper(arbiter, vcs_for_policy(policy_idx));
        let on = run(
            topo.clone(), cfg,
            build_policy(policy_idx, &topo, &cfg, seed),
            &schedule, seed, CacheMode::On,
        );
        let off = run(
            topo.clone(), cfg,
            build_policy(policy_idx, &topo, &cfg, seed),
            &schedule, seed, CacheMode::Off,
        );
        prop_assert_eq!(on, off, "route cache changed simulation behavior (policy {})", policy_idx);
    }

    // A cold cache restart mid-run (disable + re-enable, flushing all
    // parked state) is bit-identical to an uninterrupted warm cache.
    #[test]
    fn cold_cache_restart_equals_warm(
        policy_idx in 0usize..7,
        schedule in arb_schedule(),
        seed in 1u64..u64::MAX,
        churn_every in 3u64..40,
    ) {
        let (topo, _) = small_topo();
        let cfg = EngineConfig::paper(ArbiterPolicy::TransitPriority, vcs_for_policy(policy_idx));
        let warm = run(
            topo.clone(), cfg,
            build_policy(policy_idx, &topo, &cfg, seed),
            &schedule, seed, CacheMode::On,
        );
        let cold = run(
            topo.clone(), cfg,
            build_policy(policy_idx, &topo, &cfg, seed),
            &schedule, seed, CacheMode::Churn(churn_every),
        );
        prop_assert_eq!(warm, cold, "cold cache restart diverged (policy {})", policy_idx);
    }
}
