//! The paper's qualitative fairness claims (§V), checked at reduced
//! scale: oblivious routing is fair under ADVc; adaptive mechanisms are
//! not; removing transit priority helps; age arbitration helps more.

use dragonfly_core::df_engine::ArbiterPolicy;
use dragonfly_core::df_routing::MechanismSpec;
use dragonfly_core::df_traffic::PatternSpec;
use dragonfly_core::prelude::*;
use integration_tests::small_config;

fn advc() -> PatternSpec {
    PatternSpec::AdvConsecutive { spread: None }
}

#[test]
fn oblivious_is_fair_under_advc() {
    for m in [MechanismSpec::ObliviousRrg, MechanismSpec::ObliviousCrg] {
        let r = run_single(&small_config(m, ArbiterPolicy::TransitPriority, advc(), 0.4));
        assert!(
            r.fairness.cov < 0.05,
            "{} CoV {} should be near zero (paper Table II: ~0.015)",
            m.label(),
            r.fairness.cov
        );
        assert!(r.fairness.max_min_ratio < 1.5);
    }
}

#[test]
fn source_adaptive_is_measurably_unfair_under_advc() {
    let obl = run_single(&small_config(
        MechanismSpec::ObliviousRrg,
        ArbiterPolicy::TransitPriority,
        advc(),
        0.4,
    ));
    for m in [MechanismSpec::SourceRrg, MechanismSpec::SourceCrg] {
        let r = run_single(&small_config(m, ArbiterPolicy::TransitPriority, advc(), 0.4));
        assert!(
            r.fairness.cov > obl.fairness.cov * 3.0,
            "{} CoV {} should clearly exceed oblivious {}",
            m.label(),
            r.fairness.cov,
            obl.fairness.cov
        );
    }
}

#[test]
fn in_transit_crg_starves_bottleneck_with_priority() {
    // The overlap of minimal and CRG non-minimal global links at the
    // bottleneck router plus transit priority is the paper's central
    // unfairness mechanism.
    let r = run_single(&small_config(
        MechanismSpec::InTransitCrg,
        ArbiterPolicy::TransitPriority,
        advc(),
        0.4,
    ));
    // At the reduced scale (h=3) the starvation ratio is noticeably
    // smaller than the paper's full-scale h=6 numbers and fluctuates with
    // the seed around ~3; CoV is the seed-robust signal.
    assert!(
        r.fairness.max_min_ratio > 2.5,
        "In-Trns-CRG Max/Min {} should show starvation",
        r.fairness.max_min_ratio
    );
    assert!(r.fairness.cov > 0.15, "In-Trns-CRG CoV {}", r.fairness.cov);
}

#[test]
fn priority_removal_improves_in_transit_crg_fairness() {
    let with = run_single(&small_config(
        MechanismSpec::InTransitCrg,
        ArbiterPolicy::TransitPriority,
        advc(),
        0.4,
    ));
    let without = run_single(&small_config(
        MechanismSpec::InTransitCrg,
        ArbiterPolicy::RoundRobin,
        advc(),
        0.4,
    ));
    assert!(
        without.fairness.cov < with.fairness.cov,
        "removing priority must improve CoV: {} -> {}",
        with.fairness.cov,
        without.fairness.cov
    );
    assert!(
        without.fairness.min > with.fairness.min,
        "removing priority must raise Min inj: {} -> {}",
        with.fairness.min,
        without.fairness.min
    );
}

#[test]
fn age_arbitration_is_fairer_than_priority_for_in_transit_crg() {
    // The paper's proposed future work: explicit fairness mechanisms.
    let prio = run_single(&small_config(
        MechanismSpec::InTransitCrg,
        ArbiterPolicy::TransitPriority,
        advc(),
        0.4,
    ));
    let age = run_single(&small_config(
        MechanismSpec::InTransitCrg,
        ArbiterPolicy::AgeBased,
        advc(),
        0.4,
    ));
    assert!(
        age.fairness.cov < prio.fairness.cov,
        "age arbitration must beat transit priority on CoV: {} vs {}",
        age.fairness.cov,
        prio.fairness.cov
    );
}

#[test]
fn uniform_traffic_is_fair_for_everyone() {
    for m in [MechanismSpec::Min, MechanismSpec::SourceCrg, MechanismSpec::InTransitMm] {
        let r = run_single(&small_config(
            m,
            ArbiterPolicy::TransitPriority,
            PatternSpec::Uniform,
            0.4,
        ));
        assert!(
            r.fairness.cov < 0.08,
            "{} must be fair under UN: CoV {}",
            m.label(),
            r.fairness.cov
        );
    }
}

#[test]
fn advc_throughput_ranking_matches_paper() {
    // Figure 2c: in-transit adaptive achieves the highest ADVc throughput;
    // source-adaptive underperforms because PB fails to flag the equally-
    // loaded bottleneck links as saturated.
    let int = run_single(&small_config(
        MechanismSpec::InTransitMm,
        ArbiterPolicy::TransitPriority,
        advc(),
        0.5,
    ));
    let src = run_single(&small_config(
        MechanismSpec::SourceCrg,
        ArbiterPolicy::TransitPriority,
        advc(),
        0.5,
    ));
    assert!(
        int.throughput > src.throughput * 1.3,
        "in-transit ({}) must clearly out-accept source-adaptive ({}) under ADVc",
        int.throughput,
        src.throughput
    );
}
