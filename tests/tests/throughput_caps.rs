//! Analytical throughput bounds from the paper (§III): MIN routing is
//! capped at `1/(a·p)` under ADV+1 and `h/(a·p)` under ADVc; non-minimal
//! routing escapes both caps.

use dragonfly_core::df_engine::ArbiterPolicy;
use dragonfly_core::df_routing::MechanismSpec;
use dragonfly_core::df_traffic::PatternSpec;
use dragonfly_core::prelude::*;
use integration_tests::tiny_config;

#[test]
fn min_capped_under_adv1() {
    // figure1: a*p = 8 → cap 0.125 phits/node/cycle.
    let cfg = tiny_config(
        MechanismSpec::Min,
        ArbiterPolicy::TransitPriority,
        PatternSpec::Adversarial { offset: 1 },
        0.6,
    );
    let r = run_single(&cfg);
    assert!(
        r.throughput <= 0.125 * 1.15,
        "ADV+1 MIN throughput {} above 1/(a*p) cap",
        r.throughput
    );
}

#[test]
fn min_capped_under_advc_at_h_over_ap() {
    // figure1: h=2, a*p=8 → cap 0.25; and ADVc must beat ADV+1 (less
    // severe per §III).
    let advc = run_single(&tiny_config(
        MechanismSpec::Min,
        ArbiterPolicy::TransitPriority,
        PatternSpec::AdvConsecutive { spread: None },
        0.6,
    ));
    let adv1 = run_single(&tiny_config(
        MechanismSpec::Min,
        ArbiterPolicy::TransitPriority,
        PatternSpec::Adversarial { offset: 1 },
        0.6,
    ));
    assert!(
        advc.throughput <= 0.25 * 1.15,
        "ADVc MIN throughput {} above h/(a*p) cap",
        advc.throughput
    );
    assert!(
        advc.throughput > adv1.throughput * 1.3,
        "ADVc ({}) must be less severe than ADV+1 ({}) under MIN",
        advc.throughput,
        adv1.throughput
    );
}

#[test]
fn valiant_escapes_the_adv_cap() {
    let min = run_single(&tiny_config(
        MechanismSpec::Min,
        ArbiterPolicy::TransitPriority,
        PatternSpec::Adversarial { offset: 1 },
        0.5,
    ));
    let val = run_single(&tiny_config(
        MechanismSpec::ObliviousRrg,
        ArbiterPolicy::TransitPriority,
        PatternSpec::Adversarial { offset: 1 },
        0.5,
    ));
    assert!(
        val.throughput > min.throughput * 1.5,
        "Valiant ({}) must clearly beat MIN ({}) under ADV+1",
        val.throughput,
        min.throughput
    );
}

#[test]
fn uniform_min_latency_beats_valiant() {
    // Under UN at low load, MIN's latency must be clearly below Valiant's
    // (Valiant pays the double traversal).
    let min = run_single(&tiny_config(
        MechanismSpec::Min,
        ArbiterPolicy::TransitPriority,
        PatternSpec::Uniform,
        0.15,
    ));
    let val = run_single(&tiny_config(
        MechanismSpec::ObliviousRrg,
        ArbiterPolicy::TransitPriority,
        PatternSpec::Uniform,
        0.15,
    ));
    assert!(
        val.avg_latency > min.avg_latency * 1.3,
        "Valiant latency {} should exceed MIN {} under UN",
        val.avg_latency,
        min.avg_latency
    );
    // Both accept the offered load at 0.15.
    assert!((min.throughput - 0.15).abs() < 0.02);
    assert!((val.throughput - 0.15).abs() < 0.02);
}

#[test]
fn in_transit_matches_min_latency_at_low_uniform_load() {
    // The adaptive mechanism must not misroute when the network is idle:
    // its latency should sit near MIN's, not Valiant's.
    let min = run_single(&tiny_config(
        MechanismSpec::Min,
        ArbiterPolicy::TransitPriority,
        PatternSpec::Uniform,
        0.1,
    ));
    let int = run_single(&tiny_config(
        MechanismSpec::InTransitMm,
        ArbiterPolicy::TransitPriority,
        PatternSpec::Uniform,
        0.1,
    ));
    assert!(
        (int.avg_latency - min.avg_latency).abs() < min.avg_latency * 0.1,
        "in-transit ({}) should track MIN ({}) at low UN load",
        int.avg_latency,
        min.avg_latency
    );
}

#[test]
fn group_local_traffic_unaffected_by_mechanism() {
    // Intra-group traffic never touches global links; every mechanism
    // should accept it in full at moderate load.
    for m in [MechanismSpec::Min, MechanismSpec::ObliviousCrg, MechanismSpec::InTransitMm] {
        let r = run_single(&tiny_config(
            m,
            ArbiterPolicy::TransitPriority,
            PatternSpec::GroupLocal,
            0.3,
        ));
        assert!(
            (r.throughput - 0.3).abs() < 0.03,
            "{}: group-local throughput {}",
            m.label(),
            r.throughput
        );
    }
}
