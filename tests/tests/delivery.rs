//! End-to-end delivery guarantees across every mechanism × pattern
//! combination: everything offered below saturation is delivered, the
//! latency accounting identity holds, and runs are reproducible.

use dragonfly_core::df_engine::{ArbiterPolicy, DeliveredRecord, Network};
use dragonfly_core::df_routing::MechanismSpec;
use dragonfly_core::df_topology::{Arrangement, DragonflyParams, NodeId, Topology};
use dragonfly_core::df_traffic::PatternSpec;
use dragonfly_core::prelude::*;
use integration_tests::tiny_config;

/// Drive a network directly (no measurement protocol): inject a burst
/// under `pattern`, then drain completely, returning all records.
fn burst_and_drain(
    mechanism: MechanismSpec,
    pattern: &PatternSpec,
    arbiter: ArbiterPolicy,
    packets_per_node: u32,
) -> Vec<DeliveredRecord> {
    let params = DragonflyParams::figure1();
    let topo = Topology::new(params, Arrangement::Palmtree);
    let cfg = dragonfly_core::df_engine::EngineConfig::paper(
        arbiter,
        mechanism.required_local_vcs(),
    );
    let policy = mechanism.build(topo.clone(), &cfg, 9);
    let recs = std::cell::RefCell::new(Vec::new());
    let mut offered = 0u64;
    {
        let sink = |r: &DeliveredRecord| recs.borrow_mut().push(*r);
        let mut net = Network::new(topo, cfg, policy, sink);
        let mut traffic = pattern.build(params, 21);
        for _round in 0..packets_per_node {
            for n in 0..params.nodes() {
                let src = NodeId(n);
                let dst = traffic.dest(src);
                if net.offer(src, dst) {
                    offered += 1;
                }
            }
            net.step();
        }
        assert!(
            net.drain(300_000),
            "{} under {} must drain (in flight: {})",
            mechanism.label(),
            pattern.label(),
            net.in_flight()
        );
    }
    let recs = recs.into_inner();
    assert_eq!(recs.len() as u64, offered, "every offered packet delivered");
    recs
}

fn patterns() -> Vec<PatternSpec> {
    vec![
        PatternSpec::Uniform,
        PatternSpec::Adversarial { offset: 1 },
        PatternSpec::AdvConsecutive { spread: None },
        PatternSpec::GroupLocal,
        PatternSpec::Permutation,
    ]
}

#[test]
fn every_mechanism_delivers_every_pattern() {
    for mechanism in std::iter::once(MechanismSpec::Min).chain(MechanismSpec::PAPER_SET) {
        for pattern in patterns() {
            let recs =
                burst_and_drain(mechanism, &pattern, ArbiterPolicy::RoundRobin, 4);
            for r in &recs {
                assert_eq!(
                    r.latency(),
                    r.traversal + r.waits.total(),
                    "latency identity broken for {} / {}",
                    mechanism.label(),
                    pattern.label()
                );
                assert!(r.traversal >= r.min_traversal);
            }
        }
    }
}

#[test]
fn delivery_under_transit_priority_and_age() {
    for arbiter in [ArbiterPolicy::TransitPriority, ArbiterPolicy::AgeBased] {
        for mechanism in [MechanismSpec::InTransitMm, MechanismSpec::SourceCrg] {
            burst_and_drain(
                mechanism,
                &PatternSpec::AdvConsecutive { spread: None },
                arbiter,
                5,
            );
        }
    }
}

#[test]
fn destinations_are_correct() {
    // The engine must deliver each packet to the node the pattern chose.
    let params = DragonflyParams::figure1();
    let topo = Topology::new(params, Arrangement::Palmtree);
    let cfg = dragonfly_core::df_engine::EngineConfig::paper(ArbiterPolicy::RoundRobin, 3);
    let policy = MechanismSpec::Min.build(topo.clone(), &cfg, 1);
    let recs = std::cell::RefCell::new(Vec::new());
    {
        let sink = |r: &DeliveredRecord| recs.borrow_mut().push(*r);
        let mut net = Network::new(topo, cfg, policy, sink);
        let expected: Vec<(NodeId, NodeId)> =
            (0..params.nodes()).map(|n| (NodeId(n), NodeId((n * 13 + 5) % params.nodes())))
                .filter(|(s, d)| s != d)
                .collect();
        for &(s, d) in &expected {
            assert!(net.offer(s, d));
        }
        assert!(net.drain(100_000));
    }
    for r in recs.into_inner() {
        assert_eq!((r.header.src.0 * 13 + 5) % 72, r.header.dst.0);
    }
}

#[test]
fn run_protocol_is_deterministic() {
    let cfg = tiny_config(
        MechanismSpec::InTransitMm,
        ArbiterPolicy::TransitPriority,
        PatternSpec::AdvConsecutive { spread: None },
        0.35,
    );
    let a = run_single(&cfg);
    let b = run_single(&cfg);
    assert_eq!(a.throughput, b.throughput);
    assert_eq!(a.avg_latency, b.avg_latency);
    assert_eq!(a.injected_per_router, b.injected_per_router);
}

#[test]
fn mixed_pattern_delivers() {
    let mix = PatternSpec::Mix {
        first: Box::new(PatternSpec::Uniform),
        second: Box::new(PatternSpec::AdvConsecutive { spread: None }),
        first_fraction: 0.5,
    };
    burst_and_drain(MechanismSpec::InTransitMm, &mix, ArbiterPolicy::RoundRobin, 4);
}
