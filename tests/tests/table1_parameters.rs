//! Table I of the paper, asserted against the library defaults: this is
//! the contract that `SimConfig::paper` models the published system.

use dragonfly_core::df_engine::ArbiterPolicy;
use dragonfly_core::df_routing::MechanismSpec;
use dragonfly_core::df_traffic::PatternSpec;
use dragonfly_core::prelude::*;

#[test]
fn table1_parameters_hold() {
    let cfg = SimConfig::paper(
        MechanismSpec::InTransitMm,
        ArbiterPolicy::TransitPriority,
        PatternSpec::AdvConsecutive { spread: None },
        0.4,
    );
    // "Router size: 23 ports (h=6 global, p=6 injection, 11 local)"
    assert_eq!(cfg.params.radix(), 23);
    assert_eq!(cfg.params.h, 6);
    assert_eq!(cfg.params.p, 6);
    assert_eq!(cfg.params.local_ports(), 11);
    // "Group size: 12 routers, 72 computing nodes"
    assert_eq!(cfg.params.a, 12);
    assert_eq!(cfg.params.a * cfg.params.p, 72);
    // "System size: 73 groups, 5,256 computing nodes"
    assert_eq!(cfg.params.groups(), 73);
    assert_eq!(cfg.params.nodes(), 5256);
    // "Global link arrangement: Palmtree"
    assert_eq!(cfg.arrangement, Arrangement::Palmtree);

    let ec = cfg.engine_config();
    // "Router latency: 5 cycles"
    assert_eq!(ec.pipeline_latency, 5);
    // "Frequency speedup: 2×"
    assert_eq!(ec.speedup, 2);
    // "Link latency: 10 (local), 100 (global) cycles"
    assert_eq!(ec.local_link_latency, 10);
    assert_eq!(ec.global_link_latency, 100);
    // "Virtual channels: 2 (global), 3 (local and injection)"
    assert_eq!(ec.vcs_global, 2);
    assert_eq!(ec.vcs_local, 3);
    assert_eq!(ec.vcs_injection, 3);
    // "Buffer size: 32 (output, local input per VC), 256 (global input per VC)"
    assert_eq!(ec.output_buffer, 32);
    assert_eq!(ec.local_input_buffer, 32);
    assert_eq!(ec.global_input_buffer, 256);
    // "Packet size: 8 phits"
    assert_eq!(ec.packet_size, 8);
    // Measurement protocol: "15,000 cycles of execution"
    assert_eq!(cfg.measure_cycles, 15_000);
}

#[test]
fn oblivious_and_source_adaptive_use_four_local_vcs() {
    // Table I: "4 (local ports in oblivious and source-adaptive mechanisms)".
    for m in [
        MechanismSpec::ObliviousRrg,
        MechanismSpec::ObliviousCrg,
        MechanismSpec::SourceRrg,
        MechanismSpec::SourceCrg,
    ] {
        let cfg = SimConfig::paper(
            m,
            ArbiterPolicy::TransitPriority,
            PatternSpec::Uniform,
            0.4,
        );
        assert_eq!(cfg.engine_config().vcs_local, 4, "{}", m.label());
    }
}

#[test]
fn paper_congestion_thresholds_are_modeled() {
    // "Congestion thresholds: 43% (adaptive in-transit)" — built into the
    // InTransit constructor; "T = 5 (PB, local), T = 3 (PB, global)" —
    // built into the PiggyBack constructor. Here we pin the public
    // default-seed behaviour indirectly: the threshold constructor must
    // accept the paper value and reject nonsense.
    use dragonfly_core::df_routing::{GlobalMisrouting, InTransit};
    let topo = Topology::new(DragonflyParams::figure1(), Arrangement::Palmtree);
    let ec = dragonfly_core::df_engine::EngineConfig::paper(ArbiterPolicy::RoundRobin, 3);
    let _ok = InTransit::with_threshold(topo.clone(), &ec, GlobalMisrouting::Mm, 0.43, 1);
    let bad = std::panic::catch_unwind(|| {
        InTransit::with_threshold(topo, &ec, GlobalMisrouting::Mm, 1.7, 1)
    });
    assert!(bad.is_err());
}
