//! Invariants every `RunResult` must satisfy, across a grid of
//! mechanisms, patterns, and arbiters.

use dragonfly_core::df_engine::ArbiterPolicy;
use dragonfly_core::df_routing::MechanismSpec;
use dragonfly_core::df_traffic::PatternSpec;
use dragonfly_core::prelude::*;
use integration_tests::tiny_config;

fn check(result: &RunResult, label: &str) {
    // Accepted load can never exceed what was offered (plus the drain of
    // warm-up backlog, bounded here by a generous margin).
    assert!(
        result.throughput <= result.offered * 1.10 + 0.01,
        "{label}: accepted {} > offered {}",
        result.throughput,
        result.offered
    );
    // The five components are exhaustive and exclusive.
    let sum: f64 = result.components.iter().sum();
    assert!(
        (sum - result.avg_latency).abs() < 1e-6,
        "{label}: breakdown sum {} != mean latency {}",
        sum,
        result.avg_latency
    );
    // Base latency is bounded below by the cheapest possible path
    // (injection + pipeline + ejection + serialization) and above by the
    // worst minimal path.
    let base = result.components[0];
    assert!(base >= 15.0, "{label}: base {base} impossibly small");
    assert!(base <= 2.0 * 1.0 + 4.0 * 5.0 + 2.0 * 10.0 + 100.0 + 8.0 + 1.0,
        "{label}: base {base} exceeds worst minimal path");
    // Fairness metrics are mutually consistent.
    assert!(result.fairness.min <= result.fairness.mean + 1e-9, "{label}");
    assert!(result.fairness.cov >= 0.0, "{label}");
    assert!(result.fairness.jain <= 1.0 + 1e-9, "{label}");
    // p99 (histogram bucket bound) cannot be below the mean latency by
    // more than one bucket.
    if let Some(p99) = result.p99_latency {
        assert!(
            p99 as f64 + 50.0 >= result.avg_latency,
            "{label}: p99 {} vs mean {}",
            p99,
            result.avg_latency
        );
    }
    // Total injections equal at least the delivered count minus what was
    // still in flight at the window edges (loose sanity bound).
    let injected: u64 = result.injected_per_router.iter().sum();
    assert!(
        injected * 2 >= result.delivered_packets,
        "{label}: injected {injected} vs delivered {}",
        result.delivered_packets
    );
}

#[test]
fn invariants_hold_across_the_grid() {
    let mechanisms = [
        MechanismSpec::Min,
        MechanismSpec::ObliviousCrg,
        MechanismSpec::SourceRrg,
        MechanismSpec::InTransitMm,
    ];
    let patterns = [
        PatternSpec::Uniform,
        PatternSpec::Adversarial { offset: 1 },
        PatternSpec::AdvConsecutive { spread: None },
    ];
    for m in mechanisms {
        for p in &patterns {
            for arb in [ArbiterPolicy::TransitPriority, ArbiterPolicy::AgeBased] {
                let cfg = tiny_config(m, arb, p.clone(), 0.25);
                let r = run_single(&cfg);
                check(&r, &format!("{}/{}/{:?}", m.label(), p.label(), arb));
            }
        }
    }
}

#[test]
fn offered_load_tracks_configured_load() {
    for load in [0.1, 0.3, 0.5] {
        let cfg = tiny_config(
            MechanismSpec::ObliviousRrg,
            ArbiterPolicy::RoundRobin,
            PatternSpec::Uniform,
            load,
        );
        let r = run_single(&cfg);
        assert!(
            (r.offered - load).abs() < 0.04,
            "offered {} should track configured {load}",
            r.offered
        );
    }
}

#[test]
fn averaged_result_fairness_uses_averaged_counts() {
    let cfg = tiny_config(
        MechanismSpec::InTransitCrg,
        ArbiterPolicy::TransitPriority,
        PatternSpec::AdvConsecutive { spread: None },
        0.35,
    );
    let avg = run_averaged(&cfg, &[1, 2, 3]);
    let recomputed = FairnessReport::from_counts(&avg.injected_per_router);
    assert_eq!(avg.fairness.cov, recomputed.cov);
    assert_eq!(avg.fairness.min, recomputed.min);
}
