//! Job-churn and sweep-harness integration tests: staggered
//! start/stop-cycle determinism (property-based), slot reuse by a later
//! arrival, per-job measurement-window normalization, and the bundled
//! sweep grid's expansion and table determinism.

use dragonfly_core::df_workload::{InjectionSpec, JobSpec, PlacementSpec, ScenarioSpec};
use dragonfly_core::prelude::*;
use proptest::prelude::*;

fn scenario_path(name: &str) -> String {
    format!("{}/../scenarios/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// A figure1-scale scenario whose three jobs have configurable lifetimes.
/// Jobs 0/1 share the *same* placement (groups 0..3) so lifetimes must be
/// disjoint; job 2 runs on groups 4..6 for the whole run.
fn churn_scenario(lifetimes: [(Option<u64>, Option<u64>); 2]) -> ScenarioSpec {
    let job = |name: &str, first, count, (start_cycle, stop_cycle)| JobSpec {
        name: name.into(),
        placement: PlacementSpec::ConsecutiveGroups { first, count, slots: None },
        pattern: PatternSpec::Uniform,
        injection: InjectionSpec::Bernoulli,
        load: 0.25,
        start_cycle,
        stop_cycle,
    };
    ScenarioSpec {
        name: "churn".into(),
        params: DragonflyParams::figure1(),
        arrangement: Arrangement::Palmtree,
        mechanisms: vec![MechanismSpec::InTransitMm],
        arbiter: ArbiterPolicy::TransitPriority,
        warmup_cycles: 300,
        measure_cycles: 1_200,
        telemetry: None,
        shards: None,
        jobs: vec![
            job("early", 0, 3, lifetimes[0]),
            job("late", 0, 3, lifetimes[1]),
            job("steady", 4, 2, (None, None)),
        ],
    }
}

// ---------------------------------------------------------------------
// Churn determinism (property-based)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // A scenario with staggered start/stop jobs must serialize to a
    // bit-identical RunResult across repeated same-seed runs: churn
    // events (claim/release, mid-run arrivals) may not introduce any
    // order- or allocation-dependent behaviour.
    #[test]
    fn staggered_lifetimes_are_bit_deterministic(
        handover in 200u64..1_300,
        tail in 1u64..300,
        seed in 0u64..1_000,
    ) {
        let spec = churn_scenario([
            (None, Some(handover)),
            (Some(handover), Some(handover + tail)),
        ]);
        spec.validate(seed).unwrap();
        let a = run_scenario_once(&spec, MechanismSpec::InTransitMm, seed, None).unwrap();
        let b = run_scenario_once(&spec, MechanismSpec::InTransitMm, seed, None).unwrap();
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }
}

// ---------------------------------------------------------------------
// Slot reuse and per-job windows
// ---------------------------------------------------------------------

#[test]
fn departed_jobs_slots_are_reusable_by_a_later_arrival() {
    // `early` occupies groups 0..3 until cycle 900; `late` claims the
    // exact same nodes from 900 on. Both must inject and deliver.
    let spec = churn_scenario([(None, Some(900)), (Some(900), None)]);
    spec.validate(1).unwrap();
    let r = run_scenario_once(&spec, MechanismSpec::InTransitMm, 1, None).unwrap();

    let early = &r.per_job[0];
    let late = &r.per_job[1];
    // Measurement window is [300, 1500): each tenant is live for 600
    // cycles of it, and rates are normalized over those cycles.
    assert_eq!(early.active_cycles, 600);
    assert_eq!(late.active_cycles, 600);
    assert!(early.delivered_packets > 100, "early delivered {}", early.delivered_packets);
    assert!(late.delivered_packets > 100, "late delivered {}", late.delivered_packets);
    // Offered ≈ configured load for both tenants despite partial
    // lifetimes (the window normalization at work).
    for job in [early, late] {
        assert!(
            (job.offered - 0.25).abs() < 0.05,
            "{}: offered {} vs configured 0.25",
            job.job,
            job.offered
        );
    }
    // The steady job never stopped: full window, full accounting.
    assert_eq!(r.per_job[2].active_cycles, 1_200);
}

#[test]
fn boundary_packets_attribute_to_the_departed_tenant() {
    // Single-node handover driven by hand: job a offers its final packet
    // on the last cycle it is live, job b starts that same cycle. The
    // straggler must be credited to a, not b.
    let cfg = {
        let mut cfg = SimConfig::small(
            MechanismSpec::Min,
            ArbiterPolicy::TransitPriority,
            PatternSpec::Uniform,
            0.0,
        );
        cfg.params = DragonflyParams::figure1();
        cfg.warmup_cycles = 0;
        cfg.measure_cycles = 3_000;
        cfg
    };
    let mut sim = Simulator::new(&cfg);
    sim.set_job_schedule(vec![
        JobSchedule {
            label: "a".into(),
            nodes: vec![NodeId(0)],
            start_cycle: None,
            stop_cycle: Some(100),
        },
        JobSchedule {
            label: "b".into(),
            nodes: vec![NodeId(0)],
            start_cycle: Some(100),
            stop_cycle: None,
        },
    ]);
    sim.begin_measurement();
    for t in 0..3_000u64 {
        if t == 99 {
            sim.offer_for_job(0, NodeId(0), NodeId(70));
        }
        if t == 100 {
            sim.offer_for_job(1, NodeId(0), NodeId(70));
        }
        sim.step_network();
    }
    let r = sim.finish();
    assert_eq!(r.per_job[0].delivered_packets, 1, "a's straggler misattributed");
    assert_eq!(r.per_job[1].delivered_packets, 1, "b's packet misattributed");
}

#[test]
#[should_panic(expected = "claimed by two jobs")]
fn overlapping_lifetimes_on_shared_nodes_rejected() {
    let cfg = SimConfig::small(
        MechanismSpec::Min,
        ArbiterPolicy::TransitPriority,
        PatternSpec::Uniform,
        0.0,
    );
    let mut sim = Simulator::new(&cfg);
    sim.set_job_schedule(vec![
        JobSchedule {
            label: "a".into(),
            nodes: vec![NodeId(3)],
            start_cycle: None,
            stop_cycle: Some(500),
        },
        JobSchedule {
            label: "b".into(),
            nodes: vec![NodeId(3)],
            start_cycle: Some(499),
            stop_cycle: None,
        },
    ]);
}

#[test]
fn validate_accepts_disjoint_and_rejects_overlapping_lifetimes() {
    let ok = churn_scenario([(None, Some(600)), (Some(600), None)]);
    ok.validate(1).unwrap();
    let bad = churn_scenario([(None, Some(601)), (Some(600), None)]);
    let err = bad.validate(1).unwrap_err();
    assert!(err.contains("overlapping"), "{err}");
}

// ---------------------------------------------------------------------
// Bundled sweep grid
// ---------------------------------------------------------------------

#[test]
fn bundled_sweep_parses_and_expands() {
    let spec = SweepSpec::load(&scenario_path("sweep_unfairness_grid.json")).unwrap();
    let cells = spec.expand().unwrap();
    // 3 loads × 2 placements × 2 patterns × 3 mechanisms.
    assert_eq!(cells.len(), 36);
    for cell in &cells {
        assert_eq!(cell.scenario.mechanisms.len(), 1);
        cell.scenario.validate(1).unwrap_or_else(|e| panic!("cell {}: {e}", cell.index));
    }
    // Axis coordinates cover the spec's ranges.
    assert!(cells.iter().any(|c| c.load == Some(0.9)
        && c.placement.as_deref() == Some("spread")
        && c.pattern.as_deref() == Some("ADVc")));
}

#[test]
fn sweep_with_churn_cells_is_deterministic() {
    // A sweep whose base scenario churns: the harness must still produce
    // an identical table across same-seed runs.
    let sweep = SweepSpec {
        name: "churn-sweep".into(),
        base: churn_scenario([(None, Some(900)), (Some(900), None)]),
        loads: Some(vec![0.15, 0.3]),
        load_jobs: Some(vec!["steady".into()]),
        placements: None,
        patterns: None,
        pattern_jobs: None,
        mechanisms: None,
    };
    let a = run_sweep(&sweep, &[5]).unwrap();
    let b = run_sweep(&sweep, &[5]).unwrap();
    assert_eq!(a.to_csv(), b.to_csv());
    // 2 cells × 1 seed × (network + 3 jobs).
    assert_eq!(a.rows.len(), 2 * 4);
    // Churn lifetimes survive the expansion into every cell.
    let early_rows: Vec<&SweepRow> =
        a.rows.iter().filter(|r| r.scope == "early").collect();
    assert_eq!(early_rows.len(), 2);
    assert!(early_rows.iter().all(|r| r.active_cycles == 600));
}
