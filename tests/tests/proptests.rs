//! Property-based tests spanning the crates: topology invariants under
//! arbitrary parameters, traffic-pattern contracts, and metric algebra.

use dragonfly_core::df_stats::FairnessReport;
use dragonfly_core::df_topology::{
    Arrangement, DragonflyParams, GroupId, NodeId, Port, PortTarget, RouterId, Topology,
};
use dragonfly_core::df_traffic::PatternSpec;
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = DragonflyParams> {
    // Keep sizes small enough for exhaustive per-case sweeps.
    (1u32..4, 2u32..7, 1u32..4).prop_map(|(p, a, h)| DragonflyParams::new(p, a, h))
}

fn arb_arrangement() -> impl Strategy<Value = Arrangement> {
    prop_oneof![
        Just(Arrangement::Palmtree),
        Just(Arrangement::Consecutive),
        any::<u64>().prop_map(|seed| Arrangement::Random { seed }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn global_wiring_is_an_involution(params in arb_params(), arr in arb_arrangement()) {
        let topo = Topology::new(params, arr);
        for r in topo.routers() {
            for j in 0..params.h {
                let (pr, pj) = topo.global_peer(r, j);
                prop_assert_eq!(topo.global_peer(pr, pj), (r, j));
            }
        }
    }

    #[test]
    fn every_ordered_group_pair_has_one_link(params in arb_params(), arr in arb_arrangement()) {
        let topo = Topology::new(params, arr);
        let g = params.groups();
        let mut seen = vec![0u32; (g * g) as usize];
        for r in topo.routers() {
            for j in 0..params.h {
                let dst = topo.global_port_target_group(r, j);
                let src = r.group(&params);
                prop_assert_ne!(src, dst);
                seen[(src.0 * g + dst.0) as usize] += 1;
            }
        }
        for a in 0..g {
            for b in 0..g {
                prop_assert_eq!(seen[(a * g + b) as usize], u32::from(a != b));
            }
        }
    }

    #[test]
    fn port_wiring_is_symmetric(params in arb_params(), arr in arb_arrangement()) {
        let topo = Topology::new(params, arr);
        for r in topo.routers() {
            for q in 0..params.radix() {
                match topo.port_target(r, Port(q)) {
                    PortTarget::Node(n) => {
                        prop_assert_eq!(n.router(&params), r);
                    }
                    PortTarget::Router { router, port } => {
                        prop_assert_ne!(router, r);
                        match topo.port_target(router, port) {
                            PortTarget::Router { router: rr, port: pp } => {
                                prop_assert_eq!((rr, pp), (r, Port(q)));
                            }
                            PortTarget::Node(_) => prop_assert!(false, "asymmetric"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn min_hops_is_at_most_diameter(params in arb_params(), arr in arb_arrangement()) {
        let topo = Topology::new(params, arr);
        let nodes = params.nodes();
        for s in (0..nodes).step_by(7) {
            for d in (0..nodes).step_by(11) {
                let h = topo.min_hops(NodeId(s), NodeId(d));
                prop_assert!(h <= 3);
                let (l, g) = topo.min_path_links(NodeId(s), NodeId(d));
                prop_assert_eq!(l + g, h);
                prop_assert!(g <= 1);
            }
        }
    }

    #[test]
    fn exit_to_group_owns_the_link(params in arb_params(), arr in arb_arrangement()) {
        let topo = Topology::new(params, arr);
        for g in 0..params.groups() {
            for d in 0..params.groups() {
                if g == d { continue; }
                let (exit, j) = topo.exit_to_group(GroupId(g), GroupId(d));
                prop_assert_eq!(exit.group(&params), GroupId(g));
                prop_assert_eq!(topo.global_port_target_group(exit, j), GroupId(d));
            }
        }
    }

    #[test]
    fn advc_bottleneck_total_overlap_under_palmtree(params in arb_params()) {
        let topo = Topology::new(params, Arrangement::Palmtree);
        for g in 0..params.groups() {
            prop_assert!(topo.advc_overlap_is_total(GroupId(g)));
            let b = topo.advc_bottleneck(GroupId(g));
            prop_assert_eq!(b.local_index(&params), params.a - 1);
        }
    }

    #[test]
    fn patterns_produce_valid_destinations(
        params in arb_params(),
        seed in any::<u64>(),
        pattern_idx in 0usize..5,
    ) {
        let specs = [
            PatternSpec::Uniform,
            PatternSpec::Adversarial { offset: 1 },
            PatternSpec::AdvConsecutive { spread: None },
            PatternSpec::GroupLocal,
            PatternSpec::Permutation,
        ];
        let mut t = specs[pattern_idx].build(params, seed);
        for n in (0..params.nodes()).step_by(5) {
            let d = t.dest(NodeId(n));
            prop_assert!(d.0 < params.nodes());
        }
    }

    #[test]
    fn advc_offsets_in_range(params in arb_params(), seed in any::<u64>()) {
        let mut t = PatternSpec::AdvConsecutive { spread: None }.build(params, seed);
        let g = params.groups();
        for n in (0..params.nodes()).step_by(3) {
            let src = NodeId(n);
            let d = t.dest(src);
            let off = (d.group(&params).0 + g - src.group(&params).0) % g;
            prop_assert!(off >= 1 && off <= params.h);
        }
    }

    #[test]
    fn fairness_metric_algebra(counts in prop::collection::vec(0u64..100_000, 1..64)) {
        let r = FairnessReport::from_u64(&counts);
        prop_assert!(r.min <= r.mean + 1e-9);
        prop_assert!(r.mean <= r.max + 1e-9);
        prop_assert!(r.cov >= 0.0);
        prop_assert!(r.jain > 0.0 && r.jain <= 1.0 + 1e-12);
        if counts.iter().all(|&c| c == counts[0]) {
            prop_assert!(r.cov < 1e-9);
            prop_assert!((r.jain - 1.0).abs() < 1e-9);
        }
        if r.min > 0.0 {
            prop_assert!(r.max_min_ratio >= 1.0 - 1e-12);
            prop_assert!(r.max_min_ratio.is_finite());
        }
    }

    #[test]
    fn scaling_counts_preserves_relative_fairness(
        counts in prop::collection::vec(1u64..10_000, 2..32),
        k in 2u64..10,
    ) {
        let base = FairnessReport::from_u64(&counts);
        let scaled: Vec<u64> = counts.iter().map(|&c| c * k).collect();
        let s = FairnessReport::from_u64(&scaled);
        prop_assert!((base.cov - s.cov).abs() < 1e-9);
        prop_assert!((base.jain - s.jain).abs() < 1e-9);
        prop_assert!((base.max_min_ratio - s.max_min_ratio).abs() < 1e-9);
    }
}

#[test]
fn node_router_group_indexing_consistent() {
    let params = DragonflyParams::paper();
    for n in (0..params.nodes()).step_by(97) {
        let node = NodeId(n);
        let router = node.router(&params);
        let group = node.group(&params);
        assert_eq!(router.group(&params), group);
        assert_eq!(
            NodeId::from_router_slot(&params, router, node.slot(&params)),
            node
        );
        assert_eq!(
            RouterId::from_group_local(&params, group, router.local_index(&params)),
            router
        );
    }
}
