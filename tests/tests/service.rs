//! Fault-injection integration suite for the df-service job server.
//!
//! Every robustness claim in docs/SERVICE.md is asserted here via the
//! structured JobEvent stream — never via timing:
//!
//! * admission control rejects over-quota submissions (`rejected_overload`)
//!   while queued work still drains;
//! * a stall past the per-attempt deadline produces `timed_out` and
//!   leaves no partial output (a resubmission recomputes, it does not
//!   hit the cache);
//! * a worker panic is isolated, retried, and the service keeps serving;
//! * a cached resubmission replays the byte-identical result document
//!   (digest-checked);
//! * a corrupted cache entry is detected, evicted, and recomputed;
//! * the whole protocol round-trips over the Unix socket, including a
//!   draining shutdown.

use df_service::{
    digest_hex, serve, EventSink, FaultSpec, JobEvent, JobPayload, Request, Service,
    ServiceConfig, SubmitOptions,
};
use dragonfly_core::df_engine::ArbiterPolicy;
use dragonfly_core::df_routing::MechanismSpec;
use dragonfly_core::df_topology::{Arrangement, DragonflyParams};
use dragonfly_core::df_traffic::PatternSpec;
use dragonfly_core::df_workload::{InjectionSpec, JobSpec, PlacementSpec, ScenarioSpec};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A sub-second two-job scenario on the 72-node Figure 1 network.
fn tiny_scenario(name: &str) -> ScenarioSpec {
    ScenarioSpec {
        name: name.into(),
        params: DragonflyParams::figure1(),
        arrangement: Arrangement::Palmtree,
        mechanisms: vec![MechanismSpec::InTransitMm],
        arbiter: ArbiterPolicy::TransitPriority,
        warmup_cycles: 100,
        measure_cycles: 200,
        telemetry: None,
        jobs: vec![
            JobSpec {
                name: "victim".into(),
                placement: PlacementSpec::ConsecutiveGroups { first: 0, count: 2, slots: None },
                pattern: PatternSpec::Uniform,
                injection: InjectionSpec::Bernoulli,
                load: 0.2,
                start_cycle: None,
                stop_cycle: None,
            },
            JobSpec {
                name: "aggressor".into(),
                placement: PlacementSpec::ConsecutiveGroups { first: 2, count: 2, slots: None },
                pattern: PatternSpec::AdvConsecutive { spread: None },
                injection: InjectionSpec::Bernoulli,
                load: 0.3,
                start_cycle: None,
                stop_cycle: None,
            },
        ],
    }
}

fn collecting_sink() -> (EventSink, Arc<Mutex<Vec<JobEvent>>>) {
    let events = Arc::new(Mutex::new(Vec::new()));
    let sunk = Arc::clone(&events);
    let sink: EventSink = Arc::new(move |e| sunk.lock().unwrap().push(e));
    (sink, events)
}

/// Poll until `job` has a terminal event, returning its full stream.
fn wait_terminal(events: &Arc<Mutex<Vec<JobEvent>>>, job: u64) -> Vec<JobEvent> {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        {
            let evs = events.lock().unwrap();
            if evs.iter().any(|e| e.job() == Some(job) && e.is_terminal()) {
                return evs.iter().filter(|e| e.job() == Some(job)).cloned().collect();
            }
        }
        assert!(Instant::now() < deadline, "no terminal event for job {job}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn wait_started(events: &Arc<Mutex<Vec<JobEvent>>>, job: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !events
        .lock()
        .unwrap()
        .iter()
        .any(|e| matches!(e, JobEvent::Started { job: j, .. } if *j == job))
    {
        assert!(Instant::now() < deadline, "job {job} never started");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn one_seed(fault: Option<FaultSpec>, deadline_ms: Option<u64>) -> SubmitOptions {
    SubmitOptions { seeds: Some(vec![1]), deadline_ms, fault }
}

#[test]
fn over_quota_submissions_are_rejected_while_queued_work_drains() {
    let svc = Service::new(ServiceConfig {
        workers: 1,
        queue_depth: 1,
        ..ServiceConfig::default()
    });
    let (sink, events) = collecting_sink();
    // Job A occupies the single worker via a long stall.
    let stall = FaultSpec {
        stall_at_cycle: Some(10),
        stall_ms: Some(500),
        ..FaultSpec::default()
    };
    let a = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-admission")),
        one_seed(Some(stall), None),
        Arc::clone(&sink),
    );
    wait_started(&events, a);
    // Job B fills the single queue slot; job C is over quota.
    let b = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-admission-b")),
        one_seed(None, None),
        Arc::clone(&sink),
    );
    let c = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-admission-c")),
        one_seed(None, None),
        Arc::clone(&sink),
    );
    let evs_c = wait_terminal(&events, c);
    match &evs_c[..] {
        [JobEvent::RejectedOverload { queued, limit, .. }] => {
            assert_eq!((*queued, *limit), (1, 1));
        }
        other => panic!("expected a lone rejected_overload, got {other:?}"),
    }
    // The rejection did not disturb admitted work: A and B both complete.
    assert_eq!(wait_terminal(&events, a).last().unwrap().label(), "completed");
    assert_eq!(wait_terminal(&events, b).last().unwrap().label(), "completed");
    svc.shutdown();
}

#[test]
fn stall_past_deadline_times_out_and_leaves_no_partial_output() {
    let svc = Service::new(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let (sink, events) = collecting_sink();
    let stall = FaultSpec {
        stall_at_cycle: Some(50),
        stall_ms: Some(200),
        ..FaultSpec::default()
    };
    let job = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-deadline")),
        one_seed(Some(stall), Some(40)),
        Arc::clone(&sink),
    );
    let evs = wait_terminal(&events, job);
    match evs.last().unwrap() {
        JobEvent::TimedOut { at_cycle, .. } => {
            assert!(*at_cycle >= 50, "deadline fired during the stall, got {at_cycle}")
        }
        other => panic!("expected timed_out, got {other:?}"),
    }
    // No partial output: the same spec resubmitted must recompute
    // (`completed`), not replay a cache entry (`cached`).
    let clean = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-deadline")),
        one_seed(None, None),
        sink,
    );
    let evs2 = wait_terminal(&events, clean);
    assert_eq!(evs2.last().unwrap().label(), "completed");
    svc.shutdown();
}

#[test]
fn worker_panic_is_isolated_retried_and_the_service_keeps_serving() {
    let svc = Service::new(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let (sink, events) = collecting_sink();
    // Panics on attempt 1 only: the retry runs clean.
    let fault = FaultSpec { panic_at_cycle: Some(120), ..FaultSpec::default() };
    let job = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-panic")),
        one_seed(Some(fault), None),
        Arc::clone(&sink),
    );
    let evs = wait_terminal(&events, job);
    let labels: Vec<_> = evs.iter().map(|e| e.label()).collect();
    assert!(labels.contains(&"retried"), "{labels:?}");
    assert_eq!(*labels.last().unwrap(), "completed", "{labels:?}");
    // Exhausted retries end in `failed` — and the worker survives.
    let poison = FaultSpec {
        panic_at_cycle: Some(120),
        panic_attempts: Some(u32::MAX),
        ..FaultSpec::default()
    };
    let doomed = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-poison")),
        one_seed(Some(poison), None),
        Arc::clone(&sink),
    );
    let evs2 = wait_terminal(&events, doomed);
    match evs2.last().unwrap() {
        JobEvent::Failed { attempts, error, .. } => {
            assert_eq!(*attempts, 3, "default max_retries=2 gives 3 attempts");
            assert!(error.contains("injected fault"), "{error}");
        }
        other => panic!("expected failed, got {other:?}"),
    }
    let next = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-after-poison")),
        one_seed(None, None),
        sink,
    );
    assert_eq!(wait_terminal(&events, next).last().unwrap().label(), "completed");
    svc.shutdown();
}

#[test]
fn cached_resubmission_is_byte_identical_and_digest_checked() {
    let svc = Service::new(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let (sink, events) = collecting_sink();
    let job = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-cache")),
        one_seed(None, None),
        Arc::clone(&sink),
    );
    let evs = wait_terminal(&events, job);
    let (key1, digest1, result1) = match evs.last().unwrap() {
        JobEvent::Completed { key, digest, result, .. } => {
            (key.clone(), digest.clone(), result.clone())
        }
        other => panic!("expected completed, got {other:?}"),
    };
    // The advertised digest is the real content digest of the document.
    assert_eq!(digest1, digest_hex(result1.as_bytes()));
    let again = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-cache")),
        one_seed(None, None),
        sink,
    );
    let evs2 = wait_terminal(&events, again);
    match &evs2[..] {
        [JobEvent::Cached { key, digest, result, .. }] => {
            assert_eq!(*key, key1);
            assert_eq!(*digest, digest1);
            assert_eq!(*result, result1, "cache replay must be byte-identical");
        }
        other => panic!("expected a lone cached event, got {other:?}"),
    }
    svc.shutdown();
}

#[test]
fn corrupted_cache_entry_is_detected_and_recomputed() {
    let svc = Service::new(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let (sink, events) = collecting_sink();
    let fault = FaultSpec { corrupt_cache: Some(true), ..FaultSpec::default() };
    let job = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-rot")),
        one_seed(Some(fault), None),
        Arc::clone(&sink),
    );
    let evs = wait_terminal(&events, job);
    let result1 = match evs.last().unwrap() {
        JobEvent::Completed { result, .. } => result.clone(),
        other => panic!("expected completed, got {other:?}"),
    };
    // The rotted entry must never be served: the resubmission reports
    // the corruption and recomputes the byte-identical document.
    let again = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-rot")),
        one_seed(None, None),
        sink,
    );
    let evs2 = wait_terminal(&events, again);
    let labels: Vec<_> = evs2.iter().map(|e| e.label()).collect();
    assert_eq!(labels.first().unwrap(), &"cache_corrupt", "{labels:?}");
    match evs2.last().unwrap() {
        JobEvent::Completed { result, digest, .. } => {
            assert_eq!(*result, result1, "recompute must reproduce the original bytes");
            assert_eq!(*digest, digest_hex(result.as_bytes()));
        }
        other => panic!("expected completed, got {other:?}"),
    }
    svc.shutdown();
}

#[test]
fn cancelling_a_queued_job_is_observed_before_it_simulates() {
    let svc = Service::new(ServiceConfig {
        workers: 1,
        queue_depth: 4,
        ..ServiceConfig::default()
    });
    let (sink, events) = collecting_sink();
    let stall = FaultSpec {
        stall_at_cycle: Some(10),
        stall_ms: Some(400),
        ..FaultSpec::default()
    };
    let blocker = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-blocker")),
        one_seed(Some(stall), None),
        Arc::clone(&sink),
    );
    wait_started(&events, blocker);
    let queued = svc.submit(
        JobPayload::Scenario(tiny_scenario("svc-queued")),
        one_seed(None, None),
        sink,
    );
    assert!(svc.cancel(queued), "queued job must be cancellable");
    let evs = wait_terminal(&events, queued);
    match evs.last().unwrap() {
        JobEvent::Cancelled { at_cycle, .. } => {
            assert_eq!(*at_cycle, 0, "cancellation observed at the first checkpoint")
        }
        other => panic!("expected cancelled, got {other:?}"),
    }
    assert_eq!(wait_terminal(&events, blocker).last().unwrap().label(), "completed");
    svc.shutdown();
}

#[test]
fn full_protocol_round_trips_over_the_unix_socket() {
    let socket = std::env::temp_dir()
        .join(format!("df-service-it-{}.sock", std::process::id()));
    let service = Arc::new(Service::new(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    }));
    let server = {
        let socket = socket.clone();
        std::thread::spawn(move || serve(service, &socket, None))
    };
    let mut client = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match UnixStream::connect(&socket) {
                Ok(s) => break s,
                Err(_) => {
                    assert!(Instant::now() < deadline, "server socket never came up");
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    };
    let mut reader = BufReader::new(client.try_clone().unwrap());
    let read_event = |reader: &mut BufReader<UnixStream>| -> JobEvent {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        serde_json::from_str(&line).unwrap()
    };

    let submit = Request::SubmitScenario {
        spec: tiny_scenario("svc-wire"),
        options: one_seed(None, None),
    };
    writeln!(client, "{}", serde_json::to_string(&submit).unwrap()).unwrap();
    let accepted = read_event(&mut reader);
    assert_eq!(accepted.label(), "accepted");
    let job = accepted.job().unwrap();
    // Drain non-terminal events until this job's terminal one.
    let (digest, result) = loop {
        let event = read_event(&mut reader);
        assert_eq!(event.job(), Some(job));
        if let JobEvent::Completed { digest, result, .. } = &event {
            break (digest.clone(), result.clone());
        }
        assert!(!event.is_terminal(), "unexpected terminal event {event:?}");
    };
    assert_eq!(digest, digest_hex(result.as_bytes()));

    // Same submission again: a lone `cached` event, byte-identical.
    writeln!(client, "{}", serde_json::to_string(&submit).unwrap()).unwrap();
    match read_event(&mut reader) {
        JobEvent::Cached { digest: d2, result: r2, .. } => {
            assert_eq!(d2, digest);
            assert_eq!(r2, result);
        }
        other => panic!("expected cached, got {other:?}"),
    }

    writeln!(client, "{}", serde_json::to_string(&Request::Shutdown).unwrap()).unwrap();
    match read_event(&mut reader) {
        JobEvent::ShuttingDown { .. } => {}
        other => panic!("expected shutting_down, got {other:?}"),
    }
    server.join().unwrap().unwrap();
    let _ = std::fs::remove_file(&socket);
}
